"""Typed stream handles: the fluent face of the Table 1 API.

Every Strata verb that produces a stream returns a :class:`StreamHandle`
instead of a bare name. The handle *is* a ``str`` (subclass), so it passes
unchanged anywhere a plain stream name is accepted — including older code,
dict keys, and the positional ``s_in`` arguments of every verb — while
adding:

* pipeline context: the producing node, the owning module (Figure 2), and
  a schema hint describing the tuples the stream carries;
* fluent chaining: ``handle.partition(...).detect_event(...).deliver()``
  reads top-to-bottom like the dataflow it builds, each step returning the
  next handle (plus a generic ``then(verb, ...)`` escape hatch);
* observability: ``handle.metrics()`` filters the pipeline-wide snapshot
  down to the operator producing this stream — including member-level
  samples when the plan compiler fused it into a chain.

This module also hosts the case-aliasing shims shared by
:class:`~repro.core.api.Strata` and :class:`StreamHandle`. snake_case is
the *canonical* surface (the methods are defined under their PEP 8
names); the paper's camelCase spellings remain available as deprecated
aliases — thin wrappers that forward to the canonical method and emit a
one-time :class:`DeprecationWarning` naming the spelling to migrate to.
``alias.__wrapped__`` exposes the canonical function for introspection.
"""

from __future__ import annotations

import functools
import re
import warnings
from typing import TYPE_CHECKING, Any

from .errors import PipelineDefinitionError

#: aliases that already fired their one-time DeprecationWarning
#: (keyed "ClassName.aliasName"; shared across install calls).
_warned_aliases: set[str] = set()

if TYPE_CHECKING:  # pragma: no cover
    from ..obs.registry import MetricsSnapshot
    from ..spe.sink import Sink
    from .api import Strata


def snake_name(camel: str) -> str:
    """``detectEvent`` -> ``detect_event``."""
    return re.sub(r"(?<!^)(?=[A-Z])", "_", camel).lower()


def camel_name(snake: str) -> str:
    """``detect_event`` -> ``detectEvent``."""
    head, *rest = snake.split("_")
    return head + "".join(part.title() for part in rest)


def _deprecated_alias(cls: type, alias: str, canonical: str, fn: Any) -> Any:
    """A forwarding shim that warns once, then behaves as the original.

    ``functools.wraps`` keeps the docstring and sets ``__wrapped__`` to
    the canonical function; ``__name__``/``__qualname__`` are re-pointed
    at the alias so tracebacks name what was actually called.
    """
    key = f"{cls.__name__}.{alias}"

    @functools.wraps(fn)
    def shim(*args: Any, **kwargs: Any) -> Any:
        if key not in _warned_aliases:
            _warned_aliases.add(key)
            warnings.warn(
                f"{key} is deprecated; use the canonical "
                f"{cls.__name__}.{canonical}",
                DeprecationWarning,
                stacklevel=2,
            )
        return fn(*args, **kwargs)

    shim.__name__ = alias
    shim.__qualname__ = f"{cls.__qualname__}.{alias}"
    return shim


def install_snake_case_aliases(cls: type, names: tuple[str, ...]) -> None:
    """Deprecated: add PEP 8 aliases for camelCase-canonical methods.

    This is the legacy direction — it exists for classes still *defined*
    with camelCase methods. Calling it emits a one-time
    :class:`DeprecationWarning` advising to define the methods under
    their snake_case names (and use :func:`install_camelcase_aliases`
    for paper-parity spellings). The installed snake_case alias is the
    same function object, since snake_case is the canonical surface.
    """
    key = f"install_snake_case_aliases:{cls.__name__}"
    if key not in _warned_aliases:
        _warned_aliases.add(key)
        warnings.warn(
            f"install_snake_case_aliases({cls.__name__}) is deprecated; "
            "define methods under their canonical snake_case names and "
            "install_camelcase_aliases for the paper's spellings",
            DeprecationWarning,
            stacklevel=2,
        )
    for camel in names:
        alias = snake_name(camel)
        if alias != camel:
            setattr(cls, alias, cls.__dict__[camel])


def install_camelcase_aliases(cls: type, names: tuple[str, ...]) -> None:
    """Add the paper's camelCase spellings for canonical snake_case verbs.

    Each alias is a thin deprecation shim: the first call per alias emits
    a :class:`DeprecationWarning` naming the canonical snake_case method,
    then forwards — so Table 1 parity code keeps running while pointing
    migrators at the one spelling the docs show. The canonical function
    is reachable as ``alias.__wrapped__``.
    """
    for snake in names:
        alias = camel_name(snake)
        if alias != snake:
            setattr(
                cls, alias, _deprecated_alias(cls, alias, snake, cls.__dict__[snake])
            )


class StreamHandle(str):
    """A named stream bound to the pipeline that produces it.

    Being a ``str`` subclass keeps the whole API backward compatible:
    every verb still accepts plain strings, and a handle used as a plain
    string (printed, hashed, compared, passed to old code) behaves as the
    bare stream name.
    """

    __slots__ = ("_strata", "node", "module", "schema")

    def __new__(
        cls,
        name: str,
        strata: "Strata | None" = None,
        node: str | None = None,
        module: str | None = None,
        schema: str | None = None,
    ) -> "StreamHandle":
        self = super().__new__(cls, name)
        self._strata = strata
        self.node = node
        self.module = module
        self.schema = schema
        return self

    @property
    def name(self) -> str:
        """The plain stream name."""
        return str(self)

    @property
    def strata(self) -> "Strata | None":
        """The pipeline this handle belongs to (None for detached handles)."""
        return self._strata

    def _require_strata(self) -> "Strata":
        if self._strata is None:
            raise PipelineDefinitionError(
                f"stream handle {str(self)!r} is not bound to a Strata pipeline"
            )
        return self._strata

    # -- fluent verbs (each returns the downstream handle) ------------------

    def fuse(
        self,
        other: str,
        s_out: str,
        ws: float | None = None,
        wa: float | None = None,
        gb: list[str] | None = None,
    ) -> "StreamHandle":
        """``fuse(self, other, s_out)`` on the owning pipeline."""
        return self._require_strata().fuse(self, other, s_out, ws=ws, wa=wa, gb=gb)

    def partition(
        self,
        s_out: str,
        f: Any | None = None,
        parallelism: int = 1,
        replicable: bool | None = None,
    ) -> "StreamHandle":
        """``partition(self, s_out, f)`` on the owning pipeline."""
        return self._require_strata().partition(
            self, s_out, f, parallelism=parallelism, replicable=replicable
        )

    def detect_event(
        self,
        s_out: str,
        f: Any,
        parallelism: int = 1,
        replicable: bool | None = None,
    ) -> "StreamHandle":
        """``detect_event(self, s_out, f)`` on the owning pipeline."""
        return self._require_strata().detect_event(
            self, s_out, f, parallelism=parallelism, replicable=replicable
        )

    def correlate_events(
        self,
        s_out: str,
        l: int,
        f: Any,
        parallelism: int = 1,
        replicable: bool | None = None,
    ) -> "StreamHandle":
        """``correlate_events(self, s_out, l, f)`` on the owning pipeline."""
        return self._require_strata().correlate_events(
            self, s_out, l, f, parallelism=parallelism, replicable=replicable
        )

    def deliver(self, sink: "Sink | None" = None) -> "SinkHandle":
        """``deliver(self, sink)``: terminate the chain at the expert.

        Returns a :class:`SinkHandle` — still a stream handle (so the
        fluent chain type is closed under every verb) that also proxies
        the terminal sink's result surface (``.results``, ``.latency``).
        """
        strata = self._require_strata()
        sink_obj = strata.deliver(self, sink)
        return SinkHandle(
            str(self),
            strata=strata,
            node=self.node,
            module=self.module,
            schema=self.schema,
            sink=sink_obj,
        )

    def then(self, verb: str, *args: Any, **kwargs: Any) -> Any:
        """Apply any Strata verb with this stream as its input.

        ``handle.then("detect_event", "events", fn)`` is equivalent to
        ``strata.detect_event(handle, "events", fn)`` — useful for verbs
        chosen at runtime or added by subclasses.
        """
        strata = self._require_strata()
        method = getattr(strata, verb, None)
        if method is None:
            raise PipelineDefinitionError(f"Strata has no verb {verb!r}")
        return method(self, *args, **kwargs)

    # -- observability ------------------------------------------------------

    def metrics(self) -> "MetricsSnapshot":
        """This stream's slice of the pipeline metrics snapshot.

        Filters the full snapshot down to samples labelled with the
        producing operator. When the plan compiler fused the operator into
        a chain, member-level samples are exported under the original node
        name, so the filter still finds them.
        """
        snapshot = self._require_strata().metrics()
        if self.node is None:
            return snapshot
        return snapshot.filter(operator=self.node)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = [f"{type(self).__name__}({str(self)!r}"]
        if self.node:
            parts.append(f", node={self.node!r}")
        if self.module:
            parts.append(f", module={self.module!r}")
        return "".join(parts) + ")"


class SinkHandle(StreamHandle):
    """A stream handle whose chain ended at the expert's sink.

    ``deliver`` used to be the one fluent verb that broke the chain type
    by returning a bare :class:`~repro.spe.sink.Sink`. A ``SinkHandle``
    keeps the stream-handle contract (name, node, module, ``metrics()``)
    and proxies the sink's delivery surface, so
    ``handle.deliver().results`` and ``strata.deploy()`` compose without
    reaching back into the pipeline for the sink object.
    """

    __slots__ = ("sink",)

    def __new__(
        cls,
        name: str,
        strata: "Strata | None" = None,
        node: str | None = None,
        module: str | None = None,
        schema: str | None = None,
        sink: "Sink | None" = None,
    ) -> "SinkHandle":
        self = super().__new__(cls, name, strata, node, module, schema)
        self.sink = sink
        return self

    def _require_sink(self) -> "Sink":
        if self.sink is None:
            raise PipelineDefinitionError(
                f"sink handle {str(self)!r} is not bound to a sink"
            )
        return self.sink

    @property
    def results(self) -> Any:
        """The delivered tuples (proxies the collecting sink)."""
        return self._require_sink().results

    @property
    def latency(self) -> Any:
        """The sink's latency recorder."""
        return self._require_sink().latency


install_camelcase_aliases(StreamHandle, ("detect_event", "correlate_events"))
