"""The paper's real-world use case (§5, Figure 3, Algorithm 1).

Detect portions of the specimens being printed that were melted with
too-low or too-high thermal energy, cluster them within and across layers
with DBSCAN, and report clusters bigger than a volume threshold.

:func:`build_use_case` composes the exact Alg. 1 API sequence over a
:class:`~repro.core.api.Strata` instance; :func:`calibrate_job` implements
the "threshold computed based on historical information from previous
jobs" step by rendering (or accepting) reference layers and persisting the
fitted thresholds in the key-value store.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np

from ..am.dataset import LayerRecord
from ..am.geometry import PLATE_MM
from ..analysis.thresholds import calibrate_thresholds, store_thresholds
from ..kvstore.api import KVStore
from ..spe.sink import CollectingSink, Sink
from ..spe.source import Source
from .api import Strata
from .collectors import OTImageCollector, PrintingParameterCollector
from .functions import (
    DBSCANCorrelator,
    IsolateCells,
    IsolateSpecimens,
    LabelCell,
    LabelSpecimenCells,
)


@dataclass
class UseCaseConfig:
    """Tunables of the Alg. 1 pipeline.

    ``cell_edge_px`` is the Figure 5 sweep parameter; ``window_layers``
    (the paper's ``L``) is the Figure 6 sweep parameter. ``vectorized``
    selects the fused isolate+label detect function instead of per-cell
    tuples (see :mod:`repro.core.functions`); outputs are identical, but
    the default (False) keeps the paper's exact operator chain, whose
    per-cell cost structure the evaluation figures depend on.
    """

    image_px: int = 2000
    plate_mm: float = PLATE_MM
    cell_edge_px: int = 20
    window_layers: int = 10
    layer_thickness_mm: float = 0.04
    min_samples: int = 3
    eps_mm: float | None = None  # default: 1.6 x cell edge in mm
    min_volume_mm3: float = 0.0
    vectorized: bool = False
    parallelism: int = 1
    render_cluster_image: bool = False

    @property
    def px_per_mm(self) -> float:
        return self.image_px / self.plate_mm

    @property
    def cell_edge_mm(self) -> float:
        return self.cell_edge_px / self.px_per_mm

    @property
    def resolved_eps_mm(self) -> float:
        if self.eps_mm is not None:
            return self.eps_mm
        # Adjacent (including diagonal) cells must be density-reachable:
        # diagonal distance is sqrt(2) x edge; 1.6 adds slack for the z term.
        return 1.6 * self.cell_edge_mm

    @property
    def cell_volume_mm3(self) -> float:
        return self.cell_edge_mm**2 * self.layer_thickness_mm


def calibrate_job(
    store: KVStore,
    job_id: str,
    reference_images: Iterable[np.ndarray],
    cell_edge_px: int,
    regions: list[tuple[int, int, int, int]] | None = None,
) -> None:
    """Fit thermal thresholds on historical layers and persist them.

    ``regions`` should be the specimen footprints in pixels so calibration
    sees exactly the cell population the pipeline will label.
    """
    thresholds = calibrate_thresholds(
        reference_images, cell_edge_px, regions=regions
    )
    store_thresholds(store, job_id, thresholds)


def specimen_regions_px(
    specimens: Iterable, image_px: int, plate_mm: float = PLATE_MM
) -> list[tuple[int, int, int, int]]:
    """Pixel footprints of specimens, for :func:`calibrate_job`."""
    return [s.footprint.to_pixels(image_px, plate_mm) for s in specimens]


@dataclass
class UseCasePipeline:
    """A composed Alg. 1 pipeline plus handles the harness needs."""

    strata: Strata
    sink: Sink
    config: UseCaseConfig
    detect_fn: LabelSpecimenCells | LabelCell
    correlator: DBSCANCorrelator

    @property
    def cells_evaluated(self) -> int:
        """Cells scanned by the detect stage so far (throughput metric)."""
        return self.detect_fn.cells_evaluated


def build_use_case(
    ot_records: Iterable[LayerRecord],
    pp_records: Iterable[LayerRecord],
    config: UseCaseConfig,
    strata: Strata | None = None,
    sink: Sink | None = None,
    ot_source: Source | None = None,
    pp_source: Source | None = None,
    detect_override: LabelSpecimenCells | LabelCell | None = None,
    checkpointable: bool = False,
) -> UseCasePipeline:
    """Compose Algorithm 1 on a Strata instance.

    The caller must have calibrated thresholds for the job in
    ``strata.kv`` (see :func:`calibrate_job`) before deploying.
    ``ot_source``/``pp_source`` override the default collectors (used by
    the bench harness to pace arrivals); when given, the corresponding
    records iterable is ignored. ``detect_override`` swaps in a custom
    detect function (e.g. the adaptive-threshold variant) in the
    vectorized slot. ``checkpointable=True`` wraps both collectors for
    barrier injection and the expert sink in a
    :class:`~repro.recovery.dedup.DedupSink`, making the pipeline ready
    for ``deploy(checkpointer=...)`` / crash recovery.
    """
    if strata is None:
        strata = Strata()
    if sink is None:
        sink = CollectingSink("expert")
    if checkpointable:
        from ..recovery.dedup import DedupSink

        if not isinstance(sink, DedupSink):
            sink = DedupSink(sink)

    # Alg. 1 L1-L2: raw data collectors.
    strata.add_source(
        pp_source or PrintingParameterCollector(pp_records),
        "pp",
        checkpointable=checkpointable,
    )
    strata.add_source(
        ot_source or OTImageCollector(ot_records),
        "OT",
        checkpointable=checkpointable,
    )
    # Alg. 1 L3: fuse OT images with printing parameters (same tau/job/layer).
    strata.fuse("OT", "pp", "OT&pp")
    # Alg. 1 L4: isolate the pixels of each specimen.
    strata.partition(
        "OT&pp", "spec", IsolateSpecimens(config.image_px, config.plate_mm)
    )
    correlator = DBSCANCorrelator(
        eps_mm=config.resolved_eps_mm,
        min_samples=config.min_samples,
        px_per_mm=config.px_per_mm,
        layer_thickness_mm=config.layer_thickness_mm,
        cell_volume_mm3=config.cell_volume_mm3,
        min_volume_mm3=config.min_volume_mm3,
        render_cluster_image=config.render_cluster_image,
    )
    detect_fn: LabelSpecimenCells | LabelCell
    if detect_override is not None:
        detect_fn = detect_override
        strata.detect_event(
            "spec", "cellLabel", detect_fn, parallelism=config.parallelism
        )
    elif config.vectorized:
        # Alg. 1 L5+L6 fused: per-cell isolation and labeling in one pass.
        detect_fn = LabelSpecimenCells(strata.kv, config.cell_edge_px)
        strata.detect_event(
            "spec", "cellLabel", detect_fn, parallelism=config.parallelism
        )
    else:
        # Alg. 1 L5: isolate cells; L6: label each cell.
        strata.partition(
            "spec",
            "cell",
            IsolateCells(config.cell_edge_px),
            parallelism=config.parallelism,
        )
        detect_fn = LabelCell(strata.kv)
        strata.detect_event(
            "cell", "cellLabel", detect_fn, parallelism=config.parallelism
        )
    # Alg. 1 L7: cluster events within and across the last L layers.
    strata.correlate_events("cellLabel", "out", config.window_layers, correlator)
    strata.deliver("out", sink)
    return UseCasePipeline(
        strata=strata,
        sink=sink,
        config=config,
        detect_fn=detect_fn,
        correlator=correlator,
    )
