"""Layer-completeness punctuation.

The Event Aggregator must know when *all* events of a (job, layer,
specimen) group have arrived so it can trigger intra-layer clustering
without waiting for the next layer (which would add minutes of latency and
blow the 3 s QoS budget). STRATA solves this the way SPEs traditionally
do: with punctuation tuples.

The stage that first assigns a ``specimen`` to tuples (normally the
``partition`` step running ``isolateSpecimen``) appends, after each input
tuple's outputs, one punctuation tuple per specimen it produced. Every
downstream ``partition``/``detectEvent`` stage forwards punctuation
unchanged — stream order then guarantees a punctuation reaches
``correlateEvents`` only after every event derived from data preceding it.
"""

from __future__ import annotations

from ..spe.tuples import StreamTuple

#: payload key marking a punctuation tuple
PUNCTUATION_KEY = "__strata_punctuation__"
#: portion value carried by punctuation tuples
PUNCTUATION_PORTION = "__punct__"


def make_punctuation(template: StreamTuple, specimen: str) -> StreamTuple:
    """Punctuation closing (template.job, template.layer, specimen)."""
    return template.derive(
        payload={PUNCTUATION_KEY: True},
        specimen=specimen,
        portion=PUNCTUATION_PORTION,
    )


def is_punctuation(t: StreamTuple) -> bool:
    """True when ``t`` is a layer-completeness marker, not data."""
    return PUNCTUATION_KEY in t.payload
