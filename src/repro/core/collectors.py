"""Raw Data Collectors.

"To account for the heterogeneous sensing units of PBF-LB machines, this
module defines data-specific collectors" (§4). A collector is an SPE
source producing the Table 1 ``addSource`` schema:
``<tau, job, layer, [k:v, ...]>``.

Event time convention: ``tau`` is the layer completion time the machine
stamped on the record (``LayerRecord.completed_at``); offline replays
without a stamp fall back to the layer index — the natural discrete clock
of a PBF-LB build. Either way both collectors of one record emit the same
``tau``, which is what lets ``fuse`` without window parameters match them
exactly (Table 1), and in live multi-machine deployments a wall-clock
``tau`` stays monotone across interleaved jobs regardless of per-job skew.
"""

from __future__ import annotations

import queue
import time
from typing import Iterable, Iterator

from ..am.dataset import LayerRecord
from ..spe.source import Source
from ..spe.tuples import StreamTuple


def _event_time(record: LayerRecord) -> float:
    """The record's tau: machine stamp, or the layer clock for replays."""
    if record.completed_at is not None:
        return record.completed_at
    return float(record.layer)


class OTImageCollector(Source):
    """Collects per-layer Optical Tomography images.

    Wraps any iterable of :class:`LayerRecord` (a dataset replay or a live
    machine adapter) and emits one tuple per layer with the OT image in
    its payload.
    """

    def __init__(
        self, records: Iterable[LayerRecord], name: str = "ot-image-collector"
    ) -> None:
        super().__init__(name)
        self._records = records

    def __iter__(self) -> Iterator[StreamTuple]:
        for record in self._records:
            yield StreamTuple(
                tau=_event_time(record),
                job=record.job_id,
                layer=record.layer,
                payload={"image": record.image},
                ingest_time=time.monotonic(),
            )


class PrintingParameterCollector(Source):
    """Collects per-layer printing parameters (incl. the specimen map)."""

    def __init__(
        self, records: Iterable[LayerRecord], name: str = "printing-parameter-collector"
    ) -> None:
        super().__init__(name)
        self._records = records

    def __iter__(self) -> Iterator[StreamTuple]:
        for record in self._records:
            yield StreamTuple(
                tau=_event_time(record),
                job=record.job_id,
                layer=record.layer,
                payload=dict(record.parameters),
                ingest_time=time.monotonic(),
            )


class LiveLayerFeed:
    """Push-side adapter connecting a running machine to collectors.

    The machine's ``on_layer`` callback pushes each completed layer here;
    any number of collectors iterate over :meth:`records`. ``close`` ends
    the feed (build finished or aborted).
    """

    def __init__(self, maxsize: int = 64) -> None:
        self._queue: queue.Queue[LayerRecord | None] = queue.Queue(maxsize)
        self._fanout: list[queue.Queue[LayerRecord | None]] = []

    def push(self, record: LayerRecord) -> None:
        """Deliver one completed layer to every attached collector."""
        for q in self._fanout:
            q.put(record)

    def close(self) -> None:
        """End the feed: all collector iterators terminate."""
        for q in self._fanout:
            q.put(None)

    def records(self) -> Iterator[LayerRecord]:
        """A fresh record iterator (one per collector)."""
        q: queue.Queue[LayerRecord | None] = queue.Queue()
        self._fanout.append(q)

        def _drain() -> Iterator[LayerRecord]:
            while True:
                record = q.get()
                if record is None:
                    return
                yield record

        return _drain()
