"""STRATA API methods compiled to native operators.

Each Table 1 method maps onto the §2 operator catalogue:

* ``fuse``            -> Join (exact-tau, or windowed)
* ``partition``       -> Map emitting specimen/portion-tagged tuples,
                         plus layer-completeness punctuation
* ``detectEvent``     -> Map applying the user's detection function
* ``correlateEvents`` -> a stateful aggregate over (job, specimen) groups
                         windowed by the last L layers, triggered by
                         punctuation

Keeping these as thin compositions over the SPE's native operators is the
paper's central design point: the pipeline inherits parallel execution and
portability from the underlying engine.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable

from ..spe.operators.base import (
    Operator,
    as_tuple_list,
    reshard_callable,
    restore_callable,
    snapshot_callable,
)
from ..spe.tuples import WHOLE_PORTION, WHOLE_SPECIMEN, StreamTuple
from .punctuation import PUNCTUATION_KEY, is_punctuation, make_punctuation

#: partition / detectEvent user function: one tuple in, any number out
UserFunction = Callable[[StreamTuple], StreamTuple | Iterable[StreamTuple] | None]
#: correlateEvents user function:
#:   (job, layer, specimen, window_events) -> payload dict(s)
CorrelateFunction = Callable[
    [str, int, str, list[StreamTuple]], dict[str, Any] | list[dict[str, Any]] | None
]


def default_partition(t: StreamTuple) -> list[StreamTuple]:
    """Table 1 default: the whole tuple is one specimen/portion."""
    return [t.derive(specimen=WHOLE_SPECIMEN, portion=WHOLE_PORTION)]


class PartitionOperator(Operator):
    """Map wrapper for ``partition(s_in, s_out, F)``.

    If the inputs carry no specimen yet, this stage is the one assigning
    it, so it also emits the layer-completeness punctuation for every
    specimen derived from each input tuple. Punctuation arriving from an
    upstream partition is forwarded untouched.
    """

    num_inputs = 1

    def __init__(self, name: str, fn: UserFunction | None = None) -> None:
        super().__init__(name)
        self._fn = fn or default_partition

    def process(self, input_index: int, t: StreamTuple) -> list[StreamTuple]:
        if is_punctuation(t):
            return [t]
        assigns_specimen = t.specimen is None
        outputs = as_tuple_list(self._fn(t))
        for out in outputs:
            if out.specimen is None:
                out.specimen = WHOLE_SPECIMEN
            if out.portion is None:
                out.portion = WHOLE_PORTION
        if not assigns_specimen:
            return outputs
        seen: list[str] = []
        for out in outputs:
            if out.specimen not in seen:
                seen.append(out.specimen)
        if not seen:
            seen.append(WHOLE_SPECIMEN)
        punctuation = [make_punctuation(t, specimen) for specimen in seen]
        return outputs + punctuation

    # -- columnar execution -------------------------------------------------

    @property
    def supports_block(self) -> bool:
        """True when the user function offers an array-at-a-time variant."""
        return hasattr(self._fn, "process_block")

    def block_eligible(self, t: StreamTuple) -> bool:
        """True when ``t`` may join a columnar block through this stage.

        Punctuation and specimen-assigning tuples take the scalar path:
        that is where layer-completeness punctuation is minted, which no
        block kernel reproduces.
        """
        return t.specimen is not None and PUNCTUATION_KEY not in t.payload

    def process_block(self, block: "Any") -> "Any":
        """Array-at-a-time counterpart of :meth:`process` for eligible rows.

        The function's block variant must emit rows with specimen and
        portion assigned (both use-case kernels inherit/assign them), so
        the scalar path's defaulting never applies here.
        """
        return self._fn.process_block(block)

    def snapshot_state(self) -> dict[str, Any] | None:
        fn_state = snapshot_callable(self._fn)
        return None if fn_state is None else {"fn": fn_state}

    def restore_state(self, state: dict[str, Any]) -> None:
        restore_callable(self._fn, state.get("fn"))

    def reshard_state(self, states, shards, route):
        fn_states = [None if s is None else s.get("fn") for s in states]
        fns = reshard_callable(self._fn, fn_states, shards, route)
        return [None if f is None else {"fn": f} for f in fns]


class DetectEventOperator(Operator):
    """Map wrapper for ``detectEvent(s_in, s_out, F)``.

    When fed directly from a source or ``fuse`` (no specimen assigned),
    it adopts the partition defaults and emits punctuation itself, so
    pipelines without an explicit partition step still trigger the
    aggregator per layer.
    """

    num_inputs = 1

    def __init__(self, name: str, fn: UserFunction) -> None:
        super().__init__(name)
        self._fn = fn
        self.events_out = 0

    def process(self, input_index: int, t: StreamTuple) -> list[StreamTuple]:
        if PUNCTUATION_KEY in t.payload:
            return [t]
        assigns_specimen = t.specimen is None
        if assigns_specimen:
            t = t.derive(specimen=WHOLE_SPECIMEN, portion=WHOLE_PORTION)
        outputs = as_tuple_list(self._fn(t))
        if not outputs and not assigns_specimen:
            return outputs
        for out in outputs:
            if out.specimen is None:
                out.specimen = t.specimen
            if out.portion is None:
                out.portion = t.portion
        self.events_out += len(outputs)
        if assigns_specimen:
            specimens: list[str] = []
            for out in outputs:
                if out.specimen not in specimens:
                    specimens.append(out.specimen)
            if t.specimen not in specimens:
                specimens.append(t.specimen)
            outputs = outputs + [make_punctuation(t, s) for s in specimens]
        return outputs

    def process_many(self, tuples: list[StreamTuple]) -> list[StreamTuple]:
        """Bulk scalar path: one pass over a run of tuples.

        Runs of plain event-carrying tuples go through the function's own
        bulk method when it has one (``LabelCell.process_many`` hoists its
        threshold lookup out of the loop); punctuation and
        specimen-assigning tuples fall back to :meth:`process` at their
        exact stream position, so ordering and punctuation semantics are
        untouched.
        """
        fn_many = getattr(self._fn, "process_many", None)
        if fn_many is None:
            out: list[StreamTuple] = []
            extend = out.extend
            process = self.process
            for t in tuples:
                got = process(0, t)
                if got:
                    extend(got)
            return out
        out = []
        extend = out.extend
        run: list[StreamTuple] = []
        events = 0
        for t in tuples:
            if t.specimen is not None and PUNCTUATION_KEY not in t.payload:
                run.append(t)
                continue
            if run:
                got = fn_many(run)
                events += len(got)
                extend(got)
                run = []
            got = self.process(0, t)
            if got:
                extend(got)
        if run:
            got = fn_many(run)
            events += len(got)
            extend(got)
        self.events_out += events
        return out

    # -- columnar execution -------------------------------------------------

    @property
    def supports_block(self) -> bool:
        """True when the user function offers an array-at-a-time variant."""
        return hasattr(self._fn, "process_block")

    def block_eligible(self, t: StreamTuple) -> bool:
        """True when ``t`` may join a columnar block through this stage."""
        return t.specimen is not None and PUNCTUATION_KEY not in t.payload

    def process_block(self, block: "Any") -> "Any":
        """Array-at-a-time counterpart of :meth:`process` for eligible rows.

        Eligible rows carry a specimen, so the scalar path's
        specimen-defaulting and punctuation minting never apply; the event
        counter advances exactly as it would tuple-by-tuple.
        """
        out = self._fn.process_block(block)
        self.events_out += len(out)
        return out

    def snapshot_state(self) -> dict[str, Any]:
        state: dict[str, Any] = {"events_out": self.events_out}
        fn_state = snapshot_callable(self._fn)
        if fn_state is not None:
            state["fn"] = fn_state
        return state

    def restore_state(self, state: dict[str, Any]) -> None:
        self.events_out = int(state["events_out"])
        restore_callable(self._fn, state.get("fn"))

    def reshard_state(self, states, shards, route):
        # The event counter is additive: the sum lands in shard 0 so the
        # group-wide total survives any number of merge/split cycles.
        total = sum(int(s["events_out"]) for s in states if s is not None)
        fn_states = [None if s is None else s.get("fn") for s in states]
        fns = reshard_callable(self._fn, fn_states, shards, route)
        out: list[dict[str, Any]] = []
        for i in range(shards):
            state: dict[str, Any] = {"events_out": total if i == 0 else 0}
            if fns[i] is not None:
                state["fn"] = fns[i]
            out.append(state)
        return out

    def stats_extra(self) -> dict[str, float]:
        return {"events_detected_total": self.events_out}


class CorrelateEventsOperator(Operator):
    """Stateful aggregate for ``correlateEvents(s_in, s_out, L, F)``.

    Groups events by (job, specimen) — "across layers, events are
    automatically grouped by STRATA based on the specimen they refer to"
    (§4) — and keeps the last ``L`` layers per group. A punctuation for
    (job, layer, specimen) triggers the user function over that group's
    current window; layers older than the window are evicted.
    """

    num_inputs = 1

    def __init__(self, name: str, window_layers: int, fn: CorrelateFunction) -> None:
        super().__init__(name)
        if window_layers < 1:
            raise ValueError("L must be >= 1 layer")
        self._window = window_layers
        self._fn = fn
        # (job, specimen) -> {layer -> [events]}
        self._events: dict[tuple[str, str], dict[int, list[StreamTuple]]] = {}
        # last punctuation tuple per group, reused as output template
        self._last_punct: dict[tuple[str, str], StreamTuple] = {}
        self.triggers = 0

    def process(self, input_index: int, t: StreamTuple) -> list[StreamTuple]:
        group = (t.job, t.specimen)
        if not is_punctuation(t):
            self._events.setdefault(group, {}).setdefault(t.layer, []).append(t)
            return []
        self._last_punct[group] = t
        return self._trigger(group, t)

    def _trigger(self, group: tuple[str, str], punct: StreamTuple) -> list[StreamTuple]:
        layer = punct.layer
        per_layer = self._events.get(group, {})
        low = layer - self._window + 1
        window_events = [
            event
            for event_layer in sorted(per_layer)
            if low <= event_layer <= layer
            for event in per_layer[event_layer]
        ]
        # Evict anything that can no longer appear in a future window.
        for event_layer in [l for l in per_layer if l < low]:
            del per_layer[event_layer]
        self.triggers += 1
        payloads = self._fn(punct.job, layer, punct.specimen, window_events)
        if payloads is None:
            return []
        if isinstance(payloads, dict):
            payloads = [payloads]
        outputs: list[StreamTuple] = []
        for payload in payloads:
            out = punct.derive(payload=payload, portion=None)
            out.portion = None  # output schema of Table 1 has no portion
            if window_events:
                out.ingest_time = max(
                    [e.ingest_time for e in window_events] + [punct.ingest_time]
                )
            outputs.append(out)
        return outputs

    def snapshot_state(self) -> dict[str, Any]:
        """The full L-layer event window per (job, specimen) group.

        This is the state the 3 s recoat-gap QoS cannot afford to rebuild
        from scratch after a crash: up to L layers of events per specimen.
        """
        state: dict[str, Any] = {
            "events": {
                group: {layer: list(events) for layer, events in per_layer.items()}
                for group, per_layer in self._events.items()
            },
            "last_punct": dict(self._last_punct),
            "triggers": self.triggers,
        }
        fn_state = snapshot_callable(self._fn)
        if fn_state is not None:
            state["fn"] = fn_state
        return state

    def restore_state(self, state: dict[str, Any]) -> None:
        self._events = {
            group: {int(layer): list(events) for layer, events in per_layer.items()}
            for group, per_layer in state["events"].items()
        }
        self._last_punct = dict(state["last_punct"])
        self.triggers = int(state["triggers"])
        restore_callable(self._fn, state.get("fn"))

    def reshard_state(self, states, shards, route):
        """Split the per-group windows along the routing key.

        Assumes the group key ``(job, specimen)`` *is* the routing key —
        true for every Strata pipeline (``correlate_events`` replicates by
        specimen). Shards built from a different key function cannot be
        resharded consistently and should not be marked replicable.
        """
        events: dict[tuple[str, str], dict[int, list]] = {}
        last_punct: dict[tuple[str, str], Any] = {}
        triggers = 0
        fn_states: list[dict[str, Any] | None] = []
        for s in states:
            if s is None:
                continue
            for group, per_layer in s["events"].items():
                dest = events.setdefault(group, {})
                for layer, evs in per_layer.items():
                    dest.setdefault(int(layer), []).extend(evs)
            last_punct.update(s["last_punct"])
            triggers += int(s["triggers"])
            fn_states.append(s.get("fn"))
        fns = reshard_callable(self._fn, fn_states or [None], shards, route)
        out: list[dict[str, Any]] = []
        for i in range(shards):
            state: dict[str, Any] = {
                "events": {
                    group: {layer: list(evs) for layer, evs in per_layer.items()}
                    for group, per_layer in events.items()
                    if route(group) == i
                },
                "last_punct": {
                    group: punct for group, punct in last_punct.items()
                    if route(group) == i
                },
                "triggers": triggers if i == 0 else 0,
            }
            if fns[i] is not None:
                state["fn"] = fns[i]
            out.append(state)
        return out

    def stats_extra(self) -> dict[str, float]:
        return {"correlation_triggers_total": self.triggers}

    def on_close(self) -> list[StreamTuple]:
        # Nothing to flush: results are punctuation-triggered, and every
        # layer's punctuation has already fired by the time inputs close.
        self._events.clear()
        return []
