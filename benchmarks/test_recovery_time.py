"""Recovery benchmarks — checkpoint overhead and time-to-recover.

Two questions the fault-tolerance subsystem must answer quantitatively:

* **Overhead**: does periodic aligned checkpointing disturb the steady
  state?  We stream the evaluation build twice — once bare, once with a
  periodic :class:`CheckpointCoordinator` — and compare the end-to-end
  latency distribution of delivered results against the recoat-gap QoS.
* **Recovery time**: after a mid-build crash, how long until the pipeline
  is live again?  State restore (rebuild + load snapshot + seek sources)
  must fit comfortably inside one recoat gap; the suffix replay then
  closes the result gap.
"""

from __future__ import annotations

import time

import pytest

from repro.bench import format_table, save_json
from repro.core import (
    DeployConfig,
    RecoveryConfig,
    Strata,
    UseCaseConfig,
    build_use_case,
    calibrate_job,
    specimen_regions_px,
)
from repro.kvstore.memory import MemoryStore
from repro.recovery import ChaosInjector, CheckpointCoordinator, RecoveryCoordinator
from repro.spe.metrics import summarize

CHECKPOINT_INTERVAL_S = 0.4
PACE_S = 0.1  # steady-state inter-layer pacing for the overhead runs
CRASH_PACE_S = 0.25  # slower pacing so the crash run dies mid-build


def _paced(records, delay):
    for record in records:
        time.sleep(delay)
        yield record


def _build(strata, profile, workload, pace=0.0):
    edge = profile.scale_cell_edge(20)
    config = UseCaseConfig(
        image_px=profile.image_px, cell_edge_px=edge, window_layers=10,
        vectorized=True,
    )
    calibrate_job(
        strata.kv, workload.job.job_id, workload.reference_images(), edge,
        regions=specimen_regions_px(workload.job.specimens, profile.image_px),
    )
    records = workload.records
    ot = _paced(records, pace) if pace else iter(records)
    pp = _paced(records, pace) if pace else iter(records)
    return build_use_case(ot, pp, config, strata=strata, checkpointable=True)


class _TimedRecovery:
    """RecoveryCoordinator wrapper that times the restore phase alone."""

    def __init__(self, store) -> None:
        self.coordinator = RecoveryCoordinator(store)
        self.restore_seconds = float("nan")

    def __call__(self, nodes) -> None:
        started = time.perf_counter()
        self.coordinator(nodes)
        self.restore_seconds = time.perf_counter() - started

    @property
    def report(self):
        return self.coordinator.report


_rows: list[list] = []
_results: dict[str, dict] = {}


@pytest.mark.parametrize("variant", ["baseline", "checkpointed"])
def test_checkpoint_overhead(benchmark, profile, workload, variant):
    """Steady-state latency with and without periodic checkpointing."""

    def run():
        strata = Strata(engine_mode="threaded")
        pipeline = _build(strata, profile, workload, pace=PACE_S)
        coordinator = None
        if variant == "checkpointed":
            coordinator = CheckpointCoordinator(
                MemoryStore(), interval=CHECKPOINT_INTERVAL_S
            )
            strata.start(DeployConfig(recovery=RecoveryConfig(checkpointer=coordinator)))
            coordinator.start_periodic()
        else:
            strata.start()
        strata.wait(timeout=600)
        if coordinator is not None:
            coordinator.stop()
        epochs = len(coordinator.completed_epochs) if coordinator else 0
        return summarize(pipeline.sink.latency.samples()), len(
            pipeline.sink.results
        ), epochs

    summary, results, epochs = benchmark.pedantic(run, rounds=1, iterations=1)
    _rows.append(
        [
            variant,
            round(summary.median * 1000, 2),
            round(summary.p95 * 1000, 2),
            results,
            epochs,
        ]
    )
    _results[f"overhead/{variant}"] = {
        "median_s": summary.median,
        "p95_s": summary.p95,
        "results": results,
        "checkpoints": epochs,
        "qos_seconds": profile.qos_seconds,
    }
    benchmark.extra_info.update(variant=variant, median_latency_s=summary.median)
    assert results == profile.layers * len(workload.job.specimens)
    # the recoat-gap QoS must hold with checkpointing enabled
    assert summary.median <= profile.qos_seconds
    if variant == "checkpointed":
        assert epochs >= 2, "periodic coordinator committed too few epochs"


def test_recovery_time(benchmark, profile, workload):
    """Crash after two checkpoints; measure restore + replay-to-complete."""
    ckpt_store = MemoryStore()
    specimens = len(workload.job.specimens)

    def crash_then_recover():
        # -- run 1: checkpoint twice, then kill mid-build ---------------------
        strata = Strata(engine_mode="threaded")
        pipeline = _build(strata, profile, workload, pace=CRASH_PACE_S)
        coordinator = CheckpointCoordinator(ckpt_store, retain=3)
        strata.start(DeployConfig(recovery=RecoveryConfig(checkpointer=coordinator)))
        for _ in range(2):
            coordinator.trigger(timeout=30.0)
        chaos = ChaosInjector(
            strata._engine,
            lambda: len(pipeline.sink.results) >= 3 * specimens,
            timeout=120.0,
        ).start()
        assert chaos.join(timeout=180.0), "chaos kill did not fire"
        partial = len(pipeline.sink.results)

        # -- run 2: rebuild, restore, replay the suffix -----------------------
        strata2 = Strata(engine_mode="threaded")
        pipeline2 = _build(strata2, profile, workload)
        recovery = _TimedRecovery(ckpt_store)
        started = time.perf_counter()
        strata2.deploy(DeployConfig(recovery=RecoveryConfig(recover_from=recovery)))
        total = time.perf_counter() - started
        assert recovery.report is not None
        return {
            "partial_results_at_crash": partial,
            "checkpoints_before_crash": len(coordinator.completed_epochs),
            "recovered_epoch": recovery.report.epoch,
            "restore_s": recovery.restore_seconds,
            "replay_to_complete_s": total,
            "results_after_recovery": len(pipeline2.sink.results),
            "duplicates_suppressed": pipeline2.sink.duplicates,
        }

    outcome = benchmark.pedantic(crash_then_recover, rounds=1, iterations=1)
    _rows.append(
        [
            "recovery",
            round(outcome["restore_s"] * 1000, 2),
            round(outcome["replay_to_complete_s"] * 1000, 2),
            outcome["results_after_recovery"],
            outcome["checkpoints_before_crash"],
        ]
    )
    _results["recovery"] = {**outcome, "qos_seconds": profile.qos_seconds}
    benchmark.extra_info.update(**outcome)
    assert outcome["checkpoints_before_crash"] >= 2
    assert outcome["results_after_recovery"] == profile.layers * len(
        workload.job.specimens
    )
    # state restore must fit inside one recoat gap
    assert outcome["restore_s"] <= profile.qos_seconds


def test_recovery_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert len(_rows) == 3
    print("\n=== Recovery: checkpoint overhead and time-to-recover ===")
    print(
        format_table(
            ["run", "median/restore_ms", "p95/total_ms", "results", "ckpts"], _rows
        )
    )
    save_json("recovery_time", _results)
    overhead = _results["overhead/checkpointed"]["median_s"] - _results[
        "overhead/baseline"
    ]["median_s"]
    _results["overhead/delta_median_s"] = overhead
    save_json("recovery_time", _results)
