"""A2 ablation — DBSCAN vs the prior-work k-means correlator.

§5 motivates DBSCAN over the k-means used by earlier defect-detection
work [29]: no pre-declared cluster count, arbitrary shapes, robustness to
noise. This ablation clusters the same detected events both ways and
compares runtime and detection quality against the seeded ground truth.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.am import BuildDataset, OTImageRenderer
from repro.analysis import calibrate_thresholds, cell_means, event_mask, label_grid
from repro.bench import format_table, save_json
from repro.clustering import dbscan, detection_scores, kmeans


@pytest.fixture(scope="module")
def event_points(profile, workload):
    """Detected anomaly points + per-point ground truth over some layers."""
    edge = profile.scale_cell_edge(20)
    thresholds = calibrate_thresholds(
        workload.reference_images(), edge,
        regions=[s.footprint.to_pixels(profile.image_px) for s in workload.job.specimens],
    )
    renderer = OTImageRenderer(image_px=profile.image_px, seed=7)
    dataset = BuildDataset(workload.job, renderer, with_truth=True)
    points, truth = [], []
    layers = min(len(workload), 10)
    for layer in range(layers):
        record = dataset.layer_record(layer)
        means = cell_means(record.image, edge)
        events = event_mask(label_grid(means, thresholds)) & (means >= 32)
        truth_grid = cell_means(record.truth_mask.astype(float), edge) > 0.2
        for row, col in zip(*np.nonzero(events)):
            points.append((col * edge, row * edge, layer * 0.04 * profile.px_per_mm))
            truth.append(bool(truth_grid[row, col]))
    return np.array(points, dtype=float), np.array(truth), edge


def test_ablation_dbscan_vs_kmeans(benchmark, profile, event_points):
    points, truth, edge = event_points
    assert len(points) >= 10, "need events to cluster"
    eps = 1.8 * edge

    def run_both():
        t0 = time.perf_counter()
        db_labels = dbscan(points, eps=eps, min_samples=3)
        db_time = time.perf_counter() - t0
        k = max(1, db_labels.max() + 1)
        t0 = time.perf_counter()
        km_labels, _, _ = kmeans(points, k=int(k), seed=0)
        km_time = time.perf_counter() - t0
        return db_labels, db_time, km_labels, km_time

    db_labels, db_time, km_labels, km_time = benchmark.pedantic(
        run_both, rounds=1, iterations=1
    )
    db_scores = detection_scores(db_labels, truth)
    km_scores = detection_scores(km_labels, truth)

    rows = [
        ["DBSCAN", round(db_time * 1e3, 2), int(db_labels.max() + 1),
         round(db_scores["precision"], 3), round(db_scores["recall"], 3)],
        ["k-means", round(km_time * 1e3, 2), int(km_labels.max() + 1),
         round(km_scores["precision"], 3), round(km_scores["recall"], 3)],
    ]
    print("\n=== Ablation A2: DBSCAN vs k-means correlator ===")
    print(format_table(["method", "time_ms", "clusters", "precision", "recall"], rows))
    print("(k-means assigns every point to a cluster: noise/false positives "
          "cannot be separated, and k must be guessed in advance)")
    save_json(
        "ablation_clustering",
        {"dbscan": {"time_ms": db_time * 1e3, **db_scores},
         "kmeans": {"time_ms": km_time * 1e3, **km_scores},
         "points": len(points)},
    )
    # DBSCAN's key advantage in this use case: it can reject isolated
    # false-positive cells as noise, so its precision must dominate
    # k-means' (which clusters everything).
    assert db_scores["precision"] >= km_scores["precision"]
    benchmark.extra_info.update(
        dbscan_precision=db_scores["precision"], kmeans_precision=km_scores["precision"]
    )
