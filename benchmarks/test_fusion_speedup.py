"""Plan-compiler speedup — fig7-style throughput per optimizer pass.

Replays the evaluation build "as fast as possible" (offered rate far above
capacity) through the Alg. 1 pipeline at a fine cell size, where per-cell
tuple transport — queue locks, condvar wake-ups, thread hops — dominates
the analytics. The ablation isolates each pass of
:mod:`repro.spe.plan`: operator fusion, batched edge transport, the two
combined, and keyed replication on top.

Acceptance (ISSUE 2): fusion + batching must sustain at least 2x the
throughput of the unoptimized threaded plan. Results land in
``BENCH_fusion.json`` at the repository root so CI can archive them.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.bench import EvaluationWorkload, format_table, run_throughput_experiment
from repro.core import UseCaseConfig
from repro.spe import PlanConfig

BENCH_JSON = Path(__file__).resolve().parents[1] / "BENCH_fusion.json"

#: offered OT images/s — far above capacity, so runs measure saturation.
#: The vectorized plan sustains thousands of images/s, so the offered rate
#: must sit well above that for every variant to stay capacity-bound.
OFFERED_RATE = 2048.0

# Legacy variants pin ``vectorize=False``: they ablate transport passes and
# must keep measuring the scalar per-tuple cascade the earlier PRs tuned.
VARIANTS: dict[str, PlanConfig | None] = {
    "baseline": None,
    "fusion": PlanConfig(fusion=True, edge_batch_size=1, vectorize=False),
    "batching": PlanConfig(fusion=False, edge_batch_size=32, vectorize=False),
    "fusion+batching": PlanConfig(fusion=True, edge_batch_size=32, vectorize=False),
    "fusion+batching+replication": PlanConfig(
        fusion=True, edge_batch_size=32, parallelism=4, vectorize=False
    ),
    "vectorized": PlanConfig(fusion=True, edge_batch_size=32, vectorize=True),
    "vectorized+replication": PlanConfig(
        fusion=True, edge_batch_size=32, parallelism=4, vectorize=True
    ),
}

_results: dict[str, object] = {}


def _total_images() -> int:
    # 48 images keep one-time costs (thread spawn, first-layer threshold
    # loads) under a tenth of the vectorized variant's wall time, so the
    # speedup ratios measure steady-state throughput, not startup.
    return int(os.environ.get("REPRO_BENCH_FUSION_IMAGES", 48))


def _rounds() -> int:
    return int(os.environ.get("REPRO_BENCH_FUSION_ROUNDS", 2))


@pytest.fixture(scope="module")
def transport_workload(profile):
    """Evaluation build with sparse defects: transport-bound by design.

    The optimizer ablation measures *edge transport* (queue locks, condvar
    wake-ups, thread hops), so the workload keeps the DBSCAN correlation
    step off the critical path — dense defect clusters would bury the
    transport signal under analytics compute common to every variant.
    """
    return EvaluationWorkload(
        image_px=profile.image_px,
        layers=profile.layers,
        seed=7,
        defect_rate_per_stack=0.02,
    )


@pytest.mark.parametrize("variant", list(VARIANTS))
def test_fusion_speedup_variant(benchmark, profile, transport_workload, variant):
    config = UseCaseConfig(
        image_px=profile.image_px,
        cell_edge_px=profile.scale_cell_edge(10),  # fine cells: transport-bound
        window_layers=10,
    )
    runs: list = []

    def run_once():
        run = run_throughput_experiment(
            transport_workload,
            config,
            offered_images_s=OFFERED_RATE,
            total_images=_total_images(),
            optimize=VARIANTS[variant],
        )
        runs.append(run)
        return run

    benchmark.pedantic(run_once, rounds=_rounds(), iterations=1)
    # best-of-N: saturation throughput is a capacity, so scheduling noise
    # only ever subtracts from it
    run = max(runs, key=lambda r: r.achieved_images_s)
    _results[variant] = run
    benchmark.extra_info.update(
        variant=variant,
        achieved_images_s=round(run.achieved_images_s, 2),
        kcells_s=round(run.kcells_per_second, 1),
        mean_latency_ms=round(run.mean_latency_s * 1e3, 2),
    )


def test_fusion_speedup_report(benchmark, profile):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)  # report-only step
    assert len(_results) == len(VARIANTS)
    rows = [
        [
            name,
            round(run.achieved_images_s, 2),
            round(run.kcells_per_second, 1),
            round(run.mean_latency_s * 1e3, 1),
            round(run.p99_latency_s * 1e3, 1),
        ]
        for name, run in _results.items()
    ]
    print("\n=== Plan compiler: throughput & latency per optimizer pass ===")
    print(
        format_table(
            ["variant", "achieved_img_s", "kcells_s", "mean_lat_ms", "p99_lat_ms"],
            rows,
        )
    )

    baseline = _results["baseline"]
    optimized = _results["fusion+batching"]
    vectorized = _results["vectorized"]
    speedup = optimized.achieved_images_s / baseline.achieved_images_s
    vec_speedup = vectorized.kcells_per_second / baseline.kcells_per_second
    vec_over_scalar = vectorized.kcells_per_second / optimized.kcells_per_second
    divergence = _plan_divergence(profile)
    payload = {
        "profile": profile.name,
        "offered_images_s": OFFERED_RATE,
        "total_images": _total_images(),
        "cell_edge_px": profile.scale_cell_edge(10),
        "variants": {
            name: {
                "plan": plan.describe() if plan is not None else "off",
                "achieved_images_s": run.achieved_images_s,
                "kcells_per_second": run.kcells_per_second,
                "mean_latency_s": run.mean_latency_s,
                "p99_latency_s": run.p99_latency_s,
                "cells_evaluated": run.cells_evaluated,
                "wall_seconds": run.wall_seconds,
            }
            for (name, plan), run in zip(VARIANTS.items(), _results.values())
        },
        "speedup_fusion_batch": speedup,
        "vectorized_speedup": vec_speedup,
        "vectorized_over_fusion_batch": vec_over_scalar,
        "divergence": divergence,
    }
    BENCH_JSON.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"speedup (fusion+batching over baseline): {speedup:.2f}x -> {BENCH_JSON}")
    print(
        f"speedup (vectorized over baseline): {vec_speedup:.2f}x, "
        f"over fusion+batching: {vec_over_scalar:.2f}x, "
        f"divergence: {divergence}"
    )

    # every variant evaluates the identical workload
    assert all(
        run.cells_evaluated == baseline.cells_evaluated for run in _results.values()
    )
    # ISSUE 2 acceptance: >= 2x throughput from fusion + batched transport
    assert speedup >= 2.0, (
        f"fusion+batching reached only {speedup:.2f}x over the unoptimized plan"
    )
    # ISSUE 7 acceptance: array-at-a-time kernels over the fused chain
    assert vec_speedup >= 10.0, (
        f"vectorized reached only {vec_speedup:.2f}x over the unoptimized plan"
    )
    assert vec_over_scalar >= 5.0, (
        f"vectorized reached only {vec_over_scalar:.2f}x over fusion+batching"
    )
    assert divergence == 0, (
        f"vectorized plan diverged from scalar fusion on {divergence} results"
    )


def _plan_divergence(profile) -> int:
    """Count sink results where the vectorized plan differs from scalar.

    A short deterministic replay runs through the identical workload under
    both plan shapes; the result multisets must match exactly (the merge
    order of specimens within a layer is scheduler-dependent, the *set* of
    reports is not).
    """
    from repro.spe.sink import CollectingSink

    workload = EvaluationWorkload(
        image_px=profile.image_px, layers=6, seed=11, defect_rate_per_stack=0.4
    )
    config = UseCaseConfig(
        image_px=profile.image_px,
        cell_edge_px=profile.scale_cell_edge(10),
        window_layers=3,
    )
    from repro.bench.harness import _prepare
    from repro.core.api import Strata
    from repro.core.usecase import build_use_case

    outputs = []
    for vectorize in (False, True):
        strata = Strata(engine_mode="threaded")
        sink = CollectingSink("expert")
        records = list(workload.replay(6))
        build_use_case(
            iter(records), iter(records), config, strata=strata, sink=sink
        )
        _prepare(workload, config, strata)
        strata.deploy(
            PlanConfig(fusion=True, edge_batch_size=32, vectorize=vectorize)
        )
        outputs.append(
            sorted(repr(sorted(t.payload.items())) for t in sink.results)
        )
    scalar, vectorized = outputs
    if len(scalar) != len(vectorized):
        return abs(len(scalar) - len(vectorized))
    return sum(1 for a, b in zip(scalar, vectorized) if a != b)
