"""E1 / Figure 4 — OT image of a specimen and its thermal-energy clustering.

The paper's Figure 4 shows one specimen's OT image next to the clustering
of its anomalous regions. This benchmark runs the Alg. 1 pipeline with
``render_cluster_image`` enabled, picks the specimen with the most
clustered events, and emits both images (ASCII preview on stdout, raw
arrays in the JSON payload's summary statistics).
"""

from __future__ import annotations

import numpy as np

from repro.bench import (
    EvaluationWorkload,
    render_ascii_image,
    run_latency_experiment,
    save_json,
)
from repro.bench.harness import _LockstepOTSource  # noqa: F401  (doc pointer)
from repro.core import (
    Strata,
    UseCaseConfig,
    build_use_case,
    calibrate_job,
    specimen_regions_px,
)


def _run_fig4(profile, workload: EvaluationWorkload):
    config = UseCaseConfig(
        image_px=profile.image_px,
        cell_edge_px=profile.scale_cell_edge(20),
        window_layers=10,
        render_cluster_image=True,
    )
    strata = Strata(engine_mode="threaded")
    calibrate_job(
        strata.kv,
        workload.job.job_id,
        workload.reference_images(),
        config.cell_edge_px,
        regions=specimen_regions_px(workload.job.specimens, profile.image_px),
    )
    records = workload.records
    pipeline = build_use_case(iter(records), iter(records), config, strata=strata)
    strata.deploy()
    return pipeline, records


def test_fig4_specimen_image_and_clusters(benchmark, profile, workload):
    pipeline, records = benchmark.pedantic(
        lambda: _run_fig4(profile, workload), rounds=1, iterations=1
    )
    results = pipeline.sink.results
    assert results, "pipeline produced no aggregator reports"
    # pick the most defective (specimen, layer) report, as the paper's
    # figure shows a specimen with visible clusters
    best = max(results, key=lambda t: t.payload["num_events"])
    assert best.payload["num_clusters"] > 0, "no clusters found to render"

    spec_map = records[0].parameters["specimen_map"]
    x_min, y_min, x_max, y_max = spec_map[best.specimen]
    scale = profile.image_px / 250.0
    r0, r1 = int(y_min * scale), int(y_max * scale)
    c0, c1 = int(x_min * scale), int(x_max * scale)
    ot_crop = records[best.layer].image[r0:r1, c0:c1]
    cluster_image = best.payload["cluster_image"]

    step = max(1, ot_crop.shape[0] // 40)
    print(f"\n=== Figure 4 (specimen {best.specimen}, layer {best.layer}) ===")
    print("--- OT image (light emission) ---")
    print(render_ascii_image(ot_crop[::step, ::step]))
    print("--- clusters (0 bg, 1 noise, >=2 cluster ids) ---")
    print(render_ascii_image(np.asarray(cluster_image)))
    print(
        f"events={best.payload['num_events']} clusters={best.payload['num_clusters']}"
    )

    save_json(
        "fig4_clustering",
        {
            "profile": profile.name,
            "specimen": best.specimen,
            "layer": best.layer,
            "num_events": best.payload["num_events"],
            "num_clusters": best.payload["num_clusters"],
            "clusters": best.payload["clusters"],
        },
    )
    benchmark.extra_info["num_clusters"] = best.payload["num_clusters"]
    benchmark.extra_info["num_events"] = best.payload["num_events"]
