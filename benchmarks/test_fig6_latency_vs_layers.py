"""E3 / Figure 6 — latency boxplots vs the inter-layer window L.

Paper: "we investigate the effect of changing the number of previous
layers clustered together in method correlateEvents (parameter L) ...
we variate L from 5 layers (0.2 mm) to 80 layers (3.2 mm). Also in this
case, despite the expected growth trend, all reported latency values are
lower than the QoS threshold."

Expected shape: latency grows with L (more accumulated events to cluster
per trigger) while staying under the QoS threshold at the evaluated scale.
"""

from __future__ import annotations

import pytest

from repro.bench import (
    BOXPLOT_HEADERS,
    EvaluationWorkload,
    boxplot_row,
    format_table,
    run_latency_experiment,
    save_json,
)
from repro.core import UseCaseConfig

#: the paper's L sweep (0.2 mm ... 3.2 mm of build height at 40 um layers)
WINDOW_LAYERS = [5, 10, 20, 40, 80]

_results: dict[int, object] = {}


@pytest.fixture(scope="module")
def fig6_workload(profile):
    """Figure 6 needs enough layers to (mostly) fill the largest window."""
    layers = max(profile.layers, WINDOW_LAYERS[-1] + 10)
    return EvaluationWorkload(image_px=profile.image_px, layers=layers, seed=7)


@pytest.mark.parametrize("window", WINDOW_LAYERS)
def test_fig6_latency_for_window(benchmark, profile, fig6_workload, window):
    config = UseCaseConfig(
        image_px=profile.image_px,
        cell_edge_px=profile.scale_cell_edge(20),
        window_layers=window,
    )
    run = benchmark.pedantic(
        lambda: run_latency_experiment(fig6_workload, config, warmup_layers=4),
        rounds=1,
        iterations=1,
    )
    _results[window] = run
    if profile.name == "ci":
        assert run.meets_qos(profile.qos_seconds), (
            f"L={window} exceeded the {profile.qos_seconds}s QoS"
        )
    summary = run.summary
    benchmark.extra_info.update(
        window_layers=window,
        build_mm=round(window * config.layer_thickness_mm, 2),
        median_ms=round(summary.median * 1e3, 2),
        max_ms=round(summary.maximum * 1e3, 2),
    )


def test_fig6_report_and_trend(benchmark, profile):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)  # report-only step
    assert len(_results) == len(WINDOW_LAYERS), "run the parametrized benches first"
    rows = [
        boxplot_row(f"L={window}({window * 0.04:.1f}mm)", _results[window].summary)
        for window in WINDOW_LAYERS
    ]
    print("\n=== Figure 6: latency (ms) vs inter-layer window L ===")
    print(format_table(BOXPLOT_HEADERS, rows))
    print(f"QoS threshold: {profile.qos_seconds * 1e3:.0f} ms")
    save_json(
        "fig6_latency_vs_layers",
        {
            "profile": profile.name,
            "qos_seconds": profile.qos_seconds,
            "rows": {str(w): _results[w].summary.as_row(1e3) for w in WINDOW_LAYERS},
        },
    )
    # growth trend: the largest window must be slower than the smallest
    assert (
        _results[WINDOW_LAYERS[-1]].summary.median
        > _results[WINDOW_LAYERS[0]].summary.median * 0.9
    ), "latency should not shrink as L grows (paper Figure 6 trend)"
    assert (
        _results[WINDOW_LAYERS[-1]].summary.mean
        >= _results[WINDOW_LAYERS[0]].summary.mean
    )
