"""A5 ablation — static (historical) vs adaptive (online) thresholds.

The paper calibrates thresholds once from historical jobs. On a drifting
process (lens fouling, powder aging — modeled by the twin's
``drift_per_layer``) a static band eventually flags every healthy cell,
while the EWMA-adaptive detector re-centers per layer and keeps the
false-positive rate at its calibrated level — without losing the seeded
defects, which are *local* deviations from the current baseline.
"""

from __future__ import annotations

import pytest

from repro.am import BuildDataset, OTImageRenderer, make_job
from repro.bench import format_table, save_json
from repro.core import (
    Strata,
    UseCaseConfig,
    build_use_case,
    calibrate_job,
    specimen_regions_px,
)
from repro.core.functions import LabelSpecimenCellsAdaptive

DRIFT_PER_LAYER = -0.002
LAYERS = 60


def _run(profile, adaptive: bool, defect_rate: float, seed: int):
    edge = profile.scale_cell_edge(20)
    job = make_job("drifting", seed=seed, defect_rate_per_stack=defect_rate)
    renderer = OTImageRenderer(
        image_px=profile.image_px, seed=seed, drift_per_layer=DRIFT_PER_LAYER
    )
    records = [BuildDataset(job, renderer).layer_record(i) for i in range(LAYERS)]
    reference = make_job("ref", seed=1, defect_rate_per_stack=0.0)
    reference_images = [
        BuildDataset(reference, OTImageRenderer(image_px=profile.image_px, seed=1))
        .layer_record(i).image
        for i in range(3)
    ]
    config = UseCaseConfig(
        image_px=profile.image_px, cell_edge_px=edge, window_layers=10,
        vectorized=True,
    )
    strata = Strata(engine_mode="threaded")
    calibrate_job(
        strata.kv, job.job_id, reference_images, edge,
        regions=specimen_regions_px(job.specimens, profile.image_px),
    )
    detect_override = (
        LabelSpecimenCellsAdaptive(strata.kv, edge, alpha=0.3) if adaptive else None
    )
    pipeline = build_use_case(
        iter(records), iter(records), config, strata=strata,
        detect_override=detect_override,
    )
    strata.deploy()
    return pipeline.detect_fn.events_emitted, pipeline.cells_evaluated


_rows: list[list] = []


@pytest.mark.parametrize("variant", ["static", "adaptive"])
def test_ablation_adaptive_clean_drift(benchmark, profile, variant):
    events, cells = benchmark.pedantic(
        lambda: _run(profile, adaptive=(variant == "adaptive"), defect_rate=0.0, seed=3),
        rounds=1, iterations=1,
    )
    fp_rate = events / cells
    _rows.append([variant, "clean+drift", events, cells, round(fp_rate * 100, 3)])
    benchmark.extra_info.update(variant=variant, false_events=events)
    if variant == "adaptive":
        assert fp_rate < 0.01, "adaptive must hold the FP rate under drift"


@pytest.mark.parametrize("variant", ["static", "adaptive"])
def test_ablation_adaptive_defects_drift(benchmark, profile, variant):
    events, cells = benchmark.pedantic(
        lambda: _run(profile, adaptive=(variant == "adaptive"), defect_rate=1.0, seed=7),
        rounds=1, iterations=1,
    )
    _rows.append([variant, "defects+drift", events, cells, round(events / cells * 100, 3)])
    if variant == "adaptive":
        assert events > 0, "adaptive must still catch the seeded (local) defects"


def test_ablation_adaptive_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert len(_rows) == 4
    print("\n=== Ablation A5: static vs adaptive thresholds under drift ===")
    print(format_table(["variant", "workload", "events", "cells", "event_%"], _rows))
    save_json(
        "ablation_adaptive",
        {f"{row[0]}/{row[1]}": {"events": row[2], "cells": row[3]} for row in _rows},
    )
    clean = {row[0]: row[2] for row in _rows if row[1] == "clean+drift"}
    # static floods with false events; adaptive stays quiet
    assert clean["adaptive"] * 10 < clean["static"]
