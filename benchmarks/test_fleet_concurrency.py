"""Fleet concurrency — N tenant jobs sharing one worker budget.

Boots a :class:`~repro.fleet.service.FleetService` (no HTTP — the service
API is the HTTP handler minus the socket) and submits
``REPRO_BENCH_FLEET_JOBS`` deterministic thermal jobs from two tenants at
once. The fair-share scheduler splits the replica budget across them
through elastic bound lending while they run concurrently.

Measured: aggregate fleet throughput (images/s across all jobs), per-job
wall time, and scheduler share history. The divergence gate re-runs every
workload standalone (fresh single-tenant Strata, default deployment) and
requires identical result identities per job — multi-tenancy must be
invisible in the data.

Acceptance (ISSUE 6): every job completes, per-job divergence is 0, and
the aggregate throughput is positive. Results land in
``BENCH_fleet.json`` at the repository root so CI can archive them.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.bench import format_table
from repro.fleet import FleetConfig, FleetService, run_standalone

BENCH_JSON = Path(__file__).resolve().parents[1] / "BENCH_fleet.json"

TENANTS = ("acme", "zenith")


def _num_jobs() -> int:
    return int(os.environ.get("REPRO_BENCH_FLEET_JOBS", 3))


def _layers() -> int:
    return int(os.environ.get("REPRO_BENCH_FLEET_LAYERS", 6))


def _image_px() -> int:
    return int(os.environ.get("REPRO_BENCH_FLEET_IMAGE_PX", 160))


def _worker_budget() -> int:
    return int(os.environ.get("REPRO_BENCH_FLEET_BUDGET", 8))


def _workloads() -> list[dict]:
    return [
        {
            "name": f"fleet-bench-{i}",
            "layers": _layers(),
            "image_px": _image_px(),
            "cell_edge": 8,
            "window": 4,
            "seed": 20 + i,  # distinct but deterministic per job
        }
        for i in range(_num_jobs())
    ]


def test_fleet_concurrency(benchmark):
    workloads = _workloads()
    budget = _worker_budget()
    # every elastic job is charged its upper bound (the whole budget), so
    # the per-tenant quota must cover N such charges; contention control
    # here is the scheduler's fair-sharing, not admission
    config = FleetConfig(
        worker_budget=budget,
        max_jobs_per_tenant=len(workloads),
        max_parallelism_per_tenant=budget * max(1, len(workloads)),
        tick_s=0.05,
    )
    runs: dict = {}

    def run_fleet():
        service = FleetService(config)
        started = time.monotonic()
        records = [
            service.submit({
                "tenant": TENANTS[i % len(TENANTS)],
                "workload": workload,
                "deploy": {"plan": True, "elastic": {"max_parallelism": budget}},
            })
            for i, workload in enumerate(workloads)
        ]
        finals = [service.wait(r.job_id, timeout=600) for r in records]
        wall = time.monotonic() - started
        shares = service.scheduler.shares()
        service.drain(timeout=30.0)
        runs["fleet"] = (finals, wall, shares)

    benchmark.pedantic(run_fleet, rounds=1, iterations=1)
    finals, wall, _ = runs["fleet"]

    # -- every job completed --------------------------------------------------
    states = {record.job_id: record.state for record in finals}
    assert all(state == "COMPLETED" for state in states.values()), states

    # -- per-job divergence gate: in-fleet == standalone ----------------------
    divergences = []
    for record, workload in zip(finals, workloads):
        oracle = run_standalone(workload)
        mine = record.result["result_ids"]
        divergence = sum(a != b for a, b in zip(mine, oracle))
        divergence += abs(len(mine) - len(oracle))
        divergences.append(divergence)
    assert all(d == 0 for d in divergences), divergences

    # -- aggregate throughput -------------------------------------------------
    total_images = sum(int(w["layers"]) for w in workloads)
    aggregate_images_s = total_images / wall if wall > 0 else 0.0

    payload = {
        "jobs": len(workloads),
        "tenants": len(TENANTS),
        "layers_per_job": _layers(),
        "image_px": _image_px(),
        "worker_budget": budget,
        "wall_seconds": round(wall, 4),
        "total_images": total_images,
        "aggregate_images_per_second": round(aggregate_images_s, 3),
        "per_job": [
            {
                "job_id": record.job_id,
                "tenant": record.tenant,
                "state": record.state,
                "wall_seconds": record.result["wall_seconds"],
                "images_per_second": record.result["images_per_second"],
                "results": record.result["results"],
                "divergence": divergence,
            }
            for record, divergence in zip(finals, divergences)
        ],
    }
    BENCH_JSON.write_text(json.dumps(payload, indent=2) + "\n")

    print("\n=== Fleet concurrency ===")
    print(format_table(
        ["job", "tenant", "state", "wall_s", "img_s", "divergence"],
        [
            [
                entry["job_id"][-6:], entry["tenant"], entry["state"],
                entry["wall_seconds"], entry["images_per_second"],
                entry["divergence"],
            ]
            for entry in payload["per_job"]
        ],
    ))
    print(
        f"{len(workloads)} jobs / {len(TENANTS)} tenants on a budget of "
        f"{budget}: {aggregate_images_s:.2f} img/s aggregate -> {BENCH_JSON}"
    )
    assert aggregate_images_s > 0
