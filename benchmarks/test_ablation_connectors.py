"""A4 ablation — direct streams vs pub/sub module connectors.

Figure 2 decouples STRATA's modules with pub/sub connectors so detection
methods can be deployed/decommissioned independently; the cost is an
extra produce/consume hop per tuple crossing a module boundary. This
ablation measures that hop's latency impact on the full use case.
"""

from __future__ import annotations

import pytest

from repro.bench import format_table, save_json
from repro.bench.harness import run_latency_experiment
from repro.core import Strata, UseCaseConfig, build_use_case, calibrate_job, specimen_regions_px
from repro.spe import CollectingSink

_results: dict[str, object] = {}


def _run(profile, workload, connector_mode):
    """Threaded full-pipeline run; per-layer latency via lockstep harness."""
    config = UseCaseConfig(
        image_px=profile.image_px,
        cell_edge_px=profile.scale_cell_edge(20),
        window_layers=10,
    )
    # run_latency_experiment builds its own Strata in direct mode; for the
    # pubsub variant we reproduce its lockstep wiring with connector_mode.
    from repro.bench.harness import (
        _LockstepCoordinator,
        _LockstepOTSource,
        _LockstepSink,
    )

    records = workload.records[: min(len(workload), 10)]
    strata = Strata(engine_mode="threaded", connector_mode=connector_mode)
    coordinator = _LockstepCoordinator(results_per_layer=len(workload.job.specimens))
    sink = _LockstepSink(coordinator)
    ot_source = _LockstepOTSource(iter(records), coordinator)
    build_use_case(
        iter(records), iter(records), config, strata=strata, sink=sink,
        ot_source=ot_source,
    )
    calibrate_job(
        strata.kv, workload.job.job_id, workload.reference_images(),
        config.cell_edge_px,
        regions=specimen_regions_px(workload.job.specimens, profile.image_px),
    )
    strata.deploy()
    per_layer: dict[tuple, float] = {}
    for t, latency in zip(sink.results, sink.latency.samples()):
        key = (t.job, t.layer)
        per_layer[key] = max(per_layer.get(key, 0.0), latency)
    return list(per_layer.values())


@pytest.mark.parametrize("mode", ["direct", "pubsub"])
def test_ablation_connector_mode(benchmark, profile, workload, mode):
    latencies = benchmark.pedantic(
        lambda: _run(profile, workload, mode), rounds=1, iterations=1
    )
    from repro.spe import summarize

    _results[mode] = summarize(latencies)
    benchmark.extra_info.update(
        mode=mode, median_ms=round(_results[mode].median * 1e3, 2)
    )


def test_ablation_connector_report(benchmark, profile):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert len(_results) == 2
    rows = [
        [mode, round(s.median * 1e3, 2), round(s.maximum * 1e3, 2)]
        for mode, s in sorted(_results.items())
    ]
    print("\n=== Ablation A4: direct streams vs pub/sub connectors (ms) ===")
    print(format_table(["connector_mode", "median_ms", "max_ms"], rows))
    save_json(
        "ablation_connectors",
        {mode: s.as_row(1e3) for mode, s in _results.items()},
    )
    # both must stay within the QoS budget; the hop cost is the delta
    assert _results["pubsub"].maximum < profile.qos_seconds
