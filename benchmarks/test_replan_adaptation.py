"""Adaptive re-planning smoke benchmark (BENCH_replan.json).

Two skew-injection legs drive the runtime plan-mutation engine end to
end and gate the PR's acceptance criteria:

* **hot-key leg** — a paced replay turns hot mid-stream: every tuple
  after the skew point lands on one region key and its scrubbing cost
  jumps, so the fused chain (5 ms serial service) falls behind the 3 ms
  offered rate. The cost model must emit a runtime ``Unfuse``; the
  regained pipeline parallelism (2.5 ms/stage in parallel) has to bring
  post-adapt throughput back to at least what the static plan sustains
  before the skew.
* **low-fill leg** — a slow trickle through a vectorized chain forms
  starved blocks (1-2 rows against a 32-row batch), so the per-block
  conversion overhead stops amortizing. The cost model must flip the
  chain to scalar via ``SetChainMode``.

Both legs replay the identical records through a static plan and gate
divergence 0, mirroring the other benchmark divergence checks. Results
land in ``BENCH_replan.json`` at the repo root for the CI artifact.
"""

import json
import os
import time
from pathlib import Path

from repro.bench import format_table
from repro.core import DeployConfig, Strata
from repro.elastic import ElasticConfig, ReplanConfig
from repro.spe import CollectingSink
from repro.spe.source import Source
from repro.spe.tuples import StreamTuple

BENCH_JSON = Path(__file__).resolve().parents[1] / "BENCH_replan.json"

#: hot-key leg sizing: offered period, per-stage hot cost, record count.
#: 2 * WORK_S > SRC_DELAY > WORK_S, so the fused chain falls behind the
#: source while a single unfused stage still keeps pace with it.
N_RECORDS = int(os.environ.get("REPRO_BENCH_REPLAN_RECORDS", "600"))
SRC_DELAY = float(os.environ.get("REPRO_BENCH_REPLAN_SRC_MS", "3.0")) / 1e3
WORK_S = float(os.environ.get("REPRO_BENCH_REPLAN_WORK_MS", "2.5")) / 1e3
SKEW_AT = N_RECORDS // 3

#: low-fill leg sizing: bursts of TRICKLE_BURST tuples every
#: TRICKLE_DELAY. Each burst becomes one edge batch, so the vectorized
#: chain forms blocks of 4 rows against the plan's 32-row batch size —
#: fill 0.125, well under the 0.25 cost-model floor.
N_TRICKLE = int(os.environ.get("REPRO_BENCH_REPLAN_TRICKLE", "220"))
TRICKLE_BURST = 4
TRICKLE_DELAY = (
    float(os.environ.get("REPRO_BENCH_REPLAN_TRICKLE_MS", "16.0")) / 1e3
)

HOT_KEY = "s0"


class PacedSource(Source):
    """Paced replay that timestamps the onset of the skew phase.

    ``burst`` > 1 emits that many tuples back-to-back per sleep: the
    burst lands in one edge batch, so the vectorized chain forms blocks
    of ``burst`` rows — starved relative to the plan's batch size.
    """

    def __init__(self, name, records, delay, burst=1):
        super().__init__(name)
        self._records = list(records)
        self._delay = delay
        self._burst = max(1, burst)
        self.skew_onset = None

    def __iter__(self):
        for i, t in enumerate(self._records):
            if self._delay and i % self._burst == 0:
                time.sleep(self._delay)
            if self.skew_onset is None and t.payload.get("hot"):
                self.skew_onset = time.time()
            t.ingest_time = time.monotonic()
            yield t


class TimedSink(CollectingSink):
    """Collects results with their delivery wall time."""

    def __init__(self, name):
        super().__init__(name)
        self.deliveries = []

    def consume(self, t):
        self.deliveries.append((time.time(), t.payload["v"]))
        super().consume(t)


def skew_records():
    """One hot region key: every post-skew tuple lands on ``s0``."""
    out = []
    for i in range(N_RECORDS):
        hot = i >= SKEW_AT
        out.append(
            StreamTuple(
                tau=float(i), job="j", layer=i // 8,
                specimen=HOT_KEY if hot else f"s{i % 3}", portion="p0",
                payload={"v": i, "hot": hot},
            )
        )
    return out


def trickle_records():
    return [
        StreamTuple(
            tau=float(i), job="j", layer=i // 8,
            specimen=f"s{i % 3}", portion="p0", payload={"v": i},
        )
        for i in range(N_TRICKLE)
    ]


def scrub(t):
    if t.payload.get("hot"):
        time.sleep(WORK_S)
    return [t.derive(payload={**t.payload, "a": t.payload["v"] + 1})]


def enrich(t):
    if t.payload.get("hot"):
        time.sleep(WORK_S)
    return [t.derive(payload={**t.payload, "b": t.payload["v"] * 2})]


def vscrub(t):
    return [t.derive(payload={**t.payload, "a": t.payload["v"] + 1})]


def venrich(t):
    return [t.derive(payload={**t.payload, "b": t.payload["v"] * 2})]


vscrub.process_block = lambda block: block.with_columns(
    a=block.columns["v"] + 1
)
venrich.process_block = lambda block: block.with_columns(
    b=block.columns["v"] * 2
)


def assign(t):
    return [t.derive(specimen=f"s{t.payload['v'] % 3}", portion="p0")]


def mark(t):
    return [t.derive(payload={**t.payload, "c": t.payload["v"] + 1000})]


def build(records, delay, first, second, burst=1):
    """source -> fused two-stage chain -> sink (the adaptable plan)."""
    strata = Strata(engine_mode="threaded")
    source = PacedSource("src", records, delay, burst=burst)
    sink = TimedSink("out")
    (
        strata.add_source(source, "raw")
        .detect_event("m1", first)
        .detect_event("m2", second, replicable=False)
        .deliver(sink)
    )
    return strata, source, sink


def build_trickle(records, delay, burst):
    """source -> keyed group -> vectorized chain -> sink.

    The chain must sit behind an operator node: source edges never
    batch, so only the group's batched output edges deliver the
    multi-tuple runs the vectorized chain turns into blocks.
    """
    strata = Strata(engine_mode="threaded")
    source = PacedSource("src", records, delay, burst=burst)
    sink = TimedSink("out")
    (
        strata.add_source(source, "raw")
        .partition("parts", assign, replicable=False)
        .partition("cells", mark)
        .detect_event("v1", vscrub, replicable=False)
        .detect_event("v2", venrich, replicable=False)
        .deliver(sink)
    )
    return strata, source, sink


def result_keys(sink):
    return sorted(
        tuple(sorted((k, v) for k, v in t.payload.items() if k != "hot"))
        for t in sink.results
    )


def divergence(reference, candidate):
    mismatched = sum(1 for a, b in zip(reference, candidate) if a != b)
    return mismatched + abs(len(reference) - len(candidate))


def throughput(deliveries, start, stop):
    inside = [w for w, _ in deliveries if start <= w <= stop]
    span = max(inside) - min(inside) if len(inside) > 1 else 0.0
    return (len(inside) - 1) / span if span > 0 else 0.0


def first_event(controller, kinds):
    for event in controller.events:
        if event["kind"] in kinds:
            return event
    return None


def test_replan_adaptation_smoke(benchmark, capsys):
    # -- hot-key leg: static reference run (same records, same pacing) -----
    strata, _, static_sink = build(skew_records(), SRC_DELAY, scrub, enrich)
    strata.start(DeployConfig(plan=True))
    strata.wait(timeout=300)
    static_ref = result_keys(static_sink)
    pre = [w for w, v in static_sink.deliveries if v < SKEW_AT]
    static_pre_tput = (len(pre) - 1) / (max(pre) - min(pre))

    # -- hot-key leg: adaptive run under the cost model --------------------
    elastic = ElasticConfig(
        tick_s=0.15, cooldown_s=0.0,
        replan=ReplanConfig(
            cooldown_s=0.2, streak_ticks=2,
            # batched edges keep queue_fill tiny, so the unfuse rule is
            # gated on busy_fraction here (same reasoning as the tests)
            unfuse_queue_fill=0.0, refuse_queue_fill=0.0,
            unfuse_busy=0.5, refuse_busy=0.1,
        ),
    )
    state = {}

    def run_once():
        strata, source, sink = build(
            skew_records(), SRC_DELAY, scrub, enrich
        )
        strata.start(DeployConfig(plan=True, elastic=elastic))
        controller = strata.elastic
        strata.wait(timeout=300)
        state.update(
            source=source, sink=sink, controller=controller,
            summary=controller.summary(),
        )

    benchmark.pedantic(run_once, rounds=1, iterations=1)

    controller = state["controller"]
    actions = state["summary"]["actions"]
    adapt = first_event(controller, {"unfuse", "set_chain_mode"})
    assert adapt is not None, f"no runtime adaptation fired: {actions}"
    assert actions.get("unfuse", 0) >= 1
    time_to_adapt = adapt["wall_time"] - state["source"].skew_onset
    assert time_to_adapt > 0

    last_wall = max(w for w, _ in state["sink"].deliveries)
    post_tput = throughput(
        state["sink"].deliveries, adapt["wall_time"], last_wall
    )
    skew_divergence = divergence(static_ref, result_keys(state["sink"]))
    assert skew_divergence == 0
    # the unfused chain must at least restore the pre-skew static rate
    assert post_tput >= static_pre_tput, (
        f"post-adapt {post_tput:.0f}/s < pre-skew static {static_pre_tput:.0f}/s"
    )

    # -- low-fill leg: static reference run --------------------------------
    strata, _, trickle_static = build_trickle(
        trickle_records(), TRICKLE_DELAY, TRICKLE_BURST
    )
    strata.start(DeployConfig(plan=True))
    strata.wait(timeout=300)
    trickle_ref = result_keys(trickle_static)

    # -- low-fill leg: starved vectorized blocks must flip to scalar -------
    strata, source, trickle_sink = build_trickle(
        trickle_records(), TRICKLE_DELAY, TRICKLE_BURST
    )
    trickle_elastic = ElasticConfig(
        tick_s=0.1, cooldown_s=0.0,
        replan=ReplanConfig(cooldown_s=0.0, streak_ticks=2),
    )
    started = time.time()
    strata.start(DeployConfig(plan=True, elastic=trickle_elastic))
    trickle_controller = strata.elastic
    chain = trickle_controller.chains[0]
    assert chain.mode == "vectorized"
    strata.wait(timeout=300)

    trickle_actions = trickle_controller.summary()["actions"]
    flip = first_event(trickle_controller, {"set_chain_mode"})
    assert flip is not None, f"no mode flip fired: {trickle_actions}"
    assert trickle_actions.get("set_chain_mode", 0) >= 1
    assert chain.mode == "scalar"
    trickle_time_to_adapt = flip["wall_time"] - started
    trickle_divergence = divergence(trickle_ref, result_keys(trickle_sink))
    assert trickle_divergence == 0

    payload = {
        "benchmark": "replan_adaptation",
        "config": {
            "records": N_RECORDS,
            "skew_at": SKEW_AT,
            "source_period_ms": SRC_DELAY * 1e3,
            "hot_stage_cost_ms": WORK_S * 1e3,
            "trickle_records": N_TRICKLE,
            "trickle_burst": TRICKLE_BURST,
            "trickle_period_ms": TRICKLE_DELAY * 1e3,
        },
        "hot_key": {
            "time_to_adapt_s": round(time_to_adapt, 4),
            "actions": actions,
            "first_action": adapt["kind"],
            "pre_skew_static_throughput": round(static_pre_tput, 2),
            "post_adapt_throughput": round(post_tput, 2),
            "speedup_vs_pre_skew_static": round(
                post_tput / static_pre_tput, 3
            ),
            "divergence": skew_divergence,
        },
        "low_fill": {
            "time_to_adapt_s": round(trickle_time_to_adapt, 4),
            "actions": trickle_actions,
            "mode_after": chain.mode,
            "divergence": trickle_divergence,
        },
    }
    BENCH_JSON.write_text(json.dumps(payload, indent=2) + "\n")

    with capsys.disabled():
        print()
        print(format_table(
            ["leg", "first action", "time to adapt (s)",
             "throughput (t/s)", "divergence"],
            [
                ["hot-key", adapt["kind"], time_to_adapt, post_tput,
                 skew_divergence],
                ["low-fill", flip["kind"], trickle_time_to_adapt, "-",
                 trickle_divergence],
            ],
        ))
        print(
            f"pre-skew static: {static_pre_tput:.0f} t/s, "
            f"post-adapt: {post_tput:.0f} t/s -> {BENCH_JSON}"
        )
