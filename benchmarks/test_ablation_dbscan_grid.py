"""A3 ablation — grid-accelerated vs naive DBSCAN neighborhood search.

The Event Aggregator re-clusters a specimen's event window on every layer
completion, so DBSCAN's neighbor search is on the pipeline's critical
path. This ablation scales the number of event points and compares the
uniform-grid index against the O(n^2) scan.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.bench import format_table, save_json
from repro.clustering import dbscan, rand_index

SIZES = [500, 2000, 8000]

_rows: list[list] = []


def make_points(n, seed=0, blob_size=40):
    """Many small defect blobs scattered over the plate, plus noise.

    Mirrors real event windows: each defect contributes a bounded number
    of anomalous cells, and defects are spread across 12 specimens — so
    eps-neighborhoods are local, which is exactly the regime where a
    spatial index pays off over the O(n^2) scan.
    """
    rng = np.random.default_rng(seed)
    num_blobs = max(1, (3 * n // 4) // blob_size)
    centers = rng.uniform(0, 250, size=(num_blobs, 3))
    blobs = [rng.normal(center, 1.0, size=(blob_size, 3)) for center in centers]
    noise = rng.uniform(0, 250, size=(n - num_blobs * blob_size, 3))
    return np.vstack(blobs + [noise])


@pytest.mark.parametrize("n", SIZES)
def test_ablation_grid_vs_naive(benchmark, n):
    points = make_points(n)

    def run_both():
        t0 = time.perf_counter()
        grid = dbscan(points, eps=2.0, min_samples=4, use_grid=True)
        grid_time = time.perf_counter() - t0
        t0 = time.perf_counter()
        naive = dbscan(points, eps=2.0, min_samples=4, use_grid=False)
        naive_time = time.perf_counter() - t0
        return grid, grid_time, naive, naive_time

    grid, grid_time, naive, naive_time = benchmark.pedantic(
        run_both, rounds=1, iterations=1
    )
    assert rand_index(grid, naive) == 1.0, "grid index must not change the result"
    _rows.append([n, round(grid_time * 1e3, 2), round(naive_time * 1e3, 2),
                  round(naive_time / grid_time, 1)])
    benchmark.extra_info.update(points=n, speedup=round(naive_time / grid_time, 1))


def test_ablation_grid_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert len(_rows) == len(SIZES)
    print("\n=== Ablation A3: grid vs naive DBSCAN neighborhood search ===")
    print(format_table(["points", "grid_ms", "naive_ms", "speedup"], _rows))
    save_json(
        "ablation_dbscan_grid",
        {str(row[0]): {"grid_ms": row[1], "naive_ms": row[2]} for row in _rows},
    )
    # the grid must win at scale
    assert _rows[-1][1] < _rows[-1][2], "grid index should beat O(n^2) at 3200 points"
