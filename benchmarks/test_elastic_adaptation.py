"""Elastic adaptation under a QoS burst — time-to-recover and tail latency.

Replays the evaluation build at a paced offered rate while a stall
injector back-dates one mid-run layer past the 3 s recoat-gap deadline,
exactly as if an upstream stage had hung. The QoS watchdog fires, the
elastic controller's policy reacts (``qos_boost`` doubles the replica
count), and the run continues on the rescaled group.

Measured: p99 end-to-end latency before / during / after the burst
layer, wall-clock time from the first over-deadline delivery back to an
under-deadline one, and the controller's decision history. The divergence
gate re-runs the identical records on a static parallelism=1 deployment
and requires byte-identical result identities.

Acceptance (ISSUE 5): post-rescale p99 stays under the 3 s recoat gap and
the rescale loses, duplicates, and reorders nothing. Results land in
``BENCH_elastic.json`` at the repository root so CI can archive them.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Iterator

from repro.bench import format_table
from repro.core import (
    DeployConfig,
    Strata,
    UseCaseConfig,
    build_use_case,
    calibrate_job,
    specimen_regions_px,
)
from repro.core.collectors import OTImageCollector, PrintingParameterCollector
from repro.elastic import ElasticConfig
from repro.obs import RECOAT_GAP_SECONDS
from repro.spe import CollectingSink, PlanConfig, StreamTuple
from repro.spe.source import RateLimitedSource, Source

BENCH_JSON = Path(__file__).resolve().parents[1] / "BENCH_elastic.json"

STALL_SECONDS = 4.0  # past the 3 s recoat gap
#: stalled layers per burst — the correlate window takes the *latest*
#: ingest time across its L layers, so a burst must span the window for
#: the full stall to surface in sink latency
BURST_LAYERS = 4


def _total_images() -> int:
    return int(os.environ.get("REPRO_BENCH_ELASTIC_IMAGES", 24))


def _offered_rate() -> float:
    return float(os.environ.get("REPRO_BENCH_ELASTIC_RATE", 8.0))


class StallInjector(Source):
    """Back-dates a burst of layers so sink latency shows a stall."""

    def __init__(self, inner: Source, layers: range, stall_s: float) -> None:
        super().__init__(inner.name)
        self._inner = inner
        self._layers = layers
        self._stall_s = stall_s

    def __iter__(self) -> Iterator[StreamTuple]:
        for t in self._inner:
            if t.layer in self._layers:
                t.ingest_time = time.monotonic() - self._stall_s
            yield t


class TimedSink(CollectingSink):
    """Collects results plus their delivery wall time and latency."""

    def __init__(self) -> None:
        super().__init__("expert-timed")
        self.deliveries: list[tuple[float, float, int]] = []

    def consume(self, t: StreamTuple) -> None:
        now = time.monotonic()
        self.deliveries.append((now, t.latency_from(now), t.layer))
        super().consume(t)


def result_key(t):
    return (t.job, t.layer, t.specimen, t.payload["num_events"],
            t.payload["num_clusters"])


def p99(samples: list[float]) -> float:
    if not samples:
        return 0.0
    ordered = sorted(samples)
    return ordered[int(0.99 * (len(ordered) - 1))]


def _deploy(profile, workload, burst, elastic):
    config = UseCaseConfig(
        image_px=profile.image_px,
        cell_edge_px=profile.scale_cell_edge(10),
        window_layers=4,
    )
    strata = Strata(engine_mode="threaded", obs=True)
    calibrate_job(
        strata.kv, workload.job.job_id, workload.reference_images(),
        config.cell_edge_px,
        regions=specimen_regions_px(workload.job.specimens, config.image_px),
    )
    records = list(workload.replay(_total_images()))
    ot_source = StallInjector(
        RateLimitedSource(
            OTImageCollector(iter(records)), rate=_offered_rate()
        ),
        burst, STALL_SECONDS,
    )
    pp_source = StallInjector(
        PrintingParameterCollector(iter(records)), burst, STALL_SECONDS
    )
    sink = TimedSink()
    build_use_case(
        iter(records), iter(records), config, strata=strata,
        sink=sink, ot_source=ot_source, pp_source=pp_source,
    )
    deploy_cfg = DeployConfig(
        plan=PlanConfig(parallelism=1, edge_batch_size=8), elastic=elastic
    )
    started = time.monotonic()
    report = strata.deploy(deploy_cfg)
    wall = time.monotonic() - started
    return sink, report, wall


def test_elastic_adaptation(benchmark, profile, workload):
    burst = range(_total_images() // 2, _total_images() // 2 + BURST_LAYERS)
    runs = {}

    def run_once():
        runs["elastic"] = _deploy(
            profile, workload, burst,
            ElasticConfig(
                min_parallelism=1, max_parallelism=4,
                tick_s=0.05, cooldown_s=0.25,
            ),
        )

    benchmark.pedantic(run_once, rounds=1, iterations=1)
    sink, report, wall = runs["elastic"]

    # -- divergence gate: identical records on a static deployment -----------
    static_sink, _, _ = _deploy(profile, workload, burst, None)
    elastic_ids = sorted(map(result_key, sink.results))
    static_ids = sorted(map(result_key, static_sink.results))
    divergence = sum(a != b for a, b in zip(elastic_ids, static_ids))
    divergence += abs(len(elastic_ids) - len(static_ids))
    assert divergence == 0, (
        f"elastic run diverged from the static run in {divergence} results"
    )

    # -- tail latency per phase ----------------------------------------------
    before = [lat for _, lat, layer in sink.deliveries if layer < burst.start]
    during = [lat for _, lat, layer in sink.deliveries if layer in burst]
    after = [lat for _, lat, layer in sink.deliveries if layer >= burst.stop]
    p99_before, p99_during, p99_after = p99(before), p99(during), p99(after)

    # -- time to recover: first over-deadline delivery back to under ---------
    deadline = RECOAT_GAP_SECONDS
    violated_at = next(
        (wall_t for wall_t, lat, _ in sink.deliveries if lat > deadline), None
    )
    recovered_at = None
    if violated_at is not None:
        recovered_at = next(
            (
                wall_t for wall_t, lat, _ in sink.deliveries
                if wall_t > violated_at and lat <= deadline
            ),
            None,
        )
    time_to_recover = (
        recovered_at - violated_at
        if violated_at is not None and recovered_at is not None
        else None
    )

    elastic_summary = report.extra.get("elastic", {})
    payload = {
        "profile": profile.name,
        "offered_images_s": _offered_rate(),
        "total_images": _total_images(),
        "burst_layers": [burst.start, burst.stop],
        "stall_seconds": STALL_SECONDS,
        "qos_deadline_s": deadline,
        "p99_before_s": p99_before,
        "p99_during_s": p99_during,
        "p99_after_s": p99_after,
        "time_to_recover_s": time_to_recover,
        "divergence": divergence,
        "results": len(sink.results),
        "wall_seconds": wall,
        "rescales_up": elastic_summary.get("rescales_up", 0),
        "rescales_down": elastic_summary.get("rescales_down", 0),
        "final_parallelism": elastic_summary.get("groups", {}),
        "last_rescale_seconds": elastic_summary.get("last_rescale_seconds", 0.0),
    }
    BENCH_JSON.write_text(json.dumps(payload, indent=2) + "\n")

    print("\n=== Elastic adaptation under a QoS burst ===")
    print(format_table(
        ["phase", "p99_latency_ms"],
        [
            ["before burst", round(p99_before * 1e3, 1)],
            ["during burst", round(p99_during * 1e3, 1)],
            ["after rescale", round(p99_after * 1e3, 1)],
        ],
    ))
    print(
        f"rescales: +{payload['rescales_up']}/-{payload['rescales_down']}, "
        f"time to recover: {time_to_recover}, -> {BENCH_JSON}"
    )

    # the burst itself must register: the injected stall crossed the deadline
    assert p99_during > deadline
    # the controller reacted to the violation while the query ran
    assert payload["rescales_up"] >= 1, "QoS burst did not trigger a rescale"
    # ISSUE 5 acceptance: post-rescale p99 back under the recoat gap
    assert p99_after < deadline, (
        f"post-rescale p99 {p99_after:.3f}s still over the {deadline}s QoS gap"
    )
