"""E4 / Figure 7 — throughput and latency vs offered OT images/s.

Paper: "input data is replayed as fast as possible ... the throughput
initially grows linearly with the number of OT image/s fed to the query
while the latency remains low until the query processing capacity is
exceeded, the throughput flattens and the latency grows with a steeper
curve ... the throughput curve for the 10x10 cells reaches the max value
and flattens before that of the 20x20 cells (at approximately one-fourth
..., since each 20x20 cell corresponds to 4 10x10 cells)."

Expected shapes:
  * throughput ~= offered rate below saturation, then flat;
  * latency blows up past the knee;
  * the finer-cell configuration saturates at ~1/4 the image rate and
    both configurations cap at a similar cells/s ceiling.
"""

from __future__ import annotations

import pytest

from repro.bench import format_table, run_throughput_experiment, save_json
from repro.core import UseCaseConfig

#: the paper's two cell sizes at the 2000 px sensor
PAPER_EDGES_PX = [20, 10]
#: offered OT images/s sweep
OFFERED_RATES = [2, 4, 8, 16, 32, 64]

_results: dict[tuple[int, float], object] = {}


def _total_images(rate: float) -> int:
    # long enough for a stable measurement, short enough to keep the
    # saturated runs (achieved << offered) bounded in wall time
    return int(max(24, min(120, rate * 3)))


@pytest.mark.parametrize("paper_edge", PAPER_EDGES_PX)
@pytest.mark.parametrize("rate", OFFERED_RATES)
def test_fig7_point(benchmark, profile, workload, paper_edge, rate):
    edge = profile.scale_cell_edge(paper_edge)
    config = UseCaseConfig(
        image_px=profile.image_px, cell_edge_px=edge, window_layers=10
    )
    run = benchmark.pedantic(
        lambda: run_throughput_experiment(
            workload, config, offered_images_s=float(rate), total_images=_total_images(rate)
        ),
        rounds=1,
        iterations=1,
    )
    _results[(paper_edge, float(rate))] = run
    benchmark.extra_info.update(
        cell_edge_px=edge,
        offered_images_s=rate,
        achieved_images_s=round(run.achieved_images_s, 2),
        kcells_s=round(run.kcells_per_second, 1),
        mean_latency_ms=round(run.mean_latency_s * 1e3, 2),
    )


def test_fig7_report_and_shape(benchmark, profile):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)  # report-only step
    assert len(_results) == len(PAPER_EDGES_PX) * len(OFFERED_RATES)
    headers = [
        "cell", "offered_img_s", "achieved_img_s", "kcells_s",
        "mean_lat_ms", "p99_lat_ms",
    ]
    rows = []
    for paper_edge in PAPER_EDGES_PX:
        for rate in OFFERED_RATES:
            run = _results[(paper_edge, float(rate))]
            rows.append([
                f"{paper_edge}x{paper_edge}", rate,
                round(run.achieved_images_s, 1),
                round(run.kcells_per_second, 1),
                round(run.mean_latency_s * 1e3, 1),
                round(run.p99_latency_s * 1e3, 1),
            ])
    print("\n=== Figure 7: throughput & latency vs offered OT images/s ===")
    print(format_table(headers, rows))
    save_json(
        "fig7_throughput_latency",
        {
            "profile": profile.name,
            "series": {
                f"{edge}px": {
                    str(rate): {
                        "achieved_images_s": _results[(edge, float(rate))].achieved_images_s,
                        "kcells_s": _results[(edge, float(rate))].kcells_per_second,
                        "mean_latency_s": _results[(edge, float(rate))].mean_latency_s,
                    }
                    for rate in OFFERED_RATES
                }
                for edge in PAPER_EDGES_PX
            },
        },
    )

    coarse = [_results[(PAPER_EDGES_PX[0], float(r))] for r in OFFERED_RATES]
    fine = [_results[(PAPER_EDGES_PX[1], float(r))] for r in OFFERED_RATES]

    # shape 1: below saturation, achieved tracks offered (linear region)
    assert coarse[0].achieved_images_s == pytest.approx(
        OFFERED_RATES[0], rel=0.35
    ), "lowest offered rate should be sustained"

    # shape 2: the finest configuration saturates below the coarse one
    coarse_cap = max(r.achieved_images_s for r in coarse)
    fine_cap = max(r.achieved_images_s for r in fine)
    assert fine_cap < coarse_cap, (
        "finer cells must saturate at a lower image rate (paper Figure 7)"
    )

    # shape 3: past its knee, the fine configuration's latency has blown up
    # relative to its unloaded latency
    assert fine[-1].mean_latency_s > 5 * fine[0].mean_latency_s or (
        fine[-1].achieved_images_s >= OFFERED_RATES[-1] * 0.8
    ), "saturation must show up as a latency blow-up"

    # shape 4: both configurations cap at a similar cells/s ceiling
    # ("each 20x20 cell corresponds to 4 10x10 cells")
    coarse_kcells = max(r.kcells_per_second for r in coarse)
    fine_kcells = max(r.kcells_per_second for r in fine)
    ratio = fine_kcells / coarse_kcells
    assert 0.25 < ratio < 4.0, f"cells/s ceilings too far apart (ratio {ratio:.2f})"
