"""Accuracy + throughput gates for the two ``repro.thermal`` workloads.

Four measurements, one JSON artifact (``BENCH_thermal.json``):

1. **Forecast accuracy** — the Kalman estimator's one-layer-ahead
   forecast against the synthetic build's hidden true temperature field.
   The gate is the point of the filter: forecast RMSE must beat the raw
   sensor noise floor (else a thermometer would do).
2. **Reconstruction accuracy** — recovered laser power/speed against the
   hidden *actual* (drifted) schedule; gated at a few percent relative.
3. **Throughput, scalar vs vectorized** — the same forecast pipeline
   with the plan compiler's columnar path off and on.  The vectorized
   path replaces per-cell Python loops with the grid kernels, so the
   speedup is single-thread algorithmic and is gated unconditionally.
4. **Deploy-mode divergence** — threaded, distributed-tcp,
   distributed-shm and elastic runs of both pipelines must produce
   identical results (exact float comparison: both engine paths reduce
   summaries with the same numpy calls).

Sizing via ``REPRO_BENCH_THERMAL_LAYERS`` / ``_DIST_LAYERS``.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro.am.scanpath import ThermalBuildConfig, synthesize_thermal_build
from repro.bench import format_table
from repro.core import DeployConfig, Strata
from repro.core.deploy import ElasticConfig
from repro.dist import DistConfig
from repro.spe import PlanConfig
from repro.thermal import (
    ThermalPipelineConfig,
    build_forecast_pipeline,
    build_reconstruction_pipeline,
    calibrate_thermal_job,
)
from repro.thermal.estimator import PartitionThermalRegions

BENCH_JSON = Path(__file__).resolve().parents[1] / "BENCH_thermal.json"

#: forecast RMSE must beat the sensor noise floor by at least this margin
FORECAST_GATE_FRACTION_OF_SENSOR = 1.0
#: mean relative reconstruction error gates (vs the hidden actual values)
POWER_ERROR_GATE = 0.05
SPEED_ERROR_GATE = 0.08
#: vectorized frames/s over scalar frames/s (single-thread algorithmic win)
VECTORIZE_SPEEDUP_GATE = 1.2

_results: dict[str, dict] = {}


def _layers() -> int:
    return int(os.environ.get("REPRO_BENCH_THERMAL_LAYERS", 16))


def _dist_layers() -> int:
    return int(os.environ.get("REPRO_BENCH_THERMAL_DIST_LAYERS", 6))


def _build(layers: int, seed: int = 11):
    return synthesize_thermal_build(
        ThermalBuildConfig(layers=layers, seed=seed)
    )


def _run_forecast(build, deploy_config=None, plan=None):
    strata = Strata(engine_mode="threaded", connector_mode="pubsub")
    pipeline = build_forecast_pipeline(
        iter(build.records), iter(build.records), build.config,
        ThermalPipelineConfig(), strata=strata,
    )
    calibrate_thermal_job(strata.kv, build, laser=False)
    started = time.monotonic()
    if deploy_config is not None:
        strata.deploy(deploy_config)
    elif plan is not None:
        strata.deploy(DeployConfig(plan=plan))
    else:
        strata.deploy()
    wall = time.monotonic() - started
    return pipeline, wall


def _run_reconstruction(build, deploy_config=None):
    strata = Strata(engine_mode="threaded", connector_mode="pubsub")
    pipeline = build_reconstruction_pipeline(
        iter(build.records), build.config, ThermalPipelineConfig(),
        strata=strata,
    )
    calibrate_thermal_job(strata.kv, build)
    strata.deploy(deploy_config) if deploy_config is not None else strata.deploy()
    return pipeline


def _forecast_rmse_vs_truth(build, results) -> float:
    """RMSE of each layer-k region forecast against layer-k+1 truth."""
    records = {r.layer: r for r in build.records}
    part = PartitionThermalRegions()
    total, count = 0.0, 0
    for t in results:
        if t.layer + 1 not in records:
            continue
        truth = records[t.layer + 1].true_temp_cells
        i, j = (int(x) for x in t.specimen.split("-")[1:])
        (r0, r1), (c0, c1) = part.region_bounds(i, j, truth.shape)
        diff = t.payload["forecast"] - truth[r0:r1, c0:c1]
        total += float(np.sum(diff * diff))
        count += diff.size
    assert count, "no forecast results to score"
    return (total / count) ** 0.5


def _forecast_key(t):
    return (t.layer, t.specimen, float(t.payload["forecast_mean"]),
            float(t.payload["forecast_max"]), float(t.payload["filtered_mean"]),
            float(t.payload["innovation_rmse"]))


def _reconstruct_key(t):
    return (t.layer, t.specimen, float(t.payload["power_w_hat"]),
            float(t.payload["speed_mm_s_hat"]),
            float(t.payload["power_w_smoothed"]))


def test_forecast_accuracy(benchmark, profile):
    build = _build(_layers())
    runs = []
    benchmark.pedantic(
        lambda: runs.append(_run_forecast(build)), rounds=1, iterations=1
    )
    pipeline, wall = runs[0]
    results = pipeline.sink.results
    rmse = _forecast_rmse_vs_truth(build, results)
    sensor_std = build.config.thermal.sensor_var ** 0.5
    realized = [t.payload["realized_rmse"] for t in results
                if t.payload["realized_rmse"] >= 0]
    _results["forecast"] = {
        "layers": _layers(),
        "results": len(results),
        "forecast_rmse_vs_truth": rmse,
        "sensor_noise_std": sensor_std,
        "rmse_over_sensor_noise": rmse / sensor_std,
        "realized_rmse_vs_measured": float(np.mean(realized)),
        "wall_seconds": wall,
    }
    benchmark.extra_info.update(rmse=round(rmse, 3), sensor_std=sensor_std)
    assert rmse <= sensor_std * FORECAST_GATE_FRACTION_OF_SENSOR, (
        f"forecast RMSE {rmse:.3f} must beat the sensor noise floor "
        f"{sensor_std:.3f}"
    )


def test_reconstruction_accuracy(benchmark, profile):
    build = _build(_layers())
    runs = []
    benchmark.pedantic(
        lambda: runs.append(_run_reconstruction(build)), rounds=1, iterations=1
    )
    results = sorted(runs[0].sink.results, key=lambda t: t.layer)
    actual = {r.layer: (r.actual_power_w, r.actual_speed_mm_s)
              for r in build.records}
    power_errs = [abs(t.payload["power_w_hat"] - actual[t.layer][0])
                  / actual[t.layer][0] for t in results]
    speed_errs = [abs(t.payload["speed_mm_s_hat"] - actual[t.layer][1])
                  / actual[t.layer][1] for t in results]
    _results["reconstruction"] = {
        "layers": _layers(),
        "results": len(results),
        "power_mean_rel_error": float(np.mean(power_errs)),
        "power_max_rel_error": float(np.max(power_errs)),
        "speed_mean_rel_error": float(np.mean(speed_errs)),
        "speed_max_rel_error": float(np.max(speed_errs)),
    }
    benchmark.extra_info.update(
        power_err_pct=round(float(np.mean(power_errs)) * 100, 2),
        speed_err_pct=round(float(np.mean(speed_errs)) * 100, 2),
    )
    assert float(np.mean(power_errs)) <= POWER_ERROR_GATE
    assert float(np.mean(speed_errs)) <= SPEED_ERROR_GATE


def test_throughput_scalar_vs_vectorized(benchmark, profile):
    build = _build(_layers())
    modes = {
        "scalar": PlanConfig(vectorize=False),
        "vectorized": PlanConfig(vectorize=True),
    }
    out: dict[str, dict] = {}

    def run_all():
        for name, plan in modes.items():
            pipeline, wall = _run_forecast(build, plan=plan)
            out[name] = {
                "wall_seconds": wall,
                "frames_s": pipeline.frames_processed / wall,
                "frames": pipeline.frames_processed,
                "result_keys": sorted(map(_forecast_key, pipeline.sink.results)),
            }

    benchmark.pedantic(run_all, rounds=1, iterations=1)
    speedup = out["vectorized"]["frames_s"] / out["scalar"]["frames_s"]
    assert out["vectorized"]["result_keys"] == out["scalar"]["result_keys"], (
        "vectorized execution changed forecast results"
    )
    _results["throughput"] = {
        "scalar_frames_s": out["scalar"]["frames_s"],
        "vectorized_frames_s": out["vectorized"]["frames_s"],
        "vectorized_speedup": speedup,
        "speedup_gate": VECTORIZE_SPEEDUP_GATE,
        "results_identical": True,
    }
    benchmark.extra_info.update(speedup=round(speedup, 2))
    assert speedup >= VECTORIZE_SPEEDUP_GATE, (
        f"vectorized path must be >= {VECTORIZE_SPEEDUP_GATE}x scalar, "
        f"got {speedup:.2f}x"
    )


def test_deploy_mode_divergence(benchmark, profile):
    build = _build(_dist_layers(), seed=7)
    image_bytes = build.config.image_px ** 2 * 8
    deploys = {
        "threaded": None,
        "distributed-tcp": DeployConfig(
            dist=DistConfig(workers=2, transport="tcp")
        ),
        "distributed-shm": DeployConfig(
            dist=DistConfig(workers=2, transport="shm", shm_slots=32,
                            shm_slab_bytes=image_bytes + (1 << 20))
        ),
        "elastic": DeployConfig(
            plan=True,
            elastic=ElasticConfig(max_parallelism=4, tick_s=0.05,
                                  cooldown_s=0.0),
        ),
    }
    forecast_keys: dict[str, list] = {}
    reconstruct_keys: dict[str, list] = {}

    def run_all():
        for name, cfg in deploys.items():
            pipeline, _ = _run_forecast(build, deploy_config=cfg)
            forecast_keys[name] = sorted(map(_forecast_key, pipeline.sink.results))
            pipeline = _run_reconstruction(build, deploy_config=cfg)
            reconstruct_keys[name] = sorted(
                map(_reconstruct_key, pipeline.sink.results)
            )

    benchmark.pedantic(run_all, rounds=1, iterations=1)
    divergences = {}
    for name in deploys:
        divergences[name] = {
            "forecast": sum(
                a != b for a, b in
                zip(forecast_keys["threaded"], forecast_keys[name])
            ) + abs(len(forecast_keys["threaded"]) - len(forecast_keys[name])),
            "reconstruct": sum(
                a != b for a, b in
                zip(reconstruct_keys["threaded"], reconstruct_keys[name])
            ) + abs(len(reconstruct_keys["threaded"])
                    - len(reconstruct_keys[name])),
        }
    _results["divergence"] = {
        "layers": _dist_layers(),
        "modes": list(deploys),
        "per_mode": divergences,
        "total": sum(sum(d.values()) for d in divergences.values()),
    }
    assert _results["divergence"]["total"] == 0, divergences


def test_thermal_report(benchmark, profile):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)  # report-only
    assert set(_results) == {
        "forecast", "reconstruction", "throughput", "divergence"
    }, f"missing bench sections: {sorted(_results)}"
    fc = _results["forecast"]
    rc = _results["reconstruction"]
    tp = _results["throughput"]
    print("\n=== Thermal workloads: accuracy & throughput ===")
    print(format_table(
        ["metric", "value", "gate"],
        [
            ["forecast RMSE vs truth", round(fc["forecast_rmse_vs_truth"], 3),
             f"<= sensor {fc['sensor_noise_std']:.2f}"],
            ["power mean rel err %",
             round(rc["power_mean_rel_error"] * 100, 2),
             f"<= {POWER_ERROR_GATE * 100:.0f}%"],
            ["speed mean rel err %",
             round(rc["speed_mean_rel_error"] * 100, 2),
             f"<= {SPEED_ERROR_GATE * 100:.0f}%"],
            ["vectorized speedup", round(tp["vectorized_speedup"], 2),
             f">= {VECTORIZE_SPEEDUP_GATE}x"],
            ["deploy-mode divergence", _results["divergence"]["total"], "== 0"],
        ],
    ))
    payload = {
        "profile": profile.name,
        "gates": {
            "forecast_rmse_beats_sensor_noise": True,
            "power_error_gate": POWER_ERROR_GATE,
            "speed_error_gate": SPEED_ERROR_GATE,
            "vectorize_speedup_gate": VECTORIZE_SPEEDUP_GATE,
            "divergence_gate": 0,
        },
        **_results,
    }
    BENCH_JSON.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"-> {BENCH_JSON}")
