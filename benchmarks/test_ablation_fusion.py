"""A1 ablation — native per-cell operator chain vs fused vectorized detect.

The paper's pipeline expresses cell isolation and labeling as separate
native operators (Alg. 1 L5-L6), which materializes one tuple per cell.
STRATA's API equally admits a single detectEvent whose function scans the
specimen's cell grid in one vectorized pass. Outputs are identical (only
anomalous cells flow on); this ablation quantifies the cost of per-cell
tuple materialization — the price the paper's architecture pays for
operator-level composability.
"""

from __future__ import annotations

import pytest

from repro.bench import format_table, run_latency_experiment, save_json
from repro.core import UseCaseConfig

_results: dict[str, object] = {}

VARIANTS = {
    "per-cell-operators": False,  # vectorized=False: Alg. 1 literal chain
    "fused-vectorized": True,
}


@pytest.mark.parametrize("variant", sorted(VARIANTS))
def test_ablation_fusion_variant(benchmark, profile, workload, variant):
    config = UseCaseConfig(
        image_px=profile.image_px,
        cell_edge_px=profile.scale_cell_edge(10),  # fine cells stress the chain
        window_layers=10,
        vectorized=VARIANTS[variant],
    )
    run = benchmark.pedantic(
        lambda: run_latency_experiment(workload, config), rounds=1, iterations=1
    )
    _results[variant] = run
    benchmark.extra_info.update(
        variant=variant,
        median_ms=round(run.summary.median * 1e3, 2),
        cells=run.cells_evaluated,
    )


def test_ablation_fusion_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert len(_results) == 2
    rows = [
        [name, round(run.summary.median * 1e3, 2), round(run.summary.maximum * 1e3, 2),
         run.cells_evaluated]
        for name, run in sorted(_results.items())
    ]
    print("\n=== Ablation A1: operator chain vs fused detect (latency ms) ===")
    print(format_table(["variant", "median_ms", "max_ms", "cells"], rows))
    save_json(
        "ablation_fusion",
        {name: run.summary.as_row(1e3) for name, run in _results.items()},
    )
    # both evaluate the same cells; the fused pass must not be slower
    chain = _results["per-cell-operators"]
    fused = _results["fused-vectorized"]
    assert chain.cells_evaluated == fused.cells_evaluated
    assert fused.summary.median <= chain.summary.median, (
        "vectorized detect should be at least as fast as per-cell tuples"
    )
