"""Shared benchmark fixtures.

Sizing comes from :mod:`repro.bench.config`: the default ``ci`` profile
runs every figure in minutes at a reduced sensor resolution; set
``REPRO_BENCH_PROFILE=full`` for the paper's 2000 px images and wider
sweeps. Cell sizes are specified in paper-scale pixels (at 2000 px) and
mapped to the active resolution preserving their physical mm size.
"""

from __future__ import annotations

import pytest

from repro.bench import EvaluationWorkload, active_profile


@pytest.fixture(scope="session")
def profile():
    return active_profile()


@pytest.fixture(scope="session")
def workload(profile):
    """The evaluation build, rendered once per session."""
    return EvaluationWorkload(image_px=profile.image_px, layers=profile.layers, seed=7)
