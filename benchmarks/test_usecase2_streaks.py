"""E7 (extension) — recoater-streak use case: detection quality & latency.

Not a paper figure: §7 lists new defect types as future work, and this
benchmark evaluates the recoater-streak pipeline the way the paper's
evaluation would — detection quality against seeded ground truth plus the
per-layer latency of the plate-wide analysis.
"""

from __future__ import annotations

import time

import pytest

from repro.am import BuildDataset, OTImageRenderer, make_job
from repro.bench import format_table, save_json
from repro.core import Strata, build_streak_use_case

LAYERS = 50


def test_streak_detection_quality(benchmark, profile):
    job = make_job(
        "streak-eval", seed=19, defect_rate_per_stack=0.3,
        streak_rate_per_100_layers=12.0,
    )
    renderer = OTImageRenderer(image_px=profile.image_px, seed=19)
    records = [BuildDataset(job, renderer).layer_record(i) for i in range(LAYERS)]

    def run():
        pipeline = build_streak_use_case(
            iter(records), iter(records), image_px=profile.image_px,
            strata=Strata(engine_mode="threaded"),
        )
        started = time.monotonic()
        pipeline.strata.deploy()
        return pipeline, time.monotonic() - started

    pipeline, wall = benchmark.pedantic(run, rounds=1, iterations=1)

    seeded = [s for s in job.streaks if s.first_layer < LAYERS - 1]
    reported_ys = {
        round(s["y_mm"])
        for t in pipeline.sink.results
        for s in t.payload["streaks"]
    }
    hits = [
        s for s in seeded
        if any(abs(s.y_mm - y) <= 3.0 for y in reported_ys)
    ]
    false_ys = [
        y for y in reported_ys
        if not any(abs(s.y_mm - y) <= 3.0 for s in seeded)
    ]
    latencies = pipeline.sink.latency.samples()
    mean_latency_ms = sum(latencies) / len(latencies) * 1e3 if latencies else 0.0

    rows = [
        ["seeded streaks", len(seeded)],
        ["detected", len(hits)],
        ["missed", len(seeded) - len(hits)],
        ["false streaks", len(false_ys)],
        ["mean latency (ms)", round(mean_latency_ms, 2)],
        ["replay wall (s)", round(wall, 2)],
    ]
    print("\n=== E7: recoater-streak use case ===")
    print(format_table(["metric", "value"], rows))
    save_json(
        "usecase2_streaks",
        {
            "seeded": len(seeded), "detected": len(hits),
            "false": len(false_ys), "mean_latency_ms": mean_latency_ms,
        },
    )
    benchmark.extra_info.update(seeded=len(seeded), detected=len(hits))

    assert seeded, "workload must contain streaks"
    assert len(hits) == len(seeded), "every persistent seeded streak must be found"
    assert len(false_ys) == 0, f"spurious streaks reported at y={false_ys}"
    assert mean_latency_ms / 1e3 < profile.qos_seconds


def test_streaks_unaffected_by_thermal_blobs(benchmark, profile):
    """Blob defects (the other defect type) must not register as streaks."""
    job = make_job("blob-only", seed=7, defect_rate_per_stack=1.2)
    renderer = OTImageRenderer(image_px=profile.image_px, seed=7)
    records = [BuildDataset(job, renderer).layer_record(i) for i in range(20)]

    def run():
        pipeline = build_streak_use_case(
            iter(records), iter(records), image_px=profile.image_px,
            strata=Strata(engine_mode="threaded"),
        )
        pipeline.strata.deploy()
        return pipeline

    pipeline = benchmark.pedantic(run, rounds=1, iterations=1)
    streaks = [s for t in pipeline.sink.results for s in t.payload["streaks"]]
    assert streaks == [], f"thermal blobs misread as streaks: {streaks}"
