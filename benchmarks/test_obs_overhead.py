"""Observability overhead — instrumented vs bare throughput ablation.

The obs layer claims its per-tuple cost is a None check plus a few plain
attribute updates (counters read lazily at scrape time). This benchmark
holds it to that: the fusion workload replayed at saturation with the full
obs stack on — registry, processing-time histograms, sampled tracer, QoS
watchdog — must sustain at least 0.9x the throughput of the identical
uninstrumented run.

Results land in ``BENCH_obs.json`` at the repository root so CI can
archive them and fail the smoke-bench job on a regression.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.bench import EvaluationWorkload, format_table, run_throughput_experiment
from repro.core import UseCaseConfig
from repro.obs import ObsConfig, ObsContext
from repro.spe import PlanConfig

BENCH_JSON = Path(__file__).resolve().parents[1] / "BENCH_obs.json"

#: offered OT images/s — far above capacity, so runs measure saturation
OFFERED_RATE = 256.0

#: throughput with obs on must stay within this factor of obs off
MIN_RATIO = 0.9

#: the optimized plan of the fusion benchmark — the hot transport path
#: where per-tuple instrumentation overhead would show first
PLAN = PlanConfig(fusion=True, edge_batch_size=32)

VARIANTS: dict[str, object] = {
    "obs-off": None,
    "obs-on": "fresh-context",  # a new fully-armed ObsContext per run
}

_results: dict[str, object] = {}


def _total_images() -> int:
    return int(os.environ.get("REPRO_BENCH_OBS_IMAGES", 24))


def _rounds() -> int:
    return int(os.environ.get("REPRO_BENCH_OBS_ROUNDS", 2))


def _obs_for(variant: str) -> ObsContext | None:
    if VARIANTS[variant] is None:
        return None
    # everything on: timing histograms, tracer, watchdog
    return ObsContext(ObsConfig(trace_sample_every=64, timing_histograms=True))


@pytest.fixture(scope="module")
def transport_workload(profile):
    """Same transport-bound build as the fusion benchmark (sparse defects)."""
    return EvaluationWorkload(
        image_px=profile.image_px,
        layers=profile.layers,
        seed=7,
        defect_rate_per_stack=0.02,
    )


@pytest.mark.parametrize("variant", list(VARIANTS))
def test_obs_overhead_variant(benchmark, profile, transport_workload, variant):
    config = UseCaseConfig(
        image_px=profile.image_px,
        cell_edge_px=profile.scale_cell_edge(10),  # fine cells: transport-bound
        window_layers=10,
    )
    runs: list = []

    def run_once():
        run = run_throughput_experiment(
            transport_workload,
            config,
            offered_images_s=OFFERED_RATE,
            total_images=_total_images(),
            optimize=PLAN,
            obs=_obs_for(variant),
        )
        runs.append(run)
        return run

    benchmark.pedantic(run_once, rounds=_rounds(), iterations=1)
    # best-of-N: saturation throughput is a capacity, noise only subtracts
    run = max(runs, key=lambda r: r.achieved_images_s)
    _results[variant] = run
    benchmark.extra_info.update(
        variant=variant,
        achieved_images_s=round(run.achieved_images_s, 2),
        kcells_s=round(run.kcells_per_second, 1),
        mean_latency_ms=round(run.mean_latency_s * 1e3, 2),
    )


def test_obs_overhead_report(benchmark, profile):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)  # report-only step
    assert len(_results) == len(VARIANTS)
    rows = [
        [
            name,
            round(run.achieved_images_s, 2),
            round(run.kcells_per_second, 1),
            round(run.mean_latency_s * 1e3, 1),
        ]
        for name, run in _results.items()
    ]
    print("\n=== Observability overhead: instrumented vs bare throughput ===")
    print(format_table(["variant", "achieved_img_s", "kcells_s", "mean_lat_ms"], rows))

    off = _results["obs-off"]
    on = _results["obs-on"]
    ratio = on.achieved_images_s / off.achieved_images_s
    payload = {
        "profile": profile.name,
        "offered_images_s": OFFERED_RATE,
        "total_images": _total_images(),
        "plan": PLAN.describe(),
        "variants": {
            name: {
                "achieved_images_s": run.achieved_images_s,
                "kcells_per_second": run.kcells_per_second,
                "mean_latency_s": run.mean_latency_s,
                "cells_evaluated": run.cells_evaluated,
                "wall_seconds": run.wall_seconds,
            }
            for name, run in _results.items()
        },
        "throughput_ratio_on_over_off": ratio,
        "min_ratio": MIN_RATIO,
    }
    BENCH_JSON.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"obs-on / obs-off throughput: {ratio:.3f}x -> {BENCH_JSON}")

    # both variants evaluate the identical workload
    assert on.cells_evaluated == off.cells_evaluated
    # ISSUE 3 acceptance: instrumentation costs at most 10% throughput
    assert ratio >= MIN_RATIO, (
        f"obs-on reached only {ratio:.3f}x of obs-off throughput "
        f"(floor {MIN_RATIO}x)"
    )
