"""A6 ablation — detect-stage sharding under the GIL.

The paper's API methods compile to native operators precisely so that the
underlying SPE can run them "in a distributed, parallel, elastic fashion"
(§4): on the JVM, sharding detectEvent by (job, specimen) buys real
multi-core speedup. This reproduction implements the same sharding
(hash router + replicas), and this ablation measures what it is worth
under CPython's GIL — the honest answer being "correctness yes,
CPU-parallel speedup no" for the pure-Python per-cell path. The numbers
document the substrate difference rather than assert a win.
"""

from __future__ import annotations

import pytest

from repro.bench import format_table, run_throughput_experiment, save_json
from repro.core import UseCaseConfig

PARALLELISM = [1, 2, 4]

_rows: list[list] = []


@pytest.mark.parametrize("workers", PARALLELISM)
def test_ablation_parallel_detect(benchmark, profile, workload, workers):
    config = UseCaseConfig(
        image_px=profile.image_px,
        cell_edge_px=profile.scale_cell_edge(10),
        window_layers=10,
        parallelism=workers,
    )
    run = benchmark.pedantic(
        lambda: run_throughput_experiment(
            workload, config, offered_images_s=1000.0,
            total_images=min(len(workload) * 2, 48),
        ),
        rounds=1,
        iterations=1,
    )
    _rows.append([
        workers,
        round(run.achieved_images_s, 2),
        round(run.kcells_per_second, 1),
        round(run.mean_latency_s * 1e3, 1),
    ])
    benchmark.extra_info.update(parallelism=workers, kcells_s=round(run.kcells_per_second, 1))
    assert run.images == min(len(workload) * 2, 48)
    assert run.cells_evaluated > 0


def test_ablation_parallelism_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert len(_rows) == len(PARALLELISM)
    print("\n=== Ablation A6: detect sharding (CPython GIL) ===")
    print(format_table(["parallelism", "img_s", "kcells_s", "mean_lat_ms"], _rows))
    print("(same sharded topology the paper's JVM engine parallelizes; under"
          "\n the GIL pure-Python shards serialize, so throughput stays flat —"
          "\n the speedups in Figures 5-7 come from the algorithmic knobs instead)")
    save_json(
        "ablation_parallelism",
        {str(row[0]): {"img_s": row[1], "kcells_s": row[2]} for row in _rows},
    )
    # correctness-oriented sanity: all variants processed the same load and
    # none collapsed (>= half the single-shard throughput)
    base = _rows[0][2]
    for row in _rows[1:]:
        assert row[2] > base * 0.4, "sharding must not wreck throughput"
