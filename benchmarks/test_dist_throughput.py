"""Distributed runtime — multi-process deployment vs in-process threading.

The distributed coordinator cuts the pub/sub pipeline into stages and
forks one worker process per stage group, wired through the networked
broker. This benchmark replays the evaluation build through the
in-process engine and through both payload transports of the distributed
runtime, and holds every distributed variant to two promises:

* **no divergence** — the detected-event output must be identical (same
  canonical result set) to the in-process threaded run, per transport;
* **honest accounting** — throughput, latency, and the per-variant
  speedup ratios land in ``BENCH_dist.json`` at the repository root so CI
  can archive them and the dist-smoke job can flag regressions.

Crossing process boundaries costs serialization and socket hops; the shm
transport exists to strip the payload bytes out of that cost. On a
multi-core box the shm variant is additionally held to a speedup gate
(``throughput_ratio_dist_over_inproc >= 1.5``); on starved runners —
CI containers pinned to one or two cores — parallel stages cannot beat a
single process no matter how cheap the transport is, so the gate is
skipped (or forced either way with ``REPRO_BENCH_DIST_REQUIRE_SPEEDUP``)
while the divergence gates always apply.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from repro.bench import EvaluationWorkload, format_table
from repro.core import (
    DeployConfig,
    Strata,
    UseCaseConfig,
    build_use_case,
    calibrate_job,
    specimen_regions_px,
)
from repro.dist import DistConfig

BENCH_JSON = Path(__file__).resolve().parents[1] / "BENCH_dist.json"

WINDOW_LAYERS = 6

#: the shm speedup gate from the transport redesign: distributed-shm must
#: beat the in-process engine by this factor when cores allow parallelism
SHM_SPEEDUP_GATE = 1.5

_results: dict[str, dict] = {}


def _layers() -> int:
    return int(os.environ.get("REPRO_BENCH_DIST_LAYERS", 12))


def _workers() -> int:
    return int(os.environ.get("REPRO_BENCH_DIST_WORKERS", 2))


def _shm_workers() -> int:
    return int(os.environ.get("REPRO_BENCH_DIST_SHM_WORKERS", 4))


def _cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _require_speedup() -> bool:
    forced = os.environ.get("REPRO_BENCH_DIST_REQUIRE_SPEEDUP")
    if forced is not None:
        return forced not in ("", "0")
    # stage workers + coordinator need real cores to overlap; below this
    # the OS timeslices one core and "distributed" measures context
    # switching, not the runtime
    return _cores() >= 4


def _shm_dist_config(image_px: int) -> DistConfig:
    # size slabs to the workload: one layer image plus slack, so the ring
    # holds tens of in-flight layers without a gigabyte reservation
    image_bytes = image_px * image_px * 8
    return DistConfig(
        workers=_shm_workers(),
        transport="shm",
        shm_slots=32,
        shm_slab_bytes=image_bytes + (1 << 20),
        produce_batch=8,
    )


def _variants(image_px: int) -> dict[str, DistConfig | None]:
    return {
        "in-process": None,  # threaded engine, pub/sub connectors, one process
        "distributed-tcp": DistConfig(workers=_workers(), transport="tcp"),
        "distributed-shm": _shm_dist_config(image_px),
    }


VARIANT_NAMES = ["in-process", "distributed-tcp", "distributed-shm"]


def _result_key(t):
    # within-layer arrival order varies between deployments, so compare
    # the order-insensitive identity of each verdict
    return (t.job, t.layer, t.specimen, t.payload["num_events"],
            t.payload["num_clusters"])


@pytest.fixture(scope="module")
def dist_workload(profile):
    return EvaluationWorkload(
        image_px=profile.image_px, layers=_layers(), seed=7
    )


def _deploy(profile, workload: EvaluationWorkload, variant: str) -> dict:
    config = UseCaseConfig(
        image_px=workload.image_px,
        cell_edge_px=profile.scale_cell_edge(20),
        window_layers=WINDOW_LAYERS,
    )
    strata = Strata(engine_mode="threaded", connector_mode="pubsub")
    calibrate_job(
        strata.kv, workload.job.job_id, workload.reference_images(3),
        config.cell_edge_px,
        regions=specimen_regions_px(workload.job.specimens, workload.image_px),
    )
    records = workload.records
    pipeline = build_use_case(
        iter(records), iter(records), config, strata=strata
    )
    dist_config = _variants(workload.image_px)[variant]
    started = time.monotonic()
    if dist_config is None:
        report = strata.deploy()
    else:
        report = strata.deploy(DeployConfig(dist=dist_config))
    wall = time.monotonic() - started
    # read latency off the expert sink itself: the pub/sub report also
    # lists the connector writer sinks, so the report-level helper is
    # ambiguous here
    latency = pipeline.sink.latency.summary()
    samples = pipeline.sink.latency.samples()
    out = {
        "wall_seconds": wall,
        "achieved_images_s": len(records) / wall,
        "results": len(pipeline.sink.results),
        "mean_latency_s": sum(samples) / max(1, len(samples)),
        "median_latency_s": latency.median,
        "max_latency_s": latency.maximum,
        "result_keys": sorted(map(_result_key, pipeline.sink.results)),
    }
    if dist_config is not None:
        dist = report.extra["dist"]
        out["transport"] = dist_config.transport
        out["workers"] = len(dist["workers"])
        out["restarts"] = dist["restarts"]
    return out


@pytest.mark.parametrize("variant", VARIANT_NAMES)
def test_dist_throughput_variant(benchmark, profile, dist_workload, variant):
    runs: list[dict] = []

    def run_once():
        run = _deploy(profile, dist_workload, variant)
        runs.append(run)
        return run

    benchmark.pedantic(run_once, rounds=1, iterations=1)
    run = max(runs, key=lambda r: r["achieved_images_s"])
    _results[variant] = run
    benchmark.extra_info.update(
        variant=variant,
        achieved_images_s=round(run["achieved_images_s"], 2),
        mean_latency_ms=round(run["mean_latency_s"] * 1e3, 2),
    )


def test_dist_throughput_report(benchmark, profile):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)  # report-only step
    assert len(_results) == len(VARIANT_NAMES)
    rows = [
        [
            name,
            round(run["achieved_images_s"], 2),
            run["results"],
            round(run["mean_latency_s"] * 1e3, 1),
            round(run["max_latency_s"] * 1e3, 1),
        ]
        for name, run in _results.items()
    ]
    print("\n=== Distributed deployment: transports vs in-process ===")
    print(format_table(
        ["variant", "achieved_img_s", "results", "mean_lat_ms", "max_lat_ms"],
        rows,
    ))

    base = _results["in-process"]
    variants_out: dict[str, dict] = {}
    for name, run in _results.items():
        entry = {k: v for k, v in run.items() if k != "result_keys"}
        if name != "in-process":
            entry["throughput_ratio_dist_over_inproc"] = (
                run["achieved_images_s"] / base["achieved_images_s"]
            )
            entry["results_identical"] = run["result_keys"] == base["result_keys"]
        variants_out[name] = entry

    shm = variants_out["distributed-shm"]
    payload = {
        "profile": profile.name,
        "layers": _layers(),
        "workers": _workers(),
        "shm_workers": _shm_workers(),
        "cores": _cores(),
        "window_layers": WINDOW_LAYERS,
        "speedup_gate": SHM_SPEEDUP_GATE,
        "speedup_gate_applied": _require_speedup(),
        "variants": variants_out,
        # headline ratio: the transport the redesign optimizes for
        "throughput_ratio_dist_over_inproc": shm[
            "throughput_ratio_dist_over_inproc"
        ],
        "results_identical": all(
            variants_out[n]["results_identical"]
            for n in ("distributed-tcp", "distributed-shm")
        ),
    }
    BENCH_JSON.write_text(json.dumps(payload, indent=2) + "\n")
    for name in ("distributed-tcp", "distributed-shm"):
        ratio = variants_out[name]["throughput_ratio_dist_over_inproc"]
        print(f"{name} / in-process throughput: {ratio:.3f}x")
    print(f"-> {BENCH_JSON}")

    # the divergence gates: no transport may change results
    for name in ("distributed-tcp", "distributed-shm"):
        run = _results[name]
        assert run["result_keys"] == base["result_keys"], (
            f"{name} run diverged from the in-process baseline"
        )
        assert run["restarts"] == 0  # no crash-looping under normal operation

    if _require_speedup():
        assert shm["throughput_ratio_dist_over_inproc"] >= SHM_SPEEDUP_GATE, (
            f"distributed-shm must be >= {SHM_SPEEDUP_GATE}x in-process on "
            f"{_cores()} cores"
        )
    else:
        print(
            f"speedup gate skipped: {_cores()} core(s) available "
            "(set REPRO_BENCH_DIST_REQUIRE_SPEEDUP=1 to force)"
        )
