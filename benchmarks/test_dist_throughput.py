"""Distributed runtime — multi-process deployment vs in-process threading.

The distributed coordinator cuts the pub/sub pipeline into stages and
forks one worker process per stage group, wired through the networked
broker. This benchmark replays the evaluation build through both
deployments and holds the distributed one to two promises:

* **no divergence** — the detected-event output must be identical (same
  canonical result set) to the in-process threaded run;
* **honest accounting** — throughput and latency of both variants land in
  ``BENCH_dist.json`` at the repository root so CI can archive them and
  the dist-smoke job can flag regressions.

Crossing process boundaries costs serialization and socket hops, so the
distributed variant is *expected* to be slower on a single machine at
this workload size; the benchmark gates on correctness, not on a speedup.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from repro.bench import EvaluationWorkload, format_table
from repro.core import (
    DeployConfig,
    Strata,
    UseCaseConfig,
    build_use_case,
    calibrate_job,
    specimen_regions_px,
)

BENCH_JSON = Path(__file__).resolve().parents[1] / "BENCH_dist.json"

WINDOW_LAYERS = 6

VARIANTS: dict[str, object] = {
    "in-process": None,  # threaded engine, pub/sub connectors, one process
    "distributed": "workers",  # coordinator + forked stage workers
}

_results: dict[str, dict] = {}


def _layers() -> int:
    return int(os.environ.get("REPRO_BENCH_DIST_LAYERS", 12))


def _workers() -> int:
    return int(os.environ.get("REPRO_BENCH_DIST_WORKERS", 2))


def _result_key(t):
    # within-layer arrival order varies between deployments, so compare
    # the order-insensitive identity of each verdict
    return (t.job, t.layer, t.specimen, t.payload["num_events"],
            t.payload["num_clusters"])


@pytest.fixture(scope="module")
def dist_workload(profile):
    return EvaluationWorkload(
        image_px=profile.image_px, layers=_layers(), seed=7
    )


def _deploy(profile, workload: EvaluationWorkload, variant: str) -> dict:
    config = UseCaseConfig(
        image_px=workload.image_px,
        cell_edge_px=profile.scale_cell_edge(20),
        window_layers=WINDOW_LAYERS,
    )
    strata = Strata(engine_mode="threaded", connector_mode="pubsub")
    calibrate_job(
        strata.kv, workload.job.job_id, workload.reference_images(3),
        config.cell_edge_px,
        regions=specimen_regions_px(workload.job.specimens, workload.image_px),
    )
    records = workload.records
    pipeline = build_use_case(
        iter(records), iter(records), config, strata=strata
    )
    started = time.monotonic()
    if VARIANTS[variant] is None:
        report = strata.deploy()
    else:
        report = strata.deploy(DeployConfig(dist=_workers()))
    wall = time.monotonic() - started
    # read latency off the expert sink itself: the pub/sub report also
    # lists the connector writer sinks, so the report-level helper is
    # ambiguous here
    latency = pipeline.sink.latency.summary()
    samples = pipeline.sink.latency.samples()
    out = {
        "wall_seconds": wall,
        "achieved_images_s": len(records) / wall,
        "results": len(pipeline.sink.results),
        "mean_latency_s": sum(samples) / max(1, len(samples)),
        "median_latency_s": latency.median,
        "max_latency_s": latency.maximum,
        "result_keys": sorted(map(_result_key, pipeline.sink.results)),
    }
    if variant == "distributed":
        dist = report.extra["dist"]
        out["workers"] = len(dist["workers"])
        out["restarts"] = dist["restarts"]
    return out


@pytest.mark.parametrize("variant", list(VARIANTS))
def test_dist_throughput_variant(benchmark, profile, dist_workload, variant):
    runs: list[dict] = []

    def run_once():
        run = _deploy(profile, dist_workload, variant)
        runs.append(run)
        return run

    benchmark.pedantic(run_once, rounds=1, iterations=1)
    run = max(runs, key=lambda r: r["achieved_images_s"])
    _results[variant] = run
    benchmark.extra_info.update(
        variant=variant,
        achieved_images_s=round(run["achieved_images_s"], 2),
        mean_latency_ms=round(run["mean_latency_s"] * 1e3, 2),
    )


def test_dist_throughput_report(benchmark, profile):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)  # report-only step
    assert len(_results) == len(VARIANTS)
    rows = [
        [
            name,
            round(run["achieved_images_s"], 2),
            run["results"],
            round(run["mean_latency_s"] * 1e3, 1),
            round(run["max_latency_s"] * 1e3, 1),
        ]
        for name, run in _results.items()
    ]
    print("\n=== Distributed deployment: multi-process vs in-process ===")
    print(format_table(
        ["variant", "achieved_img_s", "results", "mean_lat_ms", "max_lat_ms"],
        rows,
    ))

    base = _results["in-process"]
    dist = _results["distributed"]
    payload = {
        "profile": profile.name,
        "layers": _layers(),
        "workers": _workers(),
        "window_layers": WINDOW_LAYERS,
        "variants": {
            name: {k: v for k, v in run.items() if k != "result_keys"}
            for name, run in _results.items()
        },
        "throughput_ratio_dist_over_inproc": (
            dist["achieved_images_s"] / base["achieved_images_s"]
        ),
        "results_identical": dist["result_keys"] == base["result_keys"],
    }
    BENCH_JSON.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"distributed / in-process throughput: "
          f"{payload['throughput_ratio_dist_over_inproc']:.3f}x -> {BENCH_JSON}")

    # the divergence gate: a distributed deployment must not change results
    assert dist["result_keys"] == base["result_keys"], (
        "distributed run diverged from the in-process baseline"
    )
    assert dist["restarts"] == 0  # no crash-looping under normal operation
