"""E8 (extension) — online predictions vs simulated post-build XCT.

Closes the qualification loop the evaluation build was designed for: the
witness cylinders exist "to later measure the three-dimensional
distribution of process defects with X-ray Computed Tomography" (§5).
Here the online pipeline's per-height anomaly density around each witness
cylinder is correlated against the cylinder's simulated XCT porosity
profile. A monitoring system is useful exactly when this correlation is
strong: online hot/cold clusters must predict where the destructive scan
will find pores.
"""

from __future__ import annotations

import numpy as np
import pytest
from scipy import stats

from repro.am import BuildDataset, OTImageRenderer, make_job, scan_job
from repro.bench import format_table, save_json
from repro.core import (
    Strata,
    UseCaseConfig,
    build_use_case,
    calibrate_job,
    specimen_regions_px,
)

LAYERS = 100  # 4 one-mm z-bins at 40 um layers
BIN_MM = 1.0


def test_e8_online_vs_xct_correlation(benchmark, profile):
    job = make_job("xct-eval", seed=13, defect_rate_per_stack=1.2)
    renderer = OTImageRenderer(image_px=profile.image_px, seed=13)
    records = [BuildDataset(job, renderer).layer_record(i) for i in range(LAYERS)]
    reference = make_job("xct-ref", seed=1, defect_rate_per_stack=0.0)
    reference_images = [
        BuildDataset(reference, OTImageRenderer(image_px=profile.image_px, seed=1))
        .layer_record(i).image
        for i in range(3)
    ]
    edge = profile.scale_cell_edge(20)
    config = UseCaseConfig(
        image_px=profile.image_px, cell_edge_px=edge, window_layers=10,
        vectorized=True,
    )

    def run():
        strata = Strata(engine_mode="threaded")
        calibrate_job(
            strata.kv, job.job_id, reference_images, edge,
            regions=specimen_regions_px(job.specimens, profile.image_px),
        )
        pipeline = build_use_case(iter(records), iter(records), config, strata=strata)
        strata.deploy()
        return pipeline

    pipeline = benchmark.pedantic(run, rounds=1, iterations=1)

    # --- online indicator: event density near each witness cylinder ------
    px_per_mm = profile.image_px / 250.0
    thickness = config.layer_thickness_mm
    num_bins = int(LAYERS * thickness / BIN_MM)
    by_specimen = {s.specimen_id: s for s in job.specimens}
    # (specimen, cylinder, bin) -> unique event cells observed
    online: dict[tuple[str, int, int], set] = {}
    capture_mm = 3.0  # cylinder radius 2 mm + one coarse cell of slack
    for t in pipeline.sink.results:
        bin_index = int(t.layer * thickness / BIN_MM)
        if bin_index >= num_bins:
            continue
        specimen = by_specimen[t.specimen]
        for cluster in t.payload["clusters"]:
            cx, cy, _ = cluster["centroid"]
            for ci, cyl in enumerate(specimen.cylinders):
                if (cx - cyl.center_x) ** 2 + (cy - cyl.center_y) ** 2 <= capture_mm**2:
                    online.setdefault((t.specimen, ci, bin_index), set()).add(
                        (cluster["cluster_id"], t.layer)
                    )

    online_scores = []
    xct_scores = []
    profiles = scan_job(job, bin_height_mm=BIN_MM, max_height_mm=LAYERS * thickness)
    for xct in profiles:
        for bin_index in range(min(num_bins, xct.num_bins)):
            key = (xct.specimen_id, xct.cylinder_index, bin_index)
            online_scores.append(len(online.get(key, ())))
            xct_scores.append(xct.porosity[bin_index])

    rho, pvalue = stats.spearmanr(online_scores, xct_scores)
    porous_bins = sum(1 for p in xct_scores if p > 0.01)
    hit_bins = sum(
        1 for o, p in zip(online_scores, xct_scores) if p > 0.01 and o > 0
    )
    rows = [
        ["(cylinder, z-bin) samples", len(xct_scores)],
        ["porous bins (XCT > 1%)", porous_bins],
        ["porous bins flagged online", hit_bins],
        ["Spearman rho", round(float(rho), 3)],
        ["p-value", f"{pvalue:.2e}"],
    ]
    print("\n=== E8: online anomaly density vs XCT porosity ===")
    print(format_table(["metric", "value"], rows))
    save_json(
        "e8_xct_validation",
        {"spearman_rho": float(rho), "p_value": float(pvalue),
         "samples": len(xct_scores), "porous_bins": porous_bins,
         "hit_bins": hit_bins},
    )
    benchmark.extra_info.update(spearman_rho=round(float(rho), 3))

    assert porous_bins >= 5, "workload must produce porous cylinder bins"
    assert hit_bins / porous_bins >= 0.6, "online monitoring must flag most porous bins"
    assert rho > 0.4 and pvalue < 0.01, (
        f"online/XCT correlation too weak: rho={rho:.3f}, p={pvalue:.1e}"
    )
