"""E2 / Figure 5 — latency boxplots vs cell size.

Paper: "we variate the length of the cell edge so that isolateCell
separates cells with sizes varying from 40x40 to 2x2 pixels (5 to
0.25 mm^2) ... the smaller the area of a cell, the higher the number of
cells to be analyzed within and across layers, and the higher the
processing latency. STRATA is always able to meet the QoS threshold
[3 s] for all cell sizes."

Expected shape here: per-layer latency grows monotonically as the cell
edge shrinks and stays below the QoS threshold at the evaluated scale.
Cell edges are given in paper-scale pixels (2000 px sensor) and mapped to
the active profile's resolution preserving the physical size; edges that
collapse to the same pixel size at a reduced resolution are skipped.
"""

from __future__ import annotations

import itertools

import pytest

from repro.bench import (
    BOXPLOT_HEADERS,
    boxplot_row,
    format_table,
    run_latency_experiment,
    save_json,
)
from repro.core import UseCaseConfig

#: paper cell edges at the 2000 px sensor (5 ... 0.25 mm edge)
PAPER_EDGES_PX = [40, 20, 10, 5, 2]

_results: dict[int, object] = {}
_measured_edges: set[int] = set()


@pytest.fixture(scope="module")
def latency_layers(profile):
    # lockstep latency needs enough layers for a stable boxplot; beyond
    # ~12 the distribution is stationary and time is better spent elsewhere
    return min(profile.layers, 12)


def _sliced_workload(workload, layers):
    records = list(itertools.islice(iter(workload.records), layers))

    class _Sliced:
        job = workload.job

        @property
        def records(self):
            return list(records)

        def reference_images(self, count=5):
            return workload.reference_images(count)

    sliced = _Sliced()
    sliced.job = workload.job
    return sliced


@pytest.mark.parametrize("paper_edge", PAPER_EDGES_PX)
def test_fig5_latency_for_cell_size(benchmark, profile, workload, paper_edge, latency_layers):
    edge = profile.scale_cell_edge(paper_edge)
    if edge in _measured_edges:
        pytest.skip(f"{paper_edge}px maps to already-measured {edge}px at this profile")
    _measured_edges.add(edge)
    config = UseCaseConfig(
        image_px=profile.image_px, cell_edge_px=edge, window_layers=10
    )
    sliced = _sliced_workload(workload, latency_layers)
    run = benchmark.pedantic(
        lambda: run_latency_experiment(sliced, config), rounds=1, iterations=1
    )
    _results[paper_edge] = run
    assert run.per_layer_latencies, "no latency samples"
    if profile.name == "ci":
        # the paper's QoS claim, checked at the scaled operating point
        assert run.meets_qos(profile.qos_seconds), (
            f"cell edge {edge}px exceeded the {profile.qos_seconds}s QoS"
        )
    summary = run.summary
    benchmark.extra_info.update(
        cell_edge_px=edge,
        cell_mm=round(config.cell_edge_mm, 3),
        median_ms=round(summary.median * 1e3, 2),
        max_ms=round(summary.maximum * 1e3, 2),
        cells=run.cells_evaluated,
    )


def test_fig5_report_and_trend(benchmark, profile):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)  # report-only step
    assert len(_results) >= 3, "run the parametrized benches first"
    edges = [e for e in PAPER_EDGES_PX if e in _results]
    rows = []
    for paper_edge in edges:
        run = _results[paper_edge]
        label = f"{paper_edge}px@2000({run.config.cell_edge_mm:.2f}mm)"
        rows.append(boxplot_row(label, run.summary))
    print("\n=== Figure 5: latency (ms) vs cell size ===")
    print(format_table(BOXPLOT_HEADERS, rows))
    print(f"QoS threshold: {profile.qos_seconds * 1e3:.0f} ms")
    save_json(
        "fig5_latency_vs_cell_size",
        {
            "profile": profile.name,
            "qos_seconds": profile.qos_seconds,
            "rows": {str(edge): _results[edge].summary.as_row(1e3) for edge in edges},
        },
    )
    # the paper's trend: smaller cells -> more cells -> higher latency
    medians = [_results[edge].summary.median for edge in edges]
    cells = [_results[edge].cells_evaluated for edge in edges]
    assert cells == sorted(cells), "cell count must grow as the edge shrinks"
    assert medians[-1] > medians[0], (
        "finest cells must be slower than coarsest (paper Figure 5 trend)"
    )
