#!/usr/bin/env python3
"""Reprocess historic build data as fast as possible (the Figure 7 mode).

The paper notes STRATA "can sustain processing rates of 10s to 100s of OT
images/s, thus reprocessing past printing jobs in seconds". This example
stores a finished job's layer stream, then replays it through a *new*
analysis pipeline — a coarser first pass and a finer second pass — showing
how experts iterate on historic data with different parameters, sharing
the same key-value store for calibration data.

Run:  python examples/historical_replay.py
"""

from __future__ import annotations

import time

from repro.am import BuildDataset, OTImageRenderer, make_job
from repro.core import Strata, UseCaseConfig, build_use_case, calibrate_job, specimen_regions_px
from repro.kvstore import MemoryStore

IMAGE_PX = 500
LAYERS = 40


def replay(records, store, job, cell_edge_px: int, window_layers: int):
    """One full-pipeline replay pass; returns (results, wall_seconds)."""
    config = UseCaseConfig(
        image_px=IMAGE_PX, cell_edge_px=cell_edge_px, window_layers=window_layers
    )
    strata = Strata(store=store, engine_mode="threaded")
    pipeline = build_use_case(iter(records), iter(records), config, strata=strata)
    started = time.monotonic()
    strata.deploy()
    return pipeline, time.monotonic() - started


def main() -> None:
    # ---- the 'historic' job: render once, keep in memory ----------------
    job = make_job("EOS-M290-archive", seed=7)
    renderer = OTImageRenderer(image_px=IMAGE_PX, seed=7)
    print(f"archiving {LAYERS} layers of {job.job_id} ...")
    records = list(BuildDataset(job, renderer).records(0, LAYERS))

    # the key-value store is shared by every replay (data-at-rest tier)
    store = MemoryStore()
    reference = make_job("reference", seed=1, defect_rate_per_stack=0.0)
    reference_images = [
        r.image for r in BuildDataset(reference, renderer).records(0, 5)
    ]
    regions = specimen_regions_px(job.specimens, IMAGE_PX)

    # ---- pass 1: coarse triage (5 mm cells) ------------------------------
    calibrate_job(store, job.job_id, reference_images, 10, regions=regions)
    coarse, coarse_wall = replay(records, store, job, cell_edge_px=10, window_layers=5)
    flagged_specimens = sorted(
        {t.specimen for t in coarse.sink.results if t.payload["num_clusters"] > 0}
    )
    print(f"pass 1 (5 mm cells):   {LAYERS} images in {coarse_wall:.2f}s "
          f"({LAYERS / coarse_wall:.0f} img/s, "
          f"{coarse.cells_evaluated / coarse_wall / 1e3:.1f} kcells/s)")
    print(f"  suspicious specimens: {', '.join(flagged_specimens) or 'none'}")

    # ---- pass 2: fine analysis (1 mm cells, deeper window) --------------
    calibrate_job(store, job.job_id, reference_images, 2, regions=regions)
    fine, fine_wall = replay(records, store, job, cell_edge_px=2, window_layers=20)
    print(f"pass 2 (1 mm cells):   {LAYERS} images in {fine_wall:.2f}s "
          f"({LAYERS / fine_wall:.0f} img/s, "
          f"{fine.cells_evaluated / fine_wall / 1e3:.1f} kcells/s)")

    worst = max(
        fine.sink.results,
        key=lambda t: max(
            [c["volume_mm3"] for c in t.payload["clusters"]], default=0.0
        ),
    )
    volumes = [c["volume_mm3"] for c in worst.payload["clusters"]]
    if volumes:
        print(f"  largest defect: {max(volumes):.2f} mm^3 in specimen "
              f"{worst.specimen} around layer {worst.layer}")
    store.close()


if __name__ == "__main__":
    main()
