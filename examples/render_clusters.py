#!/usr/bin/env python3
"""Render a specimen's OT image and its defect clustering (Figure 4).

Produces an ASCII side-by-side of the light-emission image of the most
defective specimen and the DBSCAN clustering of its anomalous cells, plus
PGM files (plain grayscale, viewable anywhere) under ./fig4_out/.

Run:  python examples/render_clusters.py
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.am import BuildDataset, OTImageRenderer, make_job
from repro.bench import render_ascii_image
from repro.core import Strata, UseCaseConfig, build_use_case, calibrate_job, specimen_regions_px

IMAGE_PX = 500
CELL_EDGE_PX = 5
LAYERS = 25
OUT_DIR = Path("fig4_out")


def write_pgm(path: Path, image: np.ndarray) -> None:
    """Minimal plain-PGM writer (no imaging dependency needed)."""
    image = np.asarray(image)
    scaled = (image.astype(float) / max(1, image.max()) * 255).astype(np.uint8)
    lines = [f"P2\n{scaled.shape[1]} {scaled.shape[0]}\n255\n"]
    for row in scaled:
        lines.append(" ".join(str(v) for v in row) + "\n")
    path.write_text("".join(lines))


def main() -> None:
    job = make_job("EOS-M290-fig4", seed=7)
    renderer = OTImageRenderer(image_px=IMAGE_PX, seed=7)
    records = list(BuildDataset(job, renderer).records(0, LAYERS))

    config = UseCaseConfig(
        image_px=IMAGE_PX, cell_edge_px=CELL_EDGE_PX, window_layers=10,
        render_cluster_image=True,
    )
    strata = Strata(engine_mode="threaded")
    reference = make_job("reference", seed=1, defect_rate_per_stack=0.0)
    calibrate_job(
        strata.kv, job.job_id,
        (r.image for r in BuildDataset(reference, renderer).records(0, 5)),
        CELL_EDGE_PX,
        regions=specimen_regions_px(job.specimens, IMAGE_PX),
    )
    pipeline = build_use_case(iter(records), iter(records), config, strata=strata)
    strata.deploy()

    best = max(pipeline.sink.results, key=lambda t: t.payload["num_events"])
    spec = next(s for s in job.specimens if s.specimen_id == best.specimen)
    r0, r1, c0, c1 = spec.footprint.to_pixels(IMAGE_PX)
    ot_crop = records[best.layer].image[r0:r1, c0:c1]
    cluster_image = best.payload["cluster_image"]

    print(f"specimen {best.specimen}, layer {best.layer}: "
          f"{best.payload['num_events']} anomalous cells, "
          f"{best.payload['num_clusters']} clusters\n")
    step = max(1, ot_crop.shape[0] // 48)
    print("--- OT image (melt-pool light emission) ---")
    print(render_ascii_image(ot_crop[::step, ::step]))
    print("\n--- clustering (darker = background/noise, brighter = clusters) ---")
    print(render_ascii_image(np.asarray(cluster_image)))

    OUT_DIR.mkdir(exist_ok=True)
    write_pgm(OUT_DIR / "ot_specimen.pgm", ot_crop)
    write_pgm(OUT_DIR / "clusters.pgm", np.asarray(cluster_image))
    print(f"\nPGM files written under {OUT_DIR}/")


if __name__ == "__main__":
    main()
