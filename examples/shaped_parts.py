#!/usr/bin/env python3
"""Geometry- and material-aware monitoring (the paper's §7 future work).

Prints a mixed build — blocks, cylinders, cones, and hexagonal prisms —
in IN718, and monitors it with the geometry-aware pipeline: part masks
from the sliced shapes keep powder inside each part's bounding box out of
the analysis, and the witness-cylinder XCT simulation closes the loop at
the end.

Run:  python examples/shaped_parts.py
"""

from __future__ import annotations

from repro.am import (
    BuildDataset,
    OTImageRenderer,
    default_parameters_for,
    make_job,
    make_shaped_job,
    scan_job,
)
from repro.core import (
    Strata,
    UseCaseConfig,
    build_use_case,
    calibrate_job,
    specimen_regions_px,
)

IMAGE_PX = 500
CELL_EDGE_PX = 5
LAYERS = 30


def main() -> None:
    process = default_parameters_for("IN718")
    job = make_shaped_job(
        "IN718-shaped", seed=7, process=process, defect_rate_per_stack=0.8
    )
    shapes = {
        s.specimen_id: type(s.shape).__name__ if s.shape else "Block"
        for s in job.specimens
    }
    print("build plate (IN718, "
          f"{process.energy_density_j_mm3:.1f} J/mm^3):")
    for specimen_id, kind in sorted(shapes.items()):
        print(f"  {specimen_id}: {kind}")

    renderer = OTImageRenderer(image_px=IMAGE_PX, seed=7)
    records = list(BuildDataset(job, renderer).records(0, LAYERS))

    # calibrate on a defect-free IN718 reference (material-specific!)
    reference = make_job(
        "IN718-ref", seed=1, process=process, defect_rate_per_stack=0.0
    )
    reference_images = [
        r.image for r in BuildDataset(reference, renderer).records(0, 5)
    ]
    config = UseCaseConfig(
        image_px=IMAGE_PX, cell_edge_px=CELL_EDGE_PX, window_layers=10,
        vectorized=True,
    )
    strata = Strata()
    calibrate_job(
        strata.kv, job.job_id, reference_images, CELL_EDGE_PX,
        regions=specimen_regions_px(job.specimens, IMAGE_PX),
    )
    pipeline = build_use_case(iter(records), iter(records), config, strata=strata)
    strata.deploy()

    print(f"\nanalyzed {pipeline.cells_evaluated} part cells over {LAYERS} layers "
          "(powder inside shaped bounding boxes excluded)")
    by_specimen: dict[str, int] = {}
    for t in pipeline.sink.results:
        by_specimen[t.specimen] = by_specimen.get(t.specimen, 0) + t.payload["num_clusters"]
    print(f"\n{'specimen':<10} {'shape':<14} {'cluster reports':>16}")
    for specimen_id in sorted(by_specimen):
        print(f"{specimen_id:<10} {shapes[specimen_id]:<14} {by_specimen[specimen_id]:>16}")

    # post-build: XCT the block specimens' witness cylinders
    blocks = [s for s in job.specimens if s.shape is None]
    profiles = [
        p for p in scan_job(job, max_height_mm=LAYERS * 0.04)
        if p.specimen_id in {b.specimen_id for b in blocks}
    ]
    porous = [p for p in profiles if p.mean_porosity > 0]
    print(f"\nXCT of {len(profiles)} witness cylinders (block specimens): "
          f"{len(porous)} show porosity in the printed height")


if __name__ == "__main__":
    main()
