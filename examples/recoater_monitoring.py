#!/usr/bin/env python3
"""Second use case: recoater-blade streak monitoring.

A nicked recoater blade starves a thin band of powder along the recoating
direction, under-melting every specimen it crosses until the blade is
cleaned. Unlike the thermal use case, this is a *plate-wide* defect: the
pipeline uses the Table 1 partition default (whole layer = one analysis
unit), a row-profile detector, and a (y, layer) clustering correlator —
same STRATA API, different user functions.

Run:  python examples/recoater_monitoring.py
"""

from __future__ import annotations

from repro.am import BuildDataset, OTImageRenderer, make_job
from repro.core import Strata, build_streak_use_case

IMAGE_PX = 500
LAYERS = 50


def main() -> None:
    job = make_job(
        "EOS-M290-recoater",
        seed=19,
        defect_rate_per_stack=0.3,  # some thermal blobs too: must not confuse us
        streak_rate_per_100_layers=12.0,
    )
    active = [s for s in job.streaks if s.first_layer < LAYERS]
    print(f"build with {len(active)} seeded recoater streak(s) in the first {LAYERS} layers:")
    for streak in active:
        print(f"  seeded: y={streak.y_mm:6.1f} mm, layers "
              f"{streak.first_layer}-{streak.last_layer}, "
              f"width {streak.width_mm:.2f} mm")

    renderer = OTImageRenderer(image_px=IMAGE_PX, seed=19)
    records = list(BuildDataset(job, renderer).records(0, LAYERS))
    pipeline = build_streak_use_case(
        iter(records), iter(records), image_px=IMAGE_PX,
        strata=Strata(engine_mode="threaded"),
    )
    pipeline.strata.deploy()

    # collect the distinct streaks the aggregator reported over the build
    reported: dict[int, dict] = {}
    for t in pipeline.sink.results:
        for streak in t.payload["streaks"]:
            key = round(streak["y_mm"])
            if key not in reported or streak["layers_observed"] > reported[key]["layers_observed"]:
                reported[key] = streak

    print(f"\npipeline reported {len(reported)} streak(s):")
    for streak in sorted(reported.values(), key=lambda s: s["y_mm"]):
        print(f"  detected: y={streak['y_mm']:6.1f} mm, layers "
              f"{streak['first_layer']}-{streak['last_layer']}, "
              f"depression {streak['mean_depression_gray']:.0f} gray levels")
    print("\n(an expert policy would stop the recoater for cleaning as soon as"
          "\n a streak persists — every further layer compounds the damage)")


if __name__ == "__main__":
    main()
