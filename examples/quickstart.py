#!/usr/bin/env python3
"""Quickstart: monitor a (simulated) PBF-LB print job with STRATA.

Builds the paper's evaluation job on the digital twin, composes the
Algorithm 1 pipeline through the STRATA API, replays the first layers,
and prints the Event Aggregator's reports.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.am import BuildDataset, OTImageRenderer, make_job
from repro.core import (
    DBSCANCorrelator,
    IsolateCells,
    IsolateSpecimens,
    LabelCell,
    OTImageCollector,
    PrintingParameterCollector,
    Strata,
    calibrate_job,
    specimen_regions_px,
)

IMAGE_PX = 500  # OT sensor resolution (the paper's machine: 2000)
CELL_EDGE_PX = 5  # 2.5 mm cells at this resolution
WINDOW_LAYERS = 10  # the paper's L: cross-layer clustering depth
LAYERS_TO_PRINT = 20


def main() -> None:
    # --- the machine side: one defective job, one clean reference job ----
    job = make_job("EOS-M290-quickstart", seed=7)
    renderer = OTImageRenderer(image_px=IMAGE_PX, seed=7)
    records = list(BuildDataset(job, renderer).records(0, LAYERS_TO_PRINT))
    reference = make_job("reference", seed=1, defect_rate_per_stack=0.0)
    reference_images = [
        r.image for r in BuildDataset(reference, renderer).records(0, 5)
    ]

    # --- the STRATA side: calibrate, compose Alg. 1, deploy ---------------
    strata = Strata()
    calibrate_job(
        strata.kv,
        job.job_id,
        reference_images,
        CELL_EDGE_PX,
        regions=specimen_regions_px(job.specimens, IMAGE_PX),
    )

    strata.add_source(PrintingParameterCollector(iter(records)), "pp")
    strata.add_source(OTImageCollector(iter(records)), "OT")
    strata.fuse("OT", "pp", "OT&pp")
    strata.partition("OT&pp", "spec", IsolateSpecimens(IMAGE_PX))
    strata.partition("spec", "cell", IsolateCells(CELL_EDGE_PX))
    strata.detect_event("cell", "cellLabel", LabelCell(strata.kv))
    strata.correlate_events(
        "cellLabel",
        "out",
        WINDOW_LAYERS,
        DBSCANCorrelator(
            eps_mm=4.0,
            min_samples=3,
            px_per_mm=IMAGE_PX / 250.0,
            layer_thickness_mm=job.process.layer_thickness_mm,
            cell_volume_mm3=2.5 * 2.5 * 0.04,
            min_volume_mm3=0.5,
        ),
    )
    sink = strata.deliver("out")
    report = strata.deploy()

    # --- the expert side: read the aggregator's reports -------------------
    flagged = [t for t in sink.results if t.payload["num_clusters"] > 0]
    print(f"layers analyzed:        {LAYERS_TO_PRINT}")
    print(f"aggregator reports:     {len(sink.results)} (one per layer x specimen)")
    print(f"reports with clusters:  {len(flagged)}")
    latency = report.latency_summary()
    print(f"latency per report:     median {latency.median * 1e3:.1f} ms, "
          f"max {latency.maximum * 1e3:.1f} ms (QoS budget: 3000 ms)")
    print()
    for t in flagged[-5:]:
        clusters = ", ".join(
            f"{c['volume_mm3']:.1f}mm^3@layers{c['layers']}" for c in t.payload["clusters"]
        )
        print(f"layer {t.layer:3d}  specimen {t.specimen}:  "
              f"{t.payload['num_events']} anomalous cells -> {clusters}")


if __name__ == "__main__":
    main()
