#!/usr/bin/env python3
"""Recover the delivered laser parameters from on-axis melt-pool frames.

A data-driven AM process needs to close the loop on its *inputs* as well
as its outputs: the g-code commands a power and scan speed, but the
delivered values drift with optics degradation and actuator wear. The
melt-pool geometry is an invertible witness — peak emission scales with
``P/sqrt(v)`` and the per-track energy dose with ``P``·width — so a
regression fitted on a few labelled reference frames recovers both
parameters from monitoring data alone.

This example synthesizes a build whose *actual* power/speed drift away
from the commanded schedule (AR(1) drift, unknown to the pipeline),
fits the inverse regression on a reference sweep, then streams every
layer's melt-pool frame through the ``repro.thermal`` reconstruction
pipeline: per-cell intensity features (vectorized kernels) feed the
stored regressor, and the correlate window smooths the per-layer
estimates. The recovered values are compared against both schedules —
commanded (what the machine *should* be doing: the deviation columns)
and actual (hidden ground truth: the error columns).

With ``--fleet URL`` the workload is submitted to a running
``strata-repro serve`` control plane instead (see also
``examples/thermal_forecasting.py --fleet``, which submits both thermal
workloads as separate tenants).

Run:  python examples/laser_reconstruction.py
"""

from __future__ import annotations

import argparse
import sys

from repro.am.scanpath import ThermalBuildConfig, synthesize_thermal_build
from repro.core import Strata
from repro.thermal import (
    ThermalPipelineConfig,
    build_reconstruction_pipeline,
    calibrate_thermal_job,
)

LAYERS = 20


def run_local() -> int:
    config = ThermalBuildConfig(
        job_id="reconstruct-demo", layers=LAYERS, drift_pct=0.04, seed=23
    )
    build = synthesize_thermal_build(config)

    strata = Strata(engine_mode="threaded")
    pipeline = build_reconstruction_pipeline(
        iter(build.records), config, ThermalPipelineConfig(), strata=strata
    )
    # fits [log P, log v] = W . [1, log_peak, log_dose] on a labelled
    # reference sweep and persists it in the job's KV namespace
    calibrate_thermal_job(strata.kv, build)
    strata.deploy()

    results = sorted(pipeline.sink.results, key=lambda t: t.layer)
    actual = {r.layer: (r.actual_power_w, r.actual_speed_mm_s)
              for r in build.records}
    print(f"commanded setpoint: {config.power_w:.0f} W, "
          f"{config.speed_mm_s:.0f} mm/s; actual values drift "
          f"{config.drift_pct * 100:.0f}% (hidden from the pipeline)\n")
    print(f"{'layer':>5} {'P_hat':>8} {'P_act':>8} {'err%':>6}   "
          f"{'v_hat':>8} {'v_act':>8} {'err%':>6}   {'dev_cmd%':>8}")
    p_errs, v_errs = [], []
    for t in results:
        p = t.payload
        power_act, speed_act = actual[t.layer]
        p_err = abs(p["power_w_hat"] - power_act) / power_act
        v_err = abs(p["speed_mm_s_hat"] - speed_act) / speed_act
        p_errs.append(p_err)
        v_errs.append(v_err)
        print(f"{t.layer:>5} {p['power_w_hat']:>8.1f} {power_act:>8.1f} "
              f"{p_err * 100:>6.2f}   {p['speed_mm_s_hat']:>8.1f} "
              f"{speed_act:>8.1f} {v_err * 100:>6.2f}   "
              f"{p['power_deviation'] * 100:>8.2f}")
    print(f"\nmean error vs hidden actual: power "
          f"{sum(p_errs) / len(p_errs) * 100:.2f}%, speed "
          f"{sum(v_errs) / len(v_errs) * 100:.2f}%")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fleet", metavar="URL", default=None,
                        help="submit to a running strata-repro serve instead "
                             "of running locally")
    args = parser.parse_args()
    if args.fleet:
        from thermal_forecasting import run_fleet

        return run_fleet(args.fleet)
    return run_local()


if __name__ == "__main__":
    sys.exit(main())
