#!/usr/bin/env python3
"""The OT thermal use case deployed across worker *processes*.

The paper decouples its modules with Kafka so detection methods can be
"continuously deployed, run, and decommissioned" independently. This
example takes the same pipeline that normally runs threaded in one
process and deploys it distributed: the built query DAG is cut at its
pub/sub connector edges into stages, the coordinator serves its broker
over TCP (``repro.net``), and each stage group runs in a forked worker
process wired through network topics (``repro.dist``). The terminal
stage — the one delivering results to the expert — stays in the
coordinator, so ``pipeline.sink.results`` fills exactly as in the
single-process run.

Worker crash recovery is built in: workers replay their input topics
from the earliest offset and content-key dedup filters drop the
replayed records, so a killed worker is re-forked and the final output
is unchanged. Pass ``--chaos`` to see it happen.

Run:  python examples/distributed_monitoring.py
      python examples/distributed_monitoring.py --chaos --workers 3
"""

from __future__ import annotations

import argparse
import threading
import time

from repro.am import BuildDataset, OTImageRenderer, make_job
from repro.core import (
    Strata,
    UseCaseConfig,
    build_use_case,
    calibrate_job,
    specimen_regions_px,
)
from repro.dist import DistConfig, DistCoordinator, render_stages

IMAGE_PX = 400
CELL_EDGE = 5
LAYERS = 12
WINDOW = 6


def build_pipeline(records, reference_images, job):
    config = UseCaseConfig(
        image_px=IMAGE_PX, cell_edge_px=CELL_EDGE, window_layers=WINDOW
    )
    strata = Strata(engine_mode="threaded", connector_mode="pubsub")
    # calibration thresholds are written *before* deploy: forked workers
    # inherit the kv store by memory and treat data-at-rest as read-only
    calibrate_job(
        strata.kv, job.job_id, reference_images, CELL_EDGE,
        regions=specimen_regions_px(job.specimens, IMAGE_PX),
    )
    pipeline = build_use_case(iter(records), iter(records), config, strata=strata)
    return strata, pipeline


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--workers", type=int, default=2,
                        help="worker processes for the remote stages")
    parser.add_argument("--chaos", action="store_true",
                        help="hard-kill one worker mid-run to show recovery")
    args = parser.parse_args()

    job = make_job("EOS-M290-dist", seed=7, defect_rate_per_stack=0.55)
    renderer = OTImageRenderer(image_px=IMAGE_PX, seed=7)
    records = list(BuildDataset(job, renderer).records(0, LAYERS))
    reference = make_job("reference", seed=1, defect_rate_per_stack=0.0)
    reference_images = [
        r.image for r in BuildDataset(reference, renderer).records(0, 3)
    ]

    strata, pipeline = build_pipeline(records, reference_images, job)
    coordinator = DistCoordinator(
        strata.query, strata.broker,
        DistConfig(workers=args.workers),
        capacity=strata.capacity,
    )
    host, port = coordinator.start()
    print(f"broker serving at {host}:{port}")
    print(render_stages(coordinator.stages))
    print()

    if args.chaos:
        def chaos():
            time.sleep(0.1)
            victim = coordinator.workers[0]
            print(f"!! killing {victim.name} (pid {victim.pid})")
            victim.kill()

        threading.Thread(target=chaos, daemon=True).start()

    report = coordinator.run()

    dist = report.extra["dist"]
    print(f"done in {report.wall_seconds:.2f}s; "
          f"restarts={dist['restarts']}, "
          f"replayed duplicates suppressed locally="
          f"{dist['duplicates_suppressed_local']}")
    for name, status in dist["workers"].items():
        print(f"  {name}: stages={status['stages']} "
              f"incarnation={status['incarnation']} exit={status['exitcode']}")
    for name, snapshot in report.extra.get("worker_metrics", {}).items():
        tuples_out = sum(
            s.value for s in snapshot.samples if s.name == "spe_tuples_out_total"
        )
        print(f"  {name}: {int(tuples_out)} tuples processed")

    flagged = [t for t in pipeline.sink.results if t.payload["num_clusters"] > 0]
    print(f"results: {len(pipeline.sink.results)} verdicts, {len(flagged)} flagged")
    for t in flagged[-3:]:
        print(f"  layer {t.layer} specimen {t.specimen}: "
              f"{t.payload['num_clusters']} cluster(s), "
              f"{t.payload['num_events']} events")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
