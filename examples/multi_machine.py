#!/usr/bin/env python3
"""Monitor several PBF-LB machines with one STRATA deployment.

§3: "A manufacturing facility can count on many PBF-LB machines, each
sensing data at a different time granularity and producing varying data
volumes." Here three simulated machines run different jobs concurrently;
their layer streams merge into one pipeline, and STRATA's (job, specimen)
grouping keeps every build's analysis separate while the detect stage is
sharded 4-way for throughput.

Run:  python examples/multi_machine.py
"""

from __future__ import annotations

import threading

from repro.am import BuildDataset, OTImageRenderer, PBFLBMachine, make_job
from repro.core import (
    LiveLayerFeed,
    Strata,
    UseCaseConfig,
    build_use_case,
    calibrate_job,
    specimen_regions_px,
)

IMAGE_PX = 400
CELL_EDGE_PX = 4
LAYERS_PER_JOB = 15

MACHINES = {
    "M290-A": dict(seed=7, defect_rate_per_stack=0.6),
    "M290-B": dict(seed=21, defect_rate_per_stack=0.2),
    "M290-C": dict(seed=33, defect_rate_per_stack=1.0),
}


def main() -> None:
    renderer = OTImageRenderer(image_px=IMAGE_PX, seed=3)
    jobs = {
        machine_id: make_job(f"job-{machine_id}", **params)
        for machine_id, params in MACHINES.items()
    }

    config = UseCaseConfig(
        image_px=IMAGE_PX,
        cell_edge_px=CELL_EDGE_PX,
        window_layers=8,
        parallelism=4,  # shard detectEvent by (job, specimen)
    )
    strata = Strata(engine_mode="threaded")
    reference = make_job("reference", seed=1, defect_rate_per_stack=0.0)
    reference_images = [
        r.image for r in BuildDataset(reference, renderer).records(0, 4)
    ]
    for job in jobs.values():
        calibrate_job(
            strata.kv, job.job_id, reference_images, CELL_EDGE_PX,
            regions=specimen_regions_px(job.specimens, IMAGE_PX),
        )

    # one merged feed: every machine pushes its completed layers here
    feed = LiveLayerFeed()
    pipeline = build_use_case(feed.records(), feed.records(), config, strata=strata)
    strata.start()

    def run_machine(machine_id: str) -> None:
        machine = PBFLBMachine(machine_id=machine_id, renderer=renderer)
        machine.run(jobs[machine_id], on_layer=feed.push, max_layers=LAYERS_PER_JOB)

    threads = [
        threading.Thread(target=run_machine, args=(machine_id,), name=machine_id)
        for machine_id in MACHINES
    ]
    print(f"running {len(threads)} machines x {LAYERS_PER_JOB} layers ...")
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    feed.close()
    strata.wait(timeout=300)

    # per-job verdicts, exactly as a facility dashboard would aggregate them
    print(f"\n{'job':<14} {'reports':>8} {'events':>7} {'clusters':>9}")
    for machine_id, job in jobs.items():
        mine = [t for t in pipeline.sink.results if t.job == job.job_id]
        events = sum(t.payload["num_events"] for t in mine)
        clusters = sum(t.payload["num_clusters"] for t in mine)
        print(f"{job.job_id:<14} {len(mine):>8} {events:>7} {clusters:>9}")
    print("\n(cluster counts track each job's seeded defect rate: C > A > B)")


if __name__ == "__main__":
    main()
