#!/usr/bin/env python3
"""Live monitoring with closed-loop control (Figure 1B of the paper).

A simulated EOS M290 prints in (compressed) real time; STRATA analyzes
each completed layer inside the 3-second recoat gap, and an automated
expert policy terminates the build as soon as a defect cluster grows past
a volume budget — "saving energy, material, time" (§1).

The pipeline runs with the observability layer on: per-operator and
per-queue metrics are scraped at the end (``--metrics-out`` appends them
as JSON lines), and a :class:`~repro.obs.QoSWatchdog` flags every layer
whose verdict missed the recoat-gap deadline. ``--stall-layer N`` injects
a slow layer — its tuples reach the sink ``--stall-seconds`` late — to
demonstrate the alert path.

Run:  python examples/live_monitoring.py
      python examples/live_monitoring.py --stall-layer 12 --metrics-out m.jsonl
"""

from __future__ import annotations

import argparse
import threading
import time
from typing import Iterator, Sequence

from repro.am import (
    BuildDataset,
    ControlHandle,
    OTImageRenderer,
    PBFLBMachine,
    make_job,
)
from repro.core import (
    LiveLayerFeed,
    Strata,
    UseCaseConfig,
    build_use_case,
    calibrate_job,
    specimen_regions_px,
)
from repro.obs import ObsConfig, ObsContext, to_json_line
from repro.spe import CallbackSink
from repro.spe.source import Source
from repro.spe.tuples import StreamTuple


class StallInjector(Source):
    """Delays one layer's tuples past the QoS deadline.

    Back-dates ``ingest_time`` for every tuple of the stalled layer, so
    the sink-measured end-to-end latency exceeds the deadline exactly as
    if an upstream stage had stalled that long — without actually
    sleeping, which keeps demos (and the integration test) fast.
    """

    def __init__(self, inner: Source, layer: int, stall_s: float) -> None:
        super().__init__(inner.name)
        self._inner = inner
        self._layer = layer
        self._stall_s = stall_s

    def __iter__(self) -> Iterator[StreamTuple]:
        for t in self._inner:
            if t.layer == self._layer:
                t.ingest_time = time.monotonic() - self._stall_s
            yield t


def build_argparser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--image-px", type=int, default=500,
                        help="OT sensor resolution (paper: 2000)")
    parser.add_argument("--layers", type=int, default=60,
                        help="layers to print")
    parser.add_argument("--time-scale", type=float, default=0.02,
                        help="real-time compression (0 = as fast as possible)")
    parser.add_argument("--volume-budget", type=float, default=2.0,
                        help="terminate past this cluster volume, mm^3")
    parser.add_argument("--deadline", type=float, default=3.0,
                        help="QoS deadline per layer verdict, seconds")
    parser.add_argument("--metrics-out", default=None, metavar="FILE",
                        help="append a JSONL metrics snapshot to FILE")
    parser.add_argument("--stall-layer", type=int, default=None,
                        help="inject a stalled layer (demonstrates QoS alerts)")
    parser.add_argument("--stall-seconds", type=float, default=4.0,
                        help="how late the stalled layer's tuples arrive")
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_argparser().parse_args(argv)
    job = make_job("EOS-M290-live", seed=7)
    renderer = OTImageRenderer(image_px=args.image_px, seed=7)
    machine = PBFLBMachine(
        renderer=renderer,
        recoat_gap_s=args.deadline,
        time_scale=args.time_scale or 0.02,
    )

    config = UseCaseConfig(
        image_px=args.image_px, cell_edge_px=5, window_layers=10,
        min_volume_mm3=0.2,
    )
    obs = ObsContext(ObsConfig(qos_deadline_s=args.deadline))
    obs.watchdog.add_callback(lambda alert: print(f"  !! {alert.format()}"))
    strata = Strata(engine_mode="threaded", obs=obs)
    reference = make_job("reference", seed=1, defect_rate_per_stack=0.0)
    calibrate_job(
        strata.kv,
        job.job_id,
        (r.image for r in BuildDataset(reference, renderer).records(0, 5)),
        config.cell_edge_px,
        regions=specimen_regions_px(job.specimens, args.image_px),
    )

    control = ControlHandle()
    feed = LiveLayerFeed()

    def expert_policy(t) -> None:
        """Runs per aggregator report; decides continue/terminate."""
        for cluster in t.payload["clusters"]:
            if cluster["volume_mm3"] >= args.volume_budget:
                print(
                    f"  !! layer {t.layer}, specimen {t.specimen}: cluster of "
                    f"{cluster['volume_mm3']:.1f} mm^3 "
                    f"(layers {cluster['layers']}) -> TERMINATE"
                )
                control.request_termination(
                    f"{cluster['volume_mm3']:.1f} mm^3 defect in {t.specimen}"
                )

    from repro.core import OTImageCollector, PrintingParameterCollector

    ot_source: Source = OTImageCollector(feed.records(), name="ot-image-collector")
    pp_source: Source = PrintingParameterCollector(
        feed.records(), name="printing-parameter-collector"
    )
    if args.stall_layer is not None:
        ot_source = StallInjector(ot_source, args.stall_layer, args.stall_seconds)
        pp_source = StallInjector(pp_source, args.stall_layer, args.stall_seconds)

    # The record iterables are ignored when sources are given explicitly;
    # the collectors above already hold their own feed subscriptions.
    sink = CallbackSink("expert-policy", expert_policy)
    build_use_case(
        iter(()), iter(()), config, strata=strata, sink=sink,
        ot_source=ot_source, pp_source=pp_source,
    )
    strata.start()

    def progress(record) -> None:
        if record.layer % 10 == 0:
            print(f"  machine: layer {record.layer} complete "
                  f"(z = {record.z_mm:.2f} mm)")
        feed.push(record)

    print(f"printing {job.job_id}: {args.layers} layers, "
          f"volume budget {args.volume_budget} mm^3, "
          f"deadline {args.deadline}s")
    builder = threading.Thread(
        target=lambda: feed.close()
        if machine.run(
            job, realtime=args.time_scale > 0, control=control,
            on_layer=progress, max_layers=args.layers,
        )
        else None
    )
    builder.start()
    builder.join()
    strata.wait(timeout=120)

    snap = strata.metrics()
    if args.metrics_out:
        with open(args.metrics_out, "a", encoding="utf-8") as fh:
            fh.write(to_json_line(snap) + "\n")
    violated = obs.watchdog.violated_layers()
    print(f"\nqos: {len(violated)} layer(s) missed the {args.deadline}s deadline"
          + (f" {sorted(layer for _, layer in violated)}" if violated else ""))
    if control.termination_requested:
        print(f"build terminated early: {control.reason}")
        print("material and machine time saved; defective part never completed.")
    else:
        print(f"build completed all {args.layers} layers within budget.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
