#!/usr/bin/env python3
"""Live monitoring with closed-loop control (Figure 1B of the paper).

A simulated EOS M290 prints in (compressed) real time; STRATA analyzes
each completed layer inside the 3-second recoat gap, and an automated
expert policy terminates the build as soon as a defect cluster grows past
a volume budget — "saving energy, material, time" (§1).

Run:  python examples/live_monitoring.py
"""

from __future__ import annotations

import threading

from repro.am import (
    BuildDataset,
    ControlHandle,
    OTImageRenderer,
    PBFLBMachine,
    make_job,
)
from repro.core import (
    LiveLayerFeed,
    Strata,
    UseCaseConfig,
    build_use_case,
    calibrate_job,
    specimen_regions_px,
)
from repro.spe import CallbackSink, DeadlineSink

IMAGE_PX = 500
CELL_EDGE_PX = 5
VOLUME_BUDGET_MM3 = 2.0
MAX_LAYERS = 60


def main() -> None:
    job = make_job("EOS-M290-live", seed=7)
    renderer = OTImageRenderer(image_px=IMAGE_PX, seed=7)
    machine = PBFLBMachine(
        renderer=renderer,
        recoat_gap_s=3.0,
        time_scale=0.02,  # 50x compressed real time for the demo
    )

    config = UseCaseConfig(
        image_px=IMAGE_PX, cell_edge_px=CELL_EDGE_PX, window_layers=10,
        min_volume_mm3=0.2,
    )
    strata = Strata(engine_mode="threaded")
    reference = make_job("reference", seed=1, defect_rate_per_stack=0.0)
    calibrate_job(
        strata.kv,
        job.job_id,
        (r.image for r in BuildDataset(reference, renderer).records(0, 5)),
        CELL_EDGE_PX,
        regions=specimen_regions_px(job.specimens, IMAGE_PX),
    )

    control = ControlHandle()
    feed = LiveLayerFeed()

    def expert_policy(t) -> None:
        """Runs per aggregator report; decides continue/terminate."""
        for cluster in t.payload["clusters"]:
            if cluster["volume_mm3"] >= VOLUME_BUDGET_MM3:
                print(
                    f"  !! layer {t.layer}, specimen {t.specimen}: cluster of "
                    f"{cluster['volume_mm3']:.1f} mm^3 "
                    f"(layers {cluster['layers']}) -> TERMINATE"
                )
                control.request_termination(
                    f"{cluster['volume_mm3']:.1f} mm^3 defect in {t.specimen}"
                )

    # wrap the expert policy in the recoat-gap QoS deadline check (§3)
    sink = DeadlineSink(
        CallbackSink("expert-policy", expert_policy),
        qos_seconds=3.0,
        on_violation=lambda t, latency: print(
            f"  !! QoS violation: layer {t.layer} verdict took {latency:.2f}s"
        ),
    )
    build_use_case(
        feed.records(), feed.records(), config, strata=strata, sink=sink
    )
    strata.start()

    def progress(record) -> None:
        if record.layer % 10 == 0:
            print(f"  machine: layer {record.layer} complete "
                  f"(z = {record.z_mm:.2f} mm)")
        feed.push(record)

    print(f"printing {job.job_id}: {MAX_LAYERS} layers, "
          f"volume budget {VOLUME_BUDGET_MM3} mm^3")
    builder = threading.Thread(
        target=lambda: feed.close()
        if machine.run(
            job, realtime=True, control=control, on_layer=progress,
            max_layers=MAX_LAYERS,
        )
        else None
    )
    builder.start()
    builder.join()
    strata.wait(timeout=120)

    if control.termination_requested:
        print(f"\nbuild terminated early: {control.reason}")
        print("material and machine time saved; defective part never completed.")
    else:
        print(f"\nbuild completed all {MAX_LAYERS} layers without exceeding budget.")


if __name__ == "__main__":
    main()
