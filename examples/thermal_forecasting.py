#!/usr/bin/env python3
"""Streaming thermal state estimation with predictive QoS alerts.

The paper frames layer-to-layer heat accumulation as the quantity a
data-driven process needs to track: each layer's energy input raises the
part's temperature field, and an overheating region must be caught
*before* the laser prints on top of it. This example runs the
``repro.thermal`` forecast pipeline over a synthetic build whose scan
schedule hides a power spike: a per-cell Kalman filter fuses the
commanded scan plan (deposited-energy maps) with noisy, partially
dropped-out thermal frames, forecasts the next layer's temperature
field, and raises *predictive* QoS alerts through the shared watchdog —
one recoat gap before the overheat threshold would actually be breached.

With ``--fleet URL`` the same workload (plus the laser-reconstruction
sibling) is instead submitted to a running ``strata-repro serve``
control plane as two tenants, showing the thermal pipelines as
first-class fleet workloads.

Run:  python examples/thermal_forecasting.py
      python -m repro serve &  python examples/thermal_forecasting.py \
          --fleet http://127.0.0.1:9500
"""

from __future__ import annotations

import argparse
import json
import sys
import time
import urllib.request

from repro.am.scanpath import ThermalBuildConfig, synthesize_thermal_build
from repro.core import Strata
from repro.obs.watchdog import QoSWatchdog
from repro.thermal import (
    ThermalPipelineConfig,
    build_forecast_pipeline,
    calibrate_thermal_job,
    resolve_overheat_threshold,
)

LAYERS = 24
SPIKE_AT = 16


def run_local() -> int:
    config = ThermalBuildConfig(
        job_id="forecast-demo",
        layers=LAYERS,
        spike_layers=(SPIKE_AT, SPIKE_AT + 2),
        dropout_rate=0.02,
        seed=11,
    )
    build = synthesize_thermal_build(config)
    pipe_cfg = ThermalPipelineConfig()
    pipe_cfg.overheat_threshold = resolve_overheat_threshold(build, pipe_cfg)

    watchdog = QoSWatchdog()
    strata = Strata(engine_mode="threaded")
    pipeline = build_forecast_pipeline(
        iter(build.records), iter(build.records), config, pipe_cfg,
        strata=strata, watchdog=watchdog,
    )
    calibrate_thermal_job(strata.kv, build, laser=False)
    strata.deploy()

    results = sorted(pipeline.sink.results, key=lambda t: (t.layer, t.specimen))
    print(f"{LAYERS} layers -> {len(results)} region forecasts "
          f"(overheat threshold {pipe_cfg.overheat_threshold:.1f})")
    print(f"{'layer':>5} {'region':<12} {'filtered':>9} {'forecast':>9} "
          f"{'fc_max':>8} {'dropped':>8}")
    for t in results:
        if t.specimen != "region-0-0" or t.layer % 4:
            continue
        p = t.payload
        print(f"{t.layer:>5} {t.specimen:<12} {p['filtered_mean']:>9.2f} "
              f"{p['forecast_mean']:>9.2f} {p['forecast_max']:>8.2f} "
              f"{p['dropped_cells']:>8}")

    realized = [t.payload["realized_rmse"] for t in results
                if t.payload["realized_rmse"] >= 0]
    print(f"\nrealized one-layer-ahead RMSE vs measurement: "
          f"{sum(realized) / len(realized):.2f} "
          f"(sensor noise std {config.thermal.sensor_var ** 0.5:.2f})")

    alerts = watchdog.predictive_alerts()
    print(f"\npredictive QoS alerts ({len(alerts)}; spike seeded at layer "
          f"{SPIKE_AT}):")
    for alert in alerts:
        print(f"  layer {alert.layer} {alert.specimen}: forecast "
              f"{alert.predicted_value:.1f} > threshold {alert.threshold:.1f}, "
              f"{alert.lead_time_s:.1f}s before recoat completes")
    return 0


def submit(base_url: str, tenant: str, workload: dict) -> str:
    req = urllib.request.Request(
        base_url.rstrip("/") + "/jobs",
        method="POST",
        data=json.dumps({"tenant": tenant, "workload": workload}).encode(),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(req, timeout=30) as resp:
        return json.loads(resp.read())["job_id"]


def wait(base_url: str, job_id: str, timeout: float = 120.0) -> dict:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        with urllib.request.urlopen(
            base_url.rstrip("/") + f"/jobs/{job_id}", timeout=30
        ) as resp:
            body = json.loads(resp.read())
        if body["state"] in ("COMPLETED", "FAILED", "CANCELLED"):
            return body
        time.sleep(0.2)
    raise TimeoutError(f"job {job_id} did not finish within {timeout}s")


def run_fleet(base_url: str) -> int:
    """Submit forecast + reconstruction as two fleet tenants."""
    jobs = [
        ("thermal-lab", {"kind": "forecast", "name": "forecast-demo",
                         "layers": 8, "image_px": 96, "window": 4, "seed": 11}),
        ("laser-lab", {"kind": "reconstruct", "name": "reconstruct-demo",
                       "layers": 8, "image_px": 96, "window": 4, "seed": 11}),
    ]
    submitted = [(tenant, submit(base_url, tenant, wl)) for tenant, wl in jobs]
    for tenant, job_id in submitted:
        final = wait(base_url, job_id)
        result = final.get("result") or {}
        print(f"tenant {tenant!r} job {job_id}: {final['state']} "
              f"({result.get('results')} results in "
              f"{result.get('wall_seconds')}s)")
        if final["state"] != "COMPLETED":
            return 1
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fleet", metavar="URL", default=None,
                        help="submit to a running strata-repro serve instead "
                             "of running locally")
    args = parser.parse_args()
    if args.fleet:
        return run_fleet(args.fleet)
    return run_local()


if __name__ == "__main__":
    sys.exit(main())
