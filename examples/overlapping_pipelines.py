#!/usr/bin/env python3
"""Two experts, one deployment: overlapping pipelines (§4 of the paper).

"Parts of a given data pipeline can be shared by different experts and/or
across jobs": here the Raw Data Collectors and the fuse stage are shared,
and a thermal-anomaly expert plus a recoater-streak expert each hang
their own analysis off the same fused stream — deployed, run, and
reported independently inside a single STRATA deployment.

Run:  python examples/overlapping_pipelines.py
"""

from __future__ import annotations

from repro.am import BuildDataset, OTImageRenderer, make_job
from repro.am.defects import RecoaterStreak
from repro.core import (
    DBSCANCorrelator,
    DetectStreakRows,
    IsolateSpecimens,
    LabelSpecimenCells,
    OTImageCollector,
    PrintingParameterCollector,
    Strata,
    StreakCorrelator,
    calibrate_job,
    specimen_regions_px,
)

IMAGE_PX = 500
CELL_EDGE_PX = 5
LAYERS = 25


def main() -> None:
    job = make_job("shared-deploy", seed=11, defect_rate_per_stack=0.6)
    job.streaks = [RecoaterStreak("R0", 140.0, 0.0, 250.0, 0.8, 5, 14, -0.3)]
    renderer = OTImageRenderer(image_px=IMAGE_PX, seed=11)
    records = list(BuildDataset(job, renderer).records(0, LAYERS))

    strata = Strata(engine_mode="threaded")
    reference = make_job("ref", seed=1, defect_rate_per_stack=0.0)
    calibrate_job(
        strata.kv, job.job_id,
        (r.image for r in BuildDataset(reference, renderer).records(0, 5)),
        CELL_EDGE_PX,
        regions=specimen_regions_px(job.specimens, IMAGE_PX),
    )

    # ---- shared stages: collectors + fuse --------------------------------
    strata.add_source(PrintingParameterCollector(iter(records)), "pp")
    strata.add_source(OTImageCollector(iter(records)), "OT")
    strata.fuse("OT", "pp", "OT&pp")

    # ---- expert 1: thermal anomalies per specimen ------------------------
    strata.partition("OT&pp", "spec", IsolateSpecimens(IMAGE_PX))
    strata.detect_event("spec", "cells", LabelSpecimenCells(strata.kv, CELL_EDGE_PX))
    strata.correlate_events(
        "cells", "thermal", 10,
        DBSCANCorrelator(
            eps_mm=4.0, min_samples=3, px_per_mm=IMAGE_PX / 250.0,
            layer_thickness_mm=0.04, cell_volume_mm3=2.5 * 2.5 * 0.04,
            min_volume_mm3=0.5,
        ),
    )
    thermal_sink = strata.deliver("thermal")

    # ---- expert 2: recoater streaks, plate-wide --------------------------
    strata.detect_event("OT&pp", "bands", DetectStreakRows())
    strata.correlate_events(
        "bands", "streaks", 15,
        StreakCorrelator(px_per_mm=IMAGE_PX / 250.0, min_layers=2),
    )
    streak_sink = strata.deliver("streaks")

    strata.deploy()

    flagged = {t.specimen for t in thermal_sink.results if t.payload["num_clusters"]}
    print(f"thermal expert: {len(thermal_sink.results)} reports; "
          f"clusters in specimens {sorted(flagged)}")
    best: dict[float, dict] = {}
    for t in streak_sink.results:
        for s in t.payload["streaks"]:
            key = round(s["y_mm"], 1)
            if key not in best or s["layers_observed"] > best[key]["layers_observed"]:
                best[key] = s
    print(f"recoater expert: {len(streak_sink.results)} reports; "
          f"{len(best)} distinct streak(s):")
    for y_mm in sorted(best):
        s = best[y_mm]
        print(f"  y={y_mm} mm, layers {s['first_layer']}-{s['last_layer']}")


if __name__ == "__main__":
    main()
