"""Key/value codec edge cases."""

import pytest

from repro.kvstore import (
    InvalidKeyError,
    decode_value,
    encode_key,
    encode_value,
)


def test_string_keys_utf8():
    assert encode_key("käse") == "käse".encode("utf-8")


def test_bytes_keys_pass_through():
    assert encode_key(b"\x00\xff") == b"\x00\xff"


@pytest.mark.parametrize("bad", ["", b""])
def test_empty_keys_rejected(bad):
    with pytest.raises(InvalidKeyError):
        encode_key(bad)


@pytest.mark.parametrize("bad", [None, 42, 3.14, ["k"]])
def test_non_string_keys_rejected(bad):
    with pytest.raises(InvalidKeyError):
        encode_key(bad)


@pytest.mark.parametrize(
    "value",
    [
        None,
        True,
        0,
        -17,
        3.5,
        "text",
        "",
        [1, "two", None],
        {"nested": {"deep": [1, 2]}},
    ],
)
def test_json_values_roundtrip(value):
    encoded = encode_value(value)
    assert encoded[:1] == b"j"
    assert decode_value(encoded) == value


def test_bytes_values_tagged_raw():
    encoded = encode_value(b"\x00raw\xff")
    assert encoded[:1] == b"b"
    assert decode_value(encoded) == b"\x00raw\xff"


def test_non_json_values_fall_back_to_pickle():
    value = {1, 2, 3}  # sets are not JSON-serializable
    encoded = encode_value(value)
    assert encoded[:1] == b"p"
    assert decode_value(encoded) == value


def test_tuple_roundtrips_via_pickle_preserving_type():
    value = (1, "a")
    decoded = decode_value(encode_value(value))
    # tuples are pickled (JSON would flatten them to lists)
    assert decoded == (1, "a")
    assert isinstance(decoded, tuple)


def test_unknown_tag_rejected():
    with pytest.raises(ValueError, match="codec tag"):
        decode_value(b"z???")


# property: any value built from JSON-ish + tuples/sets round-trips exactly
import hypothesis.strategies as st
from hypothesis import given, settings

values = st.recursive(
    st.none()
    | st.booleans()
    | st.integers()
    | st.floats(allow_nan=False, allow_infinity=False)
    | st.text(max_size=10)
    | st.binary(max_size=10),
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.tuples(children, children),
        st.dictionaries(st.text(max_size=5), children, max_size=4),
    ),
    max_leaves=12,
)


@given(value=values)
@settings(max_examples=120, deadline=None)
def test_any_value_roundtrips_exactly(value):
    decoded = decode_value(encode_value(value))
    assert decoded == value
    assert type(decoded) is type(value)
