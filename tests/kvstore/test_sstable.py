"""SSTable write/read, sparse index lookups, corruption detection."""

import pytest

from repro.kvstore.errors import CorruptionError
from repro.kvstore.sstable import SSTable, SSTableWriter


def build_table(path, entries, **kwargs):
    writer = SSTableWriter(path, expected_items=len(entries) or 1, **kwargs)
    for key, value in entries:
        writer.add(key, value)
    writer.finish()
    return SSTable(path)


def test_point_lookup_every_key(tmp_path):
    entries = [(f"k{i:04d}".encode(), f"v{i}".encode()) for i in range(200)]
    table = build_table(tmp_path / "t.sst", entries)
    for key, value in entries:
        assert table.get(key) == value


def test_lookup_absent_keys(tmp_path):
    entries = [(f"k{i:04d}".encode(), b"v") for i in range(0, 100, 2)]
    table = build_table(tmp_path / "t.sst", entries)
    assert table.get(b"k0001") is None
    assert table.get(b"a") is None
    assert table.get(b"zzz") is None


def test_items_in_order(tmp_path):
    entries = [(f"k{i:04d}".encode(), b"v") for i in range(50)]
    table = build_table(tmp_path / "t.sst", entries)
    assert list(table.items()) == entries
    assert len(table) == 50


def test_range_items(tmp_path):
    entries = [(f"{i:02d}".encode(), b"v") for i in range(30)]
    table = build_table(tmp_path / "t.sst", entries)
    got = [k for k, _ in table.range_items(b"10", b"15")]
    assert got == [b"10", b"11", b"12", b"13", b"14"]
    assert [k for k, _ in table.range_items(None, b"03")] == [b"00", b"01", b"02"]
    assert [k for k, _ in table.range_items(b"28", None)] == [b"28", b"29"]


def test_unsorted_add_rejected(tmp_path):
    writer = SSTableWriter(tmp_path / "t.sst")
    writer.add(b"b", b"1")
    with pytest.raises(ValueError):
        writer.add(b"a", b"2")
    with pytest.raises(ValueError):
        writer.add(b"b", b"dup")


def test_empty_table(tmp_path):
    table = build_table(tmp_path / "t.sst", [])
    assert len(table) == 0
    assert table.get(b"k") is None
    assert list(table.items()) == []


def test_bad_magic_detected(tmp_path):
    path = tmp_path / "t.sst"
    build_table(path, [(b"k", b"v")])
    data = bytearray(path.read_bytes())
    data[-4:] = b"XXXX"
    path.write_bytes(bytes(data))
    with pytest.raises(CorruptionError):
        SSTable(path)


def test_data_corruption_detected_on_read(tmp_path):
    path = tmp_path / "t.sst"
    build_table(path, [(b"key-one", b"value-one"), (b"key-two", b"value-two")])
    data = bytearray(path.read_bytes())
    data[16] ^= 0xFF  # inside first record's body
    path.write_bytes(bytes(data))
    table = SSTable(path)
    with pytest.raises(CorruptionError):
        list(table.items())


def test_small_index_interval(tmp_path):
    entries = [(f"{i:03d}".encode(), str(i).encode()) for i in range(64)]
    table = build_table(tmp_path / "t.sst", entries, index_interval=4)
    for key, value in entries:
        assert table.get(key) == value


def test_large_values(tmp_path):
    big = bytes(range(256)) * 1000
    table = build_table(tmp_path / "t.sst", [(b"big", big)])
    assert table.get(b"big") == big
