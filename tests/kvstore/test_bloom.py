"""Bloom filter guarantees."""

import random

from repro.kvstore.bloom import BloomFilter


def test_no_false_negatives():
    bloom = BloomFilter(expected_items=500, fp_rate=0.01)
    keys = [f"key-{i}".encode() for i in range(500)]
    for key in keys:
        bloom.add(key)
    assert all(bloom.might_contain(key) for key in keys)


def test_false_positive_rate_reasonable():
    bloom = BloomFilter(expected_items=1000, fp_rate=0.01)
    for i in range(1000):
        bloom.add(f"member-{i}".encode())
    rng = random.Random(42)
    probes = [f"absent-{rng.random()}".encode() for _ in range(2000)]
    fp = sum(bloom.might_contain(p) for p in probes)
    assert fp / len(probes) < 0.05  # generous bound over the 1% target


def test_serialization_roundtrip():
    bloom = BloomFilter(expected_items=100)
    for i in range(100):
        bloom.add(f"{i}".encode())
    restored = BloomFilter.from_bytes(bloom.to_bytes())
    assert restored.num_bits == bloom.num_bits
    assert restored.num_hashes == bloom.num_hashes
    assert all(restored.might_contain(f"{i}".encode()) for i in range(100))


def test_empty_filter_rejects_probes_mostly():
    bloom = BloomFilter(expected_items=10)
    assert not bloom.might_contain(b"anything")


def test_invalid_fp_rate():
    import pytest

    with pytest.raises(ValueError):
        BloomFilter(10, fp_rate=1.5)


def test_tiny_expected_items_still_works():
    bloom = BloomFilter(expected_items=0)
    bloom.add(b"x")
    assert bloom.might_contain(b"x")
