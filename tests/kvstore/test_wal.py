"""Write-ahead log durability and corruption handling."""

from repro.kvstore.wal import WriteAheadLog


def test_append_replay_roundtrip(tmp_path):
    path = tmp_path / "wal.log"
    wal = WriteAheadLog(path)
    entries = [(f"k{i}".encode(), f"v{i}".encode()) for i in range(25)]
    for key, value in entries:
        wal.append(key, value)
    wal.close()
    assert list(WriteAheadLog.replay(path)) == entries


def test_replay_missing_file_is_empty(tmp_path):
    assert list(WriteAheadLog.replay(tmp_path / "nope.log")) == []


def test_replay_stops_at_truncated_tail(tmp_path):
    path = tmp_path / "wal.log"
    wal = WriteAheadLog(path)
    wal.append(b"a", b"1")
    wal.append(b"b", b"2")
    wal.close()
    data = path.read_bytes()
    path.write_bytes(data[:-3])  # torn write on the last record
    assert list(WriteAheadLog.replay(path)) == [(b"a", b"1")]


def test_replay_stops_at_corrupt_record(tmp_path):
    path = tmp_path / "wal.log"
    wal = WriteAheadLog(path)
    wal.append(b"a", b"1")
    offset_after_first = path.stat().st_size
    wal.append(b"b", b"2")
    wal.append(b"c", b"3")
    wal.close()
    data = bytearray(path.read_bytes())
    data[offset_after_first + 12] ^= 0xFF  # flip the key byte of record 2
    path.write_bytes(bytes(data))
    assert list(WriteAheadLog.replay(path)) == [(b"a", b"1")]


def test_remove_deletes_file(tmp_path):
    path = tmp_path / "wal.log"
    wal = WriteAheadLog(path)
    wal.append(b"k", b"v")
    wal.remove()
    assert not path.exists()


def test_append_after_close_raises(tmp_path):
    from repro.kvstore.errors import StoreClosedError
    import pytest

    wal = WriteAheadLog(tmp_path / "wal.log")
    wal.close()
    with pytest.raises(StoreClosedError):
        wal.append(b"k", b"v")


def test_reopen_appends(tmp_path):
    path = tmp_path / "wal.log"
    wal = WriteAheadLog(path)
    wal.append(b"a", b"1")
    wal.close()
    wal2 = WriteAheadLog(path)
    wal2.append(b"b", b"2")
    wal2.close()
    assert list(WriteAheadLog.replay(path)) == [(b"a", b"1"), (b"b", b"2")]


def test_empty_values_roundtrip(tmp_path):
    path = tmp_path / "wal.log"
    wal = WriteAheadLog(path)
    wal.append(b"k", b"")
    wal.close()
    assert list(WriteAheadLog.replay(path)) == [(b"k", b"")]


# -- torn-write recovery, exhaustively ---------------------------------------


def _write_wal(path, entries):
    wal = WriteAheadLog(path)
    for key, value in entries:
        wal.append(key, value)
    wal.close()


def test_truncation_at_every_byte_of_last_record(tmp_path):
    """A crash can tear the final append at any byte; replay must always
    recover exactly the intact prefix, never raise, never yield garbage."""
    entries = [(b"key-aa", b"value-1"), (b"key-bb", b"value-22")]
    full = tmp_path / "full.log"
    _write_wal(full, entries[:1])
    first_len = full.stat().st_size
    _write_wal(full, entries[1:])  # reopen-append the second record
    data = full.read_bytes()
    for cut in range(first_len, len(data)):
        torn = tmp_path / f"torn-{cut}.log"
        torn.write_bytes(data[:cut])
        assert list(WriteAheadLog.replay(torn)) == entries[:1], cut


def test_truncation_inside_first_record_loses_everything(tmp_path):
    path = tmp_path / "wal.log"
    _write_wal(path, [(b"only", b"record")])
    data = path.read_bytes()
    for cut in range(len(data)):
        path.write_bytes(data[:cut])
        assert list(WriteAheadLog.replay(path)) == []


def test_bitflip_at_every_byte_of_last_record(tmp_path):
    """Any single corrupted byte in the final record must discard it
    (and only it) — the CRC covers headers and bodies alike."""
    entries = [(b"k1", b"v1"), (b"k2", b"v2")]
    path = tmp_path / "wal.log"
    _write_wal(path, entries[:1])
    first_len = path.stat().st_size
    _write_wal(path, entries[1:])
    data = bytearray(path.read_bytes())
    for i in range(first_len, len(data)):
        flipped = bytearray(data)
        flipped[i] ^= 0xFF
        path.write_bytes(bytes(flipped))
        got = list(WriteAheadLog.replay(path))
        assert got == entries[:1], f"byte {i}: {got!r}"


def test_store_recovers_prefix_after_torn_write(tmp_path):
    """LSM-level: a torn WAL tail rolls the store back to the last intact
    record, and the store keeps working afterwards."""
    from repro.kvstore.lsm import LSMStore

    directory = tmp_path / "db"
    store = LSMStore(directory)
    store.put(b"stable", b"1")
    store.put(b"victim", b"2")
    store.close()

    wal_files = sorted(directory.glob("*.log"))
    # the flush-on-close wrote an sstable and removed the WAL; redo without close
    import shutil

    shutil.rmtree(directory)
    store = LSMStore(directory)
    store.put(b"stable", b"1")
    store.put(b"victim", b"2")
    store._wal._file.flush()  # simulate crash: no close, no flush to sstable
    wal_files = sorted(directory.glob("*.log"))
    assert wal_files, "expected an active WAL file"
    wal_path = wal_files[0]
    data = wal_path.read_bytes()
    store._wal._file.close()  # drop the handle so the torn copy is authoritative
    wal_path.write_bytes(data[:-1])  # tear the last append

    recovered = LSMStore(directory)
    assert recovered.get(b"stable") == b"1"
    assert recovered.get(b"victim") is None
    recovered.put(b"victim", b"3")  # store still writable after recovery
    assert recovered.get(b"victim") == b"3"
    recovered.close()
    reopened = LSMStore(directory)
    assert reopened.get(b"victim") == b"3"
    reopened.close()
