"""Write-ahead log durability and corruption handling."""

from repro.kvstore.wal import WriteAheadLog


def test_append_replay_roundtrip(tmp_path):
    path = tmp_path / "wal.log"
    wal = WriteAheadLog(path)
    entries = [(f"k{i}".encode(), f"v{i}".encode()) for i in range(25)]
    for key, value in entries:
        wal.append(key, value)
    wal.close()
    assert list(WriteAheadLog.replay(path)) == entries


def test_replay_missing_file_is_empty(tmp_path):
    assert list(WriteAheadLog.replay(tmp_path / "nope.log")) == []


def test_replay_stops_at_truncated_tail(tmp_path):
    path = tmp_path / "wal.log"
    wal = WriteAheadLog(path)
    wal.append(b"a", b"1")
    wal.append(b"b", b"2")
    wal.close()
    data = path.read_bytes()
    path.write_bytes(data[:-3])  # torn write on the last record
    assert list(WriteAheadLog.replay(path)) == [(b"a", b"1")]


def test_replay_stops_at_corrupt_record(tmp_path):
    path = tmp_path / "wal.log"
    wal = WriteAheadLog(path)
    wal.append(b"a", b"1")
    offset_after_first = path.stat().st_size
    wal.append(b"b", b"2")
    wal.append(b"c", b"3")
    wal.close()
    data = bytearray(path.read_bytes())
    data[offset_after_first + 12] ^= 0xFF  # flip the key byte of record 2
    path.write_bytes(bytes(data))
    assert list(WriteAheadLog.replay(path)) == [(b"a", b"1")]


def test_remove_deletes_file(tmp_path):
    path = tmp_path / "wal.log"
    wal = WriteAheadLog(path)
    wal.append(b"k", b"v")
    wal.remove()
    assert not path.exists()


def test_append_after_close_raises(tmp_path):
    from repro.kvstore.errors import StoreClosedError
    import pytest

    wal = WriteAheadLog(tmp_path / "wal.log")
    wal.close()
    with pytest.raises(StoreClosedError):
        wal.append(b"k", b"v")


def test_reopen_appends(tmp_path):
    path = tmp_path / "wal.log"
    wal = WriteAheadLog(path)
    wal.append(b"a", b"1")
    wal.close()
    wal2 = WriteAheadLog(path)
    wal2.append(b"b", b"2")
    wal2.close()
    assert list(WriteAheadLog.replay(path)) == [(b"a", b"1"), (b"b", b"2")]


def test_empty_values_roundtrip(tmp_path):
    path = tmp_path / "wal.log"
    wal = WriteAheadLog(path)
    wal.append(b"k", b"")
    wal.close()
    assert list(WriteAheadLog.replay(path)) == [(b"k", b"")]
