"""MemoryStore honours the same contract as the LSM store."""

import pytest

from repro.kvstore import MemoryStore, StoreClosedError


def test_basic_roundtrip(kv_store):
    kv_store.put("k", {"a": 1})
    assert kv_store.get("k") == {"a": 1}


def test_value_isolation_from_caller_mutation(kv_store):
    value = {"list": [1, 2]}
    kv_store.put("k", value)
    value["list"].append(3)
    assert kv_store.get("k") == {"list": [1, 2]}


def test_scan_sorted_range(kv_store):
    for key in ("b", "a", "d", "c"):
        kv_store.put(key, key.upper())
    assert [k for k, _ in kv_store.scan()] == [b"a", b"b", b"c", b"d"]
    assert [v for _, v in kv_store.scan("b", "d")] == ["B", "C"]


def test_delete_and_len():
    store = MemoryStore()
    store.put("x", 1)
    store.put("y", 2)
    store.delete("x")
    assert len(store) == 1
    assert store.get("x") is None
    store.close()


def test_closed_store_raises():
    store = MemoryStore()
    store.close()
    with pytest.raises(StoreClosedError):
        store.put("k", 1)


def test_bytes_keys_and_values(kv_store):
    kv_store.put(b"raw", b"\xff\x00")
    assert kv_store.get(b"raw") == b"\xff\x00"
    assert kv_store.get("raw") == b"\xff\x00"  # str/bytes keys are equivalent
