"""Compaction: newest-wins merging and tombstone reclamation."""

from repro.kvstore.compaction import compact, merge_tables
from repro.kvstore.memtable import TOMBSTONE
from repro.kvstore.sstable import SSTable, SSTableWriter


def make_table(path, entries):
    writer = SSTableWriter(path, expected_items=len(entries) or 1)
    for key, value in sorted(entries):
        writer.add(key, value)
    writer.finish()
    return SSTable(path)


def test_merge_newest_wins(tmp_path):
    old = make_table(tmp_path / "0.sst", [(b"a", b"old"), (b"b", b"old")])
    new = make_table(tmp_path / "1.sst", [(b"b", b"new"), (b"c", b"new")])
    merged = dict(merge_tables([old, new]))
    assert merged == {b"a": b"old", b"b": b"new", b"c": b"new"}


def test_merge_three_generations(tmp_path):
    t0 = make_table(tmp_path / "0.sst", [(b"k", b"v0")])
    t1 = make_table(tmp_path / "1.sst", [(b"k", b"v1")])
    t2 = make_table(tmp_path / "2.sst", [(b"k", b"v2")])
    assert dict(merge_tables([t0, t1, t2])) == {b"k": b"v2"}


def test_compact_drops_tombstones_at_bottom(tmp_path):
    t0 = make_table(tmp_path / "0.sst", [(b"a", b"1"), (b"b", b"2")])
    t1 = make_table(tmp_path / "1.sst", [(b"a", TOMBSTONE)])
    merged = compact([t0, t1], tmp_path / "out.sst", drop_tombstones=True)
    assert dict(merged.items()) == {b"b": b"2"}


def test_compact_keeps_tombstones_mid_level(tmp_path):
    t0 = make_table(tmp_path / "0.sst", [(b"a", b"1")])
    t1 = make_table(tmp_path / "1.sst", [(b"a", TOMBSTONE)])
    merged = compact([t0, t1], tmp_path / "out.sst", drop_tombstones=False)
    assert dict(merged.items()) == {b"a": TOMBSTONE}


def test_compact_preserves_order_and_size(tmp_path):
    left = make_table(
        tmp_path / "0.sst", [(f"k{i:02d}".encode(), b"L") for i in range(0, 40, 2)]
    )
    right = make_table(
        tmp_path / "1.sst", [(f"k{i:02d}".encode(), b"R") for i in range(1, 40, 2)]
    )
    merged = compact([left, right], tmp_path / "out.sst", drop_tombstones=True)
    keys = [k for k, _ in merged.items()]
    assert keys == sorted(keys)
    assert len(keys) == 40


def test_merge_empty_inputs(tmp_path):
    empty = make_table(tmp_path / "0.sst", [])
    assert list(merge_tables([empty])) == []
