"""Atomic write batches."""

import threading

import pytest

from repro.kvstore import LSMStore, MemoryStore, WriteBatch


def test_batch_builder_chaining():
    batch = WriteBatch().put("a", 1).delete("b").put("c", 3)
    assert len(batch) == 3
    assert bool(batch)
    batch.clear()
    assert not batch


@pytest.mark.parametrize("backend", ["lsm", "memory"])
def test_batch_applies_all_operations(backend, tmp_path):
    store = LSMStore(tmp_path) if backend == "lsm" else MemoryStore()
    store.put("stale", "old")
    batch = (
        WriteBatch()
        .put("layer/5/events", 12)
        .put("layer/5/clusters", 3)
        .delete("stale")
    )
    store.write_batch(batch)
    assert store.get("layer/5/events") == 12
    assert store.get("layer/5/clusters") == 3
    assert store.get("stale") is None
    store.close()


def test_batch_order_within_batch(tmp_path):
    with LSMStore(tmp_path) as store:
        batch = WriteBatch().put("k", 1).delete("k").put("k", 3)
        store.write_batch(batch)
        assert store.get("k") == 3


def test_batch_survives_restart(tmp_path):
    store = LSMStore(tmp_path)
    store.write_batch(WriteBatch().put("a", 1).put("b", 2))
    store._wal.close()  # crash before clean close
    store._closed = True
    recovered = LSMStore(tmp_path)
    assert recovered.get("a") == 1
    assert recovered.get("b") == 2
    recovered.close()


def test_batch_triggers_memtable_rotation(tmp_path):
    store = LSMStore(tmp_path, memtable_bytes=256)
    batch = WriteBatch()
    for i in range(100):
        batch.put(f"key-{i:03d}", "x" * 20)
    store.write_batch(batch)
    assert store.sstable_count >= 1
    assert store.get("key-050") == "x" * 20
    store.close()


def test_readers_never_see_partial_batch(tmp_path):
    """Concurrent readers observe either none or all of each batch."""
    store = LSMStore(tmp_path)
    store.write_batch(WriteBatch().put("x", 0).put("y", 0))
    stop = threading.Event()
    violations: list[tuple] = []

    def reader():
        while not stop.is_set():
            # scan() snapshots all levels under one lock acquisition, so
            # it must always observe x == y (each batch writes both)
            snapshot = dict(store.scan())
            x = snapshot.get(b"x")
            y = snapshot.get(b"y")
            if x != y:
                violations.append((x, y))

    thread = threading.Thread(target=reader)
    thread.start()
    for value in range(1, 200):
        store.write_batch(WriteBatch().put("x", value).put("y", value))
    stop.set()
    thread.join(timeout=10)
    store.close()
    assert violations == []
