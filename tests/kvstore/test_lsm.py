"""LSM store: the full read/write/recover lifecycle."""

import pytest

from repro.kvstore import LSMStore, StoreClosedError


@pytest.fixture()
def store(tmp_path):
    s = LSMStore(tmp_path, memtable_bytes=4096, compaction_threshold=3)
    yield s
    s.close()


def test_put_get_various_types(store):
    store.put("str", "value")
    store.put("int", 42)
    store.put("dict", {"nested": [1, 2, 3]})
    store.put("bytes", b"\x00\x01")
    assert store.get("str") == "value"
    assert store.get("int") == 42
    assert store.get("dict") == {"nested": [1, 2, 3]}
    assert store.get("bytes") == b"\x00\x01"


def test_get_default(store):
    assert store.get("missing") is None
    assert store.get("missing", "fallback") == "fallback"


def test_delete(store):
    store.put("k", 1)
    store.delete("k")
    assert store.get("k") is None
    store.delete("never-existed")  # idempotent


def test_delete_shadows_flushed_value(store):
    store.put("k", "old")
    store.flush()
    store.delete("k")
    assert store.get("k") is None
    store.flush()
    assert store.get("k") is None


def test_contains(store):
    store.put("here", 1)
    assert "here" in store
    assert "gone" not in store


def test_flush_then_read(store):
    for i in range(50):
        store.put(f"k{i:03d}", i)
    store.flush()
    assert store.sstable_count >= 1
    for i in range(50):
        assert store.get(f"k{i:03d}") == i


def test_automatic_memtable_rotation(tmp_path):
    store = LSMStore(tmp_path, memtable_bytes=512, compaction_threshold=100)
    for i in range(200):
        store.put(f"key-{i:04d}", "x" * 20)
    assert store.sstable_count > 1
    for i in range(200):
        assert store.get(f"key-{i:04d}") == "x" * 20
    store.close()


def test_compaction_bounds_table_count(tmp_path):
    store = LSMStore(tmp_path, memtable_bytes=256, compaction_threshold=3)
    for i in range(300):
        store.put(f"key-{i:04d}", i)
    assert store.sstable_count <= 4
    assert store.get("key-0123") == 123
    store.close()


def test_scan_merges_all_levels(store):
    store.put("a", 1)
    store.flush()
    store.put("b", 2)
    store.flush()
    store.put("c", 3)  # still in the memtable
    store.put("a", 10)  # overwrite in memtable shadows the sstable
    got = dict(store.scan())
    assert got == {b"a": 10, b"b": 2, b"c": 3}


def test_scan_range(store):
    for i in range(20):
        store.put(f"{i:02d}", i)
    store.flush()
    got = [k.decode() for k, _ in store.scan("05", "10")]
    assert got == ["05", "06", "07", "08", "09"]


def test_scan_excludes_deleted(store):
    store.put("a", 1)
    store.put("b", 2)
    store.flush()
    store.delete("a")
    assert dict(store.scan()) == {b"b": 2}


def test_recovery_from_wal(tmp_path):
    store = LSMStore(tmp_path)
    store.put("durable", "yes")
    store._wal.close()  # simulate crash: skip the clean close/flush
    store._closed = True

    recovered = LSMStore(tmp_path)
    assert recovered.get("durable") == "yes"
    recovered.close()


def test_reopen_after_clean_close(tmp_path):
    store = LSMStore(tmp_path)
    for i in range(30):
        store.put(f"k{i}", i)
    store.delete("k5")
    store.close()
    reopened = LSMStore(tmp_path)
    assert reopened.get("k7") == 7
    assert reopened.get("k5") is None
    reopened.close()


def test_operations_after_close_raise(tmp_path):
    store = LSMStore(tmp_path)
    store.close()
    with pytest.raises(StoreClosedError):
        store.put("k", 1)
    with pytest.raises(StoreClosedError):
        store.get("k")
    with pytest.raises(StoreClosedError):
        list(store.scan())


def test_forced_compact_single_table(store):
    store.put("x", 1)
    store.compact()
    assert store.sstable_count == 1
    assert store.get("x") == 1


def test_invalid_keys_rejected(store):
    from repro.kvstore import InvalidKeyError

    with pytest.raises(InvalidKeyError):
        store.put("", 1)
    with pytest.raises(InvalidKeyError):
        store.get(123)  # type: ignore[arg-type]


def test_context_manager(tmp_path):
    with LSMStore(tmp_path) as store:
        store.put("k", "v")
    with pytest.raises(StoreClosedError):
        store.get("k")
