"""Property-based tests: the LSM store behaves like a dict, always."""

import hypothesis.strategies as st
from hypothesis import HealthCheck, given, settings

from repro.kvstore import LSMStore, MemoryStore

keys = st.text(
    alphabet=st.characters(min_codepoint=33, max_codepoint=126), min_size=1, max_size=12
)
values = st.one_of(
    st.integers(min_value=-(2**31), max_value=2**31),
    st.text(max_size=30),
    st.binary(max_size=30),
    st.lists(st.integers(min_value=0, max_value=100), max_size=5),
)
operations = st.lists(
    st.one_of(
        st.tuples(st.just("put"), keys, values),
        st.tuples(st.just("delete"), keys, st.none()),
        st.tuples(st.just("flush"), st.none(), st.none()),
        st.tuples(st.just("compact"), st.none(), st.none()),
    ),
    max_size=60,
)


@given(ops=operations)
@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_lsm_store_matches_dict_model(tmp_path_factory, ops):
    tmp_path = tmp_path_factory.mktemp("lsm")
    model: dict[str, object] = {}
    with LSMStore(tmp_path, memtable_bytes=512, compaction_threshold=3) as store:
        for op, key, value in ops:
            if op == "put":
                store.put(key, value)
                model[key] = value
            elif op == "delete":
                store.delete(key)
                model.pop(key, None)
            elif op == "flush":
                store.flush()
            else:
                store.compact()
        for key, expected in model.items():
            assert store.get(key) == expected
        scanned = {k.decode("utf-8"): v for k, v in store.scan()}
        assert scanned == model


@given(ops=operations)
@settings(max_examples=40, deadline=None)
def test_memory_store_matches_dict_model(ops):
    model: dict[str, object] = {}
    store = MemoryStore()
    for op, key, value in ops:
        if op == "put":
            store.put(key, value)
            model[key] = value
        elif op == "delete":
            store.delete(key)
            model.pop(key, None)
        # flush/compact are no-ops for the memory backend
    for key, expected in model.items():
        assert store.get(key) == expected
    store.close()


@given(
    entries=st.dictionaries(keys, values, max_size=30),
    start=keys,
    end=keys,
)
@settings(max_examples=40, deadline=None)
def test_lsm_scan_range_matches_sorted_slice(tmp_path_factory, entries, start, end):
    tmp_path = tmp_path_factory.mktemp("scan")
    with LSMStore(tmp_path, memtable_bytes=256) as store:
        for key, value in entries.items():
            store.put(key, value)
        raw_start, raw_end = start.encode(), end.encode()
        got = [k for k, _ in store.scan(start, end)]
        expected = sorted(
            k.encode() for k in entries if raw_start <= k.encode() < raw_end
        )
        assert got == expected


@given(data=st.lists(st.tuples(st.binary(min_size=1, max_size=16), st.binary(max_size=32)), max_size=40))
@settings(max_examples=40, deadline=None)
def test_wal_replay_is_lossless(tmp_path_factory, data):
    from repro.kvstore.wal import WriteAheadLog

    path = tmp_path_factory.mktemp("wal") / "wal.log"
    wal = WriteAheadLog(path)
    for key, value in data:
        wal.append(key, value)
    wal.close()
    assert list(WriteAheadLog.replay(path)) == data
