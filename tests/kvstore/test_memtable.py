"""Skip-list memtable behaviour."""

import pytest

from repro.kvstore.memtable import TOMBSTONE, SkipListMemtable


def test_put_get_roundtrip():
    table = SkipListMemtable(seed=1)
    table.put(b"alpha", b"1")
    table.put(b"beta", b"2")
    assert table.get(b"alpha") == b"1"
    assert table.get(b"beta") == b"2"
    assert table.get(b"gamma") is None


def test_overwrite_keeps_single_entry():
    table = SkipListMemtable(seed=1)
    table.put(b"k", b"v1")
    table.put(b"k", b"v2")
    assert table.get(b"k") == b"v2"
    assert len(table) == 1


def test_items_sorted():
    table = SkipListMemtable(seed=3)
    keys = [f"k{i:03d}".encode() for i in range(100)]
    for key in reversed(keys):
        table.put(key, b"x")
    assert [k for k, _ in table.items()] == keys


def test_delete_inserts_tombstone():
    table = SkipListMemtable(seed=1)
    table.put(b"k", b"v")
    table.delete(b"k")
    assert table.get(b"k") == TOMBSTONE
    # tombstone flows out through iteration so a flush persists it
    assert dict(table.items())[b"k"] == TOMBSTONE


def test_range_items_half_open():
    table = SkipListMemtable(seed=2)
    for i in range(10):
        table.put(f"{i}".encode(), str(i).encode())
    got = [k for k, _ in table.range_items(b"3", b"7")]
    assert got == [b"3", b"4", b"5", b"6"]


def test_range_items_open_ends():
    table = SkipListMemtable(seed=2)
    for key in (b"a", b"b", b"c"):
        table.put(key, b"x")
    assert [k for k, _ in table.range_items(None, None)] == [b"a", b"b", b"c"]
    assert [k for k, _ in table.range_items(b"b", None)] == [b"b", b"c"]
    assert [k for k, _ in table.range_items(None, b"b")] == [b"a"]


def test_approximate_bytes_grows_and_tracks_overwrites():
    table = SkipListMemtable(seed=1)
    table.put(b"k", b"short")
    first = table.approximate_bytes
    table.put(b"k", b"a-much-longer-value-than-before")
    assert table.approximate_bytes > first


def test_empty_table():
    table = SkipListMemtable()
    assert len(table) == 0
    assert list(table.items()) == []
    assert table.get(b"anything") is None


@pytest.mark.parametrize("n", [1, 17, 256])
def test_size_counts_distinct_keys(n):
    table = SkipListMemtable(seed=5)
    for i in range(n):
        table.put(f"{i}".encode(), b"v")
    assert len(table) == n
