"""Fault tolerance & elasticity for the forecast pipeline.

Same acceptance bar as the Alg. 1 use case (see
``tests/recovery/test_crash_recovery.py``): a run killed after a
committed checkpoint, then recovered into a fresh pipeline, must close
the gap exactly — every (layer, region) forecast the oracle reported,
bit-identical summaries, no duplicates.  And an elastic deploy that
rescales the estimator mid-build must stay divergence-free against the
threaded oracle, which is what the estimator's ``reshard_state``
contract buys.
"""

from __future__ import annotations

import time

import pytest

from repro.am.scanpath import synthesize_thermal_build
from repro.core import DeployConfig, Strata
from repro.core.deploy import ElasticConfig, RecoveryConfig
from repro.kvstore.memory import MemoryStore
from repro.recovery import ChaosInjector, CheckpointCoordinator, RecoveryCoordinator
from repro.thermal import (
    ThermalPipelineConfig,
    build_forecast_pipeline,
    calibrate_thermal_job,
)

from .conftest import small_build_config

LAYERS = 10
REGIONS = 4


def signature(results) -> list[tuple]:
    """Exact-float per-result identity: any divergence fails equality."""
    return sorted(
        (
            t.job,
            t.layer,
            t.specimen,
            t.payload["forecast_mean"],
            t.payload["forecast_max"],
            t.payload["filtered_mean"],
            t.payload["innovation_rmse"],
            t.payload["realized_rmse"],
        )
        for t in results
    )


def _paced(records, delay):
    for record in records:
        time.sleep(delay)
        yield record


def _build_pipeline(strata, build, *, delay=0.0, checkpointable=False,
                    parallelism=1):
    config = ThermalPipelineConfig()
    config.parallelism = parallelism
    frames = _paced(build.records, delay) if delay else iter(build.records)
    plans = _paced(build.records, delay) if delay else iter(build.records)
    pipeline = build_forecast_pipeline(
        frames, plans, build.config, config,
        strata=strata, checkpointable=checkpointable,
    )
    calibrate_thermal_job(strata.kv, build, laser=False)
    return pipeline


@pytest.fixture(scope="module")
def recovery_build():
    return synthesize_thermal_build(
        small_build_config(job_id="thermal-recovery", layers=LAYERS)
    )


@pytest.fixture(scope="module")
def oracle_signature(recovery_build):
    strata = Strata(engine_mode="threaded")
    pipeline = _build_pipeline(strata, recovery_build)
    strata.deploy()
    sig = signature(pipeline.sink.results)
    assert len(sig) == LAYERS * REGIONS
    return sig


def test_crash_after_checkpoint_recovers_identically(
    recovery_build, oracle_signature
):
    ckpt_store = MemoryStore()

    # -- run 1: checkpoint, then die mid-build ------------------------------
    strata = Strata(engine_mode="threaded")
    pipeline = _build_pipeline(
        strata, recovery_build, delay=0.35, checkpointable=True
    )
    coordinator = CheckpointCoordinator(ckpt_store, retain=3)
    strata.start(DeployConfig(recovery=RecoveryConfig(checkpointer=coordinator)))
    epochs = 0
    deadline = time.monotonic() + 60
    while epochs < 2 and time.monotonic() < deadline:
        coordinator.trigger(timeout=15.0)
        epochs += 1
    assert epochs >= 2, "need committed checkpoints before the kill"
    chaos = ChaosInjector(
        strata._engine, lambda: len(pipeline.sink.results) >= 8, timeout=60.0
    ).start()
    assert chaos.join(timeout=90.0), "chaos kill did not fire"
    partial = signature(pipeline.sink.results)
    assert len(partial) < len(oracle_signature), "crash came too late to matter"

    # -- run 2: fresh pipeline, recover from the newest checkpoint ----------
    strata2 = Strata(engine_mode="threaded")
    pipeline2 = _build_pipeline(strata2, recovery_build, checkpointable=True)
    recovery = RecoveryCoordinator(ckpt_store)
    strata2.deploy(DeployConfig(recovery=RecoveryConfig(recover_from=recovery)))
    assert recovery.report is not None
    assert recovery.report.epoch == max(coordinator.completed_epochs)
    assert recovery.report.sources_restored  # both collectors rewound

    recovered = signature(pipeline2.sink.results)
    # the union must close the gap exactly: per-cell Kalman state restored
    # bit-for-bit, replays absorbed by the DedupSink
    assert sorted(set(partial) | set(recovered)) == oracle_signature
    assert len(recovered) == len(set(recovered)), "duplicate results delivered"


def test_elastic_rescale_matches_threaded_oracle(
    recovery_build, oracle_signature
):
    strata = Strata(engine_mode="threaded", connector_mode="pubsub")
    pipeline = _build_pipeline(
        strata, recovery_build, delay=0.05, parallelism=1
    )
    strata.deploy(
        DeployConfig(
            plan=True,
            elastic=ElasticConfig(
                max_parallelism=4, tick_s=0.05, cooldown_s=0.0
            ),
        )
    )
    assert signature(pipeline.sink.results) == oracle_signature
