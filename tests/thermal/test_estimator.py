"""Operator contract of the thermal estimator.

Covers the four promises the forecast pipeline's correctness rests on:
the scalar ``__call__`` and the columnar ``process_block`` are
bit-identical; ``snapshot_state``/``restore_state`` round-trip exactly
(and *merge* on a shared replica function); ``reshard_state`` splits the
per-region filters along the routing key; and predictive QoS alerts fire
through the shared watchdog for the layer about to be affected, deduped
per (job, layer, source).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.kvstore.memory import MemoryStore
from repro.obs.watchdog import PREDICTIVE_CATEGORY, QoSWatchdog
from repro.spe.columnar import ColumnarBlock
from repro.spe.tuples import StreamTuple
from repro.thermal import (
    EstimateThermalState,
    PartitionThermalRegions,
    store_thermal_model,
)

PARTITION = PartitionThermalRegions(2, 2)
SUMMARY_KEYS = (
    "forecast_mean",
    "forecast_max",
    "filtered_mean",
    "innovation_rmse",
    "overheat_cells",
    "dropped_cells",
)


def _fused_tuple(record) -> StreamTuple:
    return StreamTuple(
        tau=float(record.layer),
        job=record.job_id,
        layer=record.layer,
        payload={
            "temp_frame": record.measured_temp_cells,
            "energy_plan": record.energy_cells,
            "energy_plan_next": record.energy_next_cells,
        },
    )


def _region_layers(build) -> list[list[StreamTuple]]:
    """Per layer, the four region tuples the partition stage would emit."""
    return [PARTITION(_fused_tuple(r)) for r in build.records]


def _store_for(build) -> MemoryStore:
    store = MemoryStore()
    store_thermal_model(store, build.config.job_id, build.config.thermal)
    return store


def _estimator(build, **kwargs) -> EstimateThermalState:
    return EstimateThermalState(_store_for(build), **kwargs)


class TestScalarBlockParity:
    def test_call_and_process_block_are_bit_identical(self, small_build):
        scalar_fn = _estimator(small_build)
        block_fn = _estimator(small_build)
        for regions in _region_layers(small_build):
            scalar_out = [scalar_fn(t) for t in regions]
            block_out = block_fn.process_block(ColumnarBlock.from_tuples(regions))
            assert len(block_out) == len(scalar_out)
            rows = block_out.to_tuples()
            for s, b in zip(scalar_out, rows):
                assert s.specimen == b.specimen and s.layer == b.layer
                np.testing.assert_array_equal(
                    s.payload["forecast"], np.asarray(b.payload["forecast"])
                )
                for key in SUMMARY_KEYS:
                    assert s.payload[key] == b.payload[key]  # bit-identical
        assert scalar_fn.frames_processed == block_fn.frames_processed
        assert scalar_fn.cells_filtered == block_fn.cells_filtered

    def test_dropout_cells_are_counted_and_coasted(self):
        from tests.thermal.conftest import small_build_config
        from repro.am.scanpath import synthesize_thermal_build

        build = synthesize_thermal_build(
            small_build_config(layers=3, dropout_rate=0.15)
        )
        fn = _estimator(build)
        dropped = 0
        for regions in _region_layers(build):
            for t in regions:
                out = fn(t)
                assert out.payload["dropped_cells"] == int(
                    np.isnan(t.payload["temp_frame"]).sum()
                )
                dropped += out.payload["dropped_cells"]
                assert not np.isnan(out.payload["forecast"]).any()
        assert dropped > 0


class TestSnapshotRestore:
    def test_round_trip_resumes_identically(self, small_build):
        layers = _region_layers(small_build)
        oracle = _estimator(small_build)
        for regions in layers:
            for t in regions:
                oracle(t)

        first = _estimator(small_build)
        for regions in layers[:4]:
            for t in regions:
                first(t)
        resumed = _estimator(small_build)
        resumed.restore_state(first.snapshot_state())
        assert resumed.frames_processed == first.frames_processed

        check = _estimator(small_build)
        for regions in layers[:4]:
            for t in regions:
                check(t)
        for regions in layers[4:]:
            for t in regions:
                expected = check(t)
                actual = resumed(t)
                np.testing.assert_array_equal(
                    expected.payload["forecast"], actual.payload["forecast"]
                )
                for key in SUMMARY_KEYS:
                    assert expected.payload[key] == actual.payload[key]
        snap_a = oracle.snapshot_state()
        snap_b = resumed.snapshot_state()
        assert snap_a["frames_processed"] == snap_b["frames_processed"]
        for key, group in snap_a["groups"].items():
            np.testing.assert_array_equal(group["state"], snap_b["groups"][key]["state"])
            np.testing.assert_array_equal(group["cov"], snap_b["groups"][key]["cov"])

    def test_restore_merges_shard_states(self, small_build):
        """Replicas share one fn: sequential restores must union, not clobber."""
        layers = _region_layers(small_build)
        shard_a = _estimator(small_build)
        shard_b = _estimator(small_build)
        for regions in layers:
            for t in regions:
                (shard_a if t.specimen.endswith("-0") else shard_b)(t)

        merged = _estimator(small_build)
        merged.restore_state(shard_a.snapshot_state())
        merged.restore_state(shard_b.snapshot_state())
        snap = merged.snapshot_state()
        assert set(snap["groups"]) == {
            (small_build.config.job_id, f"region-{i}-{j}")
            for i in range(2)
            for j in range(2)
        }
        # counters are whole-group totals -> max of the shards, not the sum
        assert merged.frames_processed == max(
            shard_a.frames_processed, shard_b.frames_processed
        )


class TestReshard:
    def test_split_follows_route_and_reunites(self, small_build):
        fn = _estimator(small_build)
        for regions in _region_layers(small_build):
            for t in regions:
                fn(t)
        snap = fn.snapshot_state()

        def route(key):
            return 0 if key[1].endswith("-0") else 1

        shards = fn.reshard_state([snap], 2, route)
        assert len(shards) == 2
        for i, shard in enumerate(shards):
            assert all(route(key) == i for key in shard["groups"])
        assert shards[0]["frames_processed"] == fn.frames_processed
        assert shards[1]["frames_processed"] == 0

        reunited = _estimator(small_build)
        for shard in shards:
            reunited.restore_state(shard)
        snap2 = reunited.snapshot_state()
        assert set(snap2["groups"]) == set(snap["groups"])
        for key, group in snap["groups"].items():
            np.testing.assert_array_equal(
                group["state"], snap2["groups"][key]["state"]
            )
            np.testing.assert_array_equal(group["cov"], snap2["groups"][key]["cov"])

    def test_reshard_skips_missing_shard_states(self, small_build):
        fn = _estimator(small_build)
        for t in _region_layers(small_build)[0]:
            fn(t)
        shards = fn.reshard_state(
            [fn.snapshot_state(), None], 1, lambda key: 0
        )
        assert len(shards) == 1
        assert set(shards[0]["groups"]) == set(fn.snapshot_state()["groups"])


class TestPredictiveAlerts:
    def test_alert_targets_next_layer_and_dedups(self, small_build):
        dog = QoSWatchdog()
        fn = _estimator(
            small_build, overheat_threshold=0.0, watchdog=dog, lead_time_s=3.0
        )
        regions = _region_layers(small_build)[0]
        t = regions[0]
        fn(t)
        alerts = dog.predictive_alerts()
        assert len(alerts) == 1
        alert = alerts[0]
        # the forecast is for the layer about to print: t.layer + 1
        assert alert.layer == t.layer + 1
        assert alert.category == PREDICTIVE_CATEGORY
        assert alert.specimen == t.specimen
        assert alert.lead_time_s == 3.0
        assert alert.latency_s == 0.0
        assert alert.threshold == 0.0
        assert alert.predicted_value > 0.0
        assert "predictive" in alert.format()

        # same (job, layer, source) again -> counted, but no second alert
        fresh = _estimator(
            small_build, overheat_threshold=0.0, watchdog=dog, lead_time_s=3.0
        )
        fresh(t)
        assert len(dog.predictive_alerts()) == 1
        assert dog.predictive_events == 2

    def test_no_alert_without_threshold(self, small_build):
        dog = QoSWatchdog()
        fn = _estimator(small_build, watchdog=dog)
        for t in _region_layers(small_build)[0]:
            fn(t)
        assert dog.predictive_alerts() == []
        assert dog.predictive_events == 0

    def test_cool_forecast_stays_quiet(self, small_build):
        dog = QoSWatchdog()
        fn = _estimator(small_build, overheat_threshold=1e6, watchdog=dog)
        for t in _region_layers(small_build)[0]:
            fn(t)
        assert dog.predictive_alerts() == []


class TestPartition:
    def test_regions_tile_the_grid(self, small_build):
        record = small_build.records[0]
        regions = PARTITION(_fused_tuple(record))
        assert [t.specimen for t in regions] == [
            f"region-{i}-{j}" for i in range(2) for j in range(2)
        ]
        reassembled = np.full_like(record.measured_temp_cells, np.nan)
        for t in regions:
            (r0, r1), (c0, c1) = PARTITION.region_bounds(
                int(t.specimen.split("-")[1]),
                int(t.specimen.split("-")[2]),
                record.measured_temp_cells.shape,
            )
            reassembled[r0:r1, c0:c1] = t.payload["temp_frame"]
        np.testing.assert_array_equal(
            reassembled[~np.isnan(record.measured_temp_cells)],
            record.measured_temp_cells[~np.isnan(record.measured_temp_cells)],
        )

    def test_rejects_degenerate_grid(self):
        with pytest.raises(ValueError):
            PartitionThermalRegions(0, 2)
