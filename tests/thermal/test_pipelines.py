"""End-to-end thermal workloads: forecast + reconstruction pipelines.

Deploys both pipelines on a threaded Strata and checks the contract the
benchmarks and examples rely on: every layer yields one result per
region (forecast) or one per plate (reconstruction), the plan compiler
picks the vectorized mode for the estimator/feature chains, scalar and
vectorized plans emit identical results, the power spike raises
predictive QoS alerts ahead of the breach, and the fleet runner treats
both workloads as deterministic first-class kinds.
"""

from __future__ import annotations

import pytest

from repro.core import Strata
from repro.obs.watchdog import PREDICTIVE_CATEGORY, QoSWatchdog
from repro.spe import PlanConfig
from repro.thermal import (
    ThermalPipelineConfig,
    build_forecast_pipeline,
    build_reconstruction_pipeline,
    calibrate_thermal_job,
    resolve_overheat_threshold,
)

from .conftest import small_build_config

REGIONS = 4


def _run_forecast(build, *, watchdog=None, plan_config=None, threshold=None):
    config = ThermalPipelineConfig()
    config.overheat_threshold = threshold
    strata = Strata(engine_mode="threaded")
    pipeline = build_forecast_pipeline(
        iter(build.records),
        iter(build.records),
        build.config,
        config,
        strata=strata,
        watchdog=watchdog,
    )
    calibrate_thermal_job(strata.kv, build, laser=False)
    from repro.core import DeployConfig

    strata.deploy(DeployConfig(plan=plan_config) if plan_config else None)
    return pipeline


def _forecast_keys(results):
    return sorted(
        (
            t.job,
            t.layer,
            t.specimen,
            t.payload["forecast_mean"],
            t.payload["forecast_max"],
            t.payload["filtered_mean"],
            t.payload["innovation_rmse"],
            t.payload["realized_rmse"],
        )
        for t in results
    )


class TestForecastPipeline:
    def test_one_result_per_layer_and_region(self, small_build):
        pipeline = _run_forecast(small_build)
        results = pipeline.sink.results
        assert len(results) == small_build.config.layers * REGIONS
        layers = {t.layer for t in results}
        assert layers == set(range(small_build.config.layers))
        for t in results:
            payload = t.payload
            assert payload["forecast"].shape == (8, 8)
            assert payload["dropped_cells"] == 0  # no dropout in this build
            if t.layer == 0:
                assert payload["realized_rmse"] == -1.0  # no prior forecast
            else:
                assert payload["realized_rmse"] >= 0.0

    def test_forecast_beats_sensor_noise(self, small_build):
        """One-layer-ahead forecasts track the measurements within noise."""
        pipeline = _run_forecast(small_build)
        realized = [
            t.payload["realized_rmse"]
            for t in pipeline.sink.results
            if t.payload["realized_rmse"] >= 0
        ]
        sensor_std = small_build.config.thermal.sensor_var**0.5
        assert sum(realized) / len(realized) < 2.0 * sensor_std

    def test_estimator_chain_compiles_vectorized(self, small_build):
        pipeline = _run_forecast(small_build)
        explain = str(pipeline.strata.explain())
        assert "mode=vectorized" in explain
        assert "detect:forecast" in explain

    def test_scalar_and_vectorized_plans_are_identical(self, small_build):
        scalar = _run_forecast(small_build, plan_config=PlanConfig(vectorize=False))
        vectorized = _run_forecast(
            small_build, plan_config=PlanConfig(vectorize=True)
        )
        assert "mode=vectorized" not in str(
            scalar.strata.explain(PlanConfig(vectorize=False))
        )
        assert _forecast_keys(scalar.sink.results) == _forecast_keys(
            vectorized.sink.results
        )


class TestPredictiveAlerts:
    def test_spike_raises_alerts_before_the_breach(self, spike_build):
        dog = QoSWatchdog()
        threshold = resolve_overheat_threshold(
            spike_build, ThermalPipelineConfig()
        )
        pipeline = _run_forecast(spike_build, watchdog=dog, threshold=threshold)
        assert len(pipeline.sink.results) == spike_build.config.layers * REGIONS

        alerts = dog.predictive_alerts()
        assert alerts, "the seeded power spike must raise predictive alerts"
        spike_start, spike_end = spike_build.config.spike_layers
        for alert in alerts:
            assert alert.category == PREDICTIVE_CATEGORY
            assert alert.lead_time_s == ThermalPipelineConfig().lead_time_s
            assert alert.predicted_value > alert.threshold == threshold
            # alerts land at/after the first spiked layer, and the filter's
            # thermal memory decays within a few layers after the spike ends
            assert spike_start <= alert.layer <= spike_end + 2
        # the first spiked layer is forecast from the previous layer's
        # plan -- the alert arrives before any spiked heat is deposited
        assert min(alert.layer for alert in alerts) == spike_start

    def test_quiet_without_threshold(self, spike_build):
        dog = QoSWatchdog()
        _run_forecast(spike_build, watchdog=dog, threshold=None)
        assert dog.predictive_alerts() == []


class TestReconstructionPipeline:
    @pytest.fixture(scope="class")
    def pipeline(self):
        from repro.am.scanpath import synthesize_thermal_build

        build = synthesize_thermal_build(
            small_build_config(job_id="reconstruct-test", drift_pct=0.03)
        )
        strata = Strata(engine_mode="threaded")
        pipeline = build_reconstruction_pipeline(
            iter(build.records), build.config, strata=strata
        )
        calibrate_thermal_job(strata.kv, build)
        strata.deploy()
        pipeline.build = build
        return pipeline

    def test_one_estimate_per_layer(self, pipeline):
        results = pipeline.sink.results
        assert {t.layer for t in results} == set(
            range(pipeline.build.config.layers)
        )
        for t in results:
            assert t.payload["power_w_hat"] > 0
            assert t.payload["speed_mm_s_hat"] > 0

    def test_recovers_hidden_actual_parameters(self, pipeline):
        actual = {
            r.layer: (r.actual_power_w, r.actual_speed_mm_s)
            for r in pipeline.build.records
        }
        p_errs, v_errs = [], []
        for t in pipeline.sink.results:
            power, speed = actual[t.layer]
            p_errs.append(abs(t.payload["power_w_hat"] - power) / power)
            v_errs.append(abs(t.payload["speed_mm_s_hat"] - speed) / speed)
        assert sum(p_errs) / len(p_errs) < 0.08
        assert sum(v_errs) / len(v_errs) < 0.12

    def test_feature_chain_compiles_vectorized(self, pipeline):
        assert "mode=vectorized" in str(pipeline.strata.explain())


class TestFleetWorkloads:
    def test_thermal_kinds_are_registered(self):
        from repro.fleet.runner import WORKLOAD_KINDS, resolve_workload

        assert "forecast" in WORKLOAD_KINDS and "reconstruct" in WORKLOAD_KINDS
        with pytest.raises(ValueError):
            resolve_workload({"kind": "annealing"})

    @pytest.mark.parametrize("kind", ["forecast", "reconstruct"])
    def test_run_standalone_is_deterministic(self, kind):
        from repro.fleet.runner import run_standalone

        spec = {
            "kind": kind,
            "name": f"{kind}-oracle",
            "layers": 4,
            "image_px": 48,
            "window": 4,
            "seed": 7,
        }
        first = run_standalone(dict(spec))
        second = run_standalone(dict(spec))
        assert first and sorted(map(tuple, first)) == sorted(map(tuple, second))
