"""Shared fixtures: a small synthetic thermal build (16x16 cell grid)."""

import pytest

from repro.am import Rect
from repro.am.scanpath import ThermalBuildConfig, synthesize_thermal_build

#: 24 mm plate, 1.5 mm cells -> 16x16 grid, 48x48 px melt-pool frames;
#: small enough that the scalar per-cell path stays fast in tests
SMALL_REGION_MM = 24.0


def small_build_config(**overrides) -> ThermalBuildConfig:
    s = SMALL_REGION_MM / 60.0
    defaults = dict(
        job_id="thermal-test",
        layers=8,
        region_mm=SMALL_REGION_MM,
        parts=(
            Rect(5.0 * s, 5.0 * s, 27.0 * s, 55.0 * s),
            Rect(33.0 * s, 5.0 * s, 55.0 * s, 55.0 * s),
        ),
        seed=11,
    )
    defaults.update(overrides)
    return ThermalBuildConfig(**defaults)


@pytest.fixture(scope="module")
def small_build():
    return synthesize_thermal_build(small_build_config())


@pytest.fixture(scope="module")
def spike_build():
    """A build whose scan schedule hides a power spike at layers 5-6."""
    return synthesize_thermal_build(
        small_build_config(layers=10, spike_layers=(5, 6), dropout_rate=0.02)
    )
