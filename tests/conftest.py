"""Shared fixtures: small deterministic workloads and stores."""

from __future__ import annotations

import pytest

from repro.am import BuildDataset, OTImageRenderer, make_job
from repro.kvstore import MemoryStore

# Small-but-real geometry: full 12-specimen plate at a coarse sensor
# resolution keeps a layer render around a millisecond.
TEST_IMAGE_PX = 250


@pytest.fixture(scope="session")
def test_job():
    """The paper's evaluation job, deterministic seed."""
    return make_job("JOB-TEST", seed=7)


@pytest.fixture(scope="session")
def clean_job():
    """A defect-free sibling job used for calibration."""
    return make_job("JOB-REF", seed=1, defect_rate_per_stack=0.0)


@pytest.fixture(scope="session")
def renderer():
    return OTImageRenderer(image_px=TEST_IMAGE_PX, seed=7)


@pytest.fixture(scope="session")
def layer_records(test_job, renderer):
    """First 8 layers of the defective job (cached, session-wide)."""
    dataset = BuildDataset(test_job, renderer, with_truth=True, cache=True)
    return [dataset.layer_record(i) for i in range(8)]


@pytest.fixture(scope="session")
def reference_images(clean_job, renderer):
    dataset = BuildDataset(clean_job, renderer)
    return [dataset.layer_record(i).image for i in range(3)]


@pytest.fixture()
def kv_store():
    store = MemoryStore()
    yield store
    store.close()
