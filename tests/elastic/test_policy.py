"""Scale policy and ElasticConfig: hysteresis streaks, bounds, validation."""

import pytest

from repro.elastic import ElasticConfig
from repro.elastic.policy import GroupSignals, HysteresisPolicy, ScalePolicy


def overloaded(parallelism=1):
    return GroupSignals(queue_fill=0.9, busy_fraction=0.95, parallelism=parallelism)


def idle(parallelism=2):
    return GroupSignals(queue_fill=0.0, busy_fraction=0.0, parallelism=parallelism)


def steady(parallelism=2):
    return GroupSignals(queue_fill=0.3, busy_fraction=0.6, parallelism=parallelism)


class TestHysteresisPolicy:
    def test_up_needs_consecutive_overloaded_ticks(self):
        policy = HysteresisPolicy(up_ticks=2, qos_boost=False)
        assert policy.decide("g", overloaded(), 1) == 1
        assert policy.decide("g", overloaded(), 1) == 2  # doubling

    def test_steady_tick_resets_up_streak(self):
        policy = HysteresisPolicy(up_ticks=2, qos_boost=False)
        assert policy.decide("g", overloaded(), 1) == 1
        assert policy.decide("g", steady(1), 1) == 1
        assert policy.decide("g", overloaded(), 1) == 1  # streak restarted

    def test_qos_violation_scales_up_immediately(self):
        policy = HysteresisPolicy(up_ticks=4, qos_boost=True)
        signals = GroupSignals(qos_violation_delta=1, parallelism=2)
        assert policy.decide("g", signals, 2) == 4

    def test_down_needs_long_idle_streak(self):
        policy = HysteresisPolicy(down_ticks=3)
        assert policy.decide("g", idle(), 2) == 2
        assert policy.decide("g", idle(), 2) == 2
        assert policy.decide("g", idle(), 2) == 1  # one replica at a time

    def test_no_down_below_one(self):
        policy = HysteresisPolicy(down_ticks=1)
        assert policy.decide("g", idle(1), 1) == 1

    def test_streaks_are_per_group(self):
        policy = HysteresisPolicy(up_ticks=2, qos_boost=False)
        assert policy.decide("a", overloaded(), 1) == 1
        assert policy.decide("b", overloaded(), 1) == 1
        assert policy.decide("a", overloaded(), 1) == 2

    def test_satisfies_scale_policy_protocol(self):
        assert isinstance(HysteresisPolicy(), ScalePolicy)


class TestElasticConfig:
    def test_defaults_are_valid(self):
        config = ElasticConfig()
        assert config.start_parallelism == config.min_parallelism

    def test_initial_parallelism_wins_when_set(self):
        config = ElasticConfig(min_parallelism=1, max_parallelism=8,
                               initial_parallelism=2)
        assert config.start_parallelism == 2

    @pytest.mark.parametrize("kwargs", [
        {"min_parallelism": 0},
        {"min_parallelism": 4, "max_parallelism": 2},
        {"initial_parallelism": 9},
        {"tick_s": 0.0},
        {"cooldown_s": -1.0},
        {"batch_min": 0},
        {"batch_min": 8, "batch_max": 4},
    ])
    def test_invalid_knobs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            ElasticConfig(**kwargs)

    def test_resolve_normalizes_shorthands(self):
        assert ElasticConfig.resolve(None) is None
        assert ElasticConfig.resolve(False) is None
        assert ElasticConfig.resolve(True) == ElasticConfig()
        config = ElasticConfig(max_parallelism=8)
        assert ElasticConfig.resolve(config) is config
        with pytest.raises(TypeError):
            ElasticConfig.resolve(3)

    def test_describe_mentions_bounds(self):
        text = ElasticConfig(min_parallelism=2, max_parallelism=6).describe()
        assert "2..6" in text
