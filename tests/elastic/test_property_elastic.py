"""Property: any mid-stream rescale sequence is output-invisible.

The sequence of replica counts a deployment walks through must never
change *what* arrives at the sink — only how it got computed. Hypothesis
drives random rescale walks (up, down, repeats, no-ops) against the same
paced pipeline and compares the sink multiset with a static
parallelism=1 run of identical records.
"""

import time
from collections import Counter

import hypothesis.strategies as st
from hypothesis import HealthCheck, given, settings

from repro.core import DeployConfig, Strata
from repro.elastic import ElasticConfig
from repro.spe import CollectingSink
from repro.spe.source import Source
from repro.spe.tuples import StreamTuple

N_RECORDS = 160
SPECIMENS = 7

MANUAL = ElasticConfig(max_parallelism=4, tick_s=60.0, cooldown_s=0.0)


class SlowSource(Source):
    def __init__(self, name, records, delay):
        super().__init__(name)
        self._records = list(records)
        self._delay = delay

    def __iter__(self):
        for t in self._records:
            if self._delay:
                time.sleep(self._delay)
            t.ingest_time = time.monotonic()
            yield t


def records():
    return [
        StreamTuple(tau=float(i), job="j", layer=i // 8, payload={"v": i})
        for i in range(N_RECORDS)
    ]


def assign(t):
    return [t.derive(specimen=f"s{t.payload['v'] % SPECIMENS}", portion="p0")]


def mark(t):
    return [t.derive(payload={**t.payload, "c": t.payload["v"] + 1000})]


def build(strata, delay):
    sink = CollectingSink("out")
    (
        strata.add_source(SlowSource("src", records(), delay), "raw")
        .partition("parts", assign)
        .partition("cells", mark)
        .deliver(sink)
    )
    return sink


def payload_counts(sink):
    return Counter(tuple(sorted(t.payload.items())) for t in sink.results)


def static_baseline():
    strata = Strata(engine_mode="threaded")
    sink = build(strata, delay=0.0)
    strata.deploy()
    return payload_counts(sink)


_BASELINE = None


def baseline():
    global _BASELINE
    if _BASELINE is None:
        _BASELINE = static_baseline()
    return _BASELINE


@given(walk=st.lists(st.integers(min_value=1, max_value=4), min_size=1, max_size=3))
@settings(
    max_examples=6,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_random_rescale_walk_is_output_invisible(walk):
    strata = Strata(engine_mode="threaded")
    sink = build(strata, delay=0.0015)
    strata.start(DeployConfig(plan=True, elastic=MANUAL))
    controller = strata.elastic
    group = controller.groups[0]
    for target in walk:
        # a no-op target (== current) must be refused, a real one applied
        # unless the stream drained first — either way the output holds
        controller.rescale(group, target)
    strata.wait(timeout=120)
    assert payload_counts(sink) == baseline()
