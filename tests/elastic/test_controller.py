"""Live rescaling: discovery, drain/re-shard/splice equivalence, interplay
with checkpoint epochs, and the structured event/metric surface."""

import threading
import time
from collections import Counter

import pytest

from repro.core import DeployConfig, RecoveryConfig, Strata
from repro.elastic import ElasticConfig, discover_groups
from repro.kvstore.memory import MemoryStore
from repro.recovery import CheckpointCoordinator
from repro.spe import CollectingSink, ListSource, PlanError, Query
from repro.spe.plan import replicate_keyed_stages
from repro.spe.source import Source
from repro.spe.tuples import StreamTuple

N_RECORDS = 240
SPECIMENS = 5

#: manual-rescale config: huge tick so the control loop never interferes,
#: zero cooldown so back-to-back test rescales are allowed.
MANUAL = ElasticConfig(max_parallelism=4, tick_s=60.0, cooldown_s=0.0)


class SlowSource(Source):
    """Paced replay: keeps the stream alive while a rescale drains."""

    def __init__(self, name, records, delay=0.002):
        super().__init__(name)
        self._records = list(records)
        self._delay = delay

    def __iter__(self):
        for t in self._records:
            if self._delay:
                time.sleep(self._delay)
            t.ingest_time = time.monotonic()
            yield t


def records(n=N_RECORDS):
    return [
        StreamTuple(tau=float(i), job="j", layer=i // 8, payload={"v": i})
        for i in range(n)
    ]


def assign(t):
    return [t.derive(specimen=f"s{t.payload['v'] % SPECIMENS}", portion="p0")]


def mark(t):
    return [t.derive(payload={**t.payload, "c": t.payload["v"] * 2})]


def build(strata, recs, delay=0.002, checkpointable=False):
    """source -> partition(assign) -> partition(mark) -> sink.

    The second partition is downstream of the first keyed stream, so it is
    the replicable stage the elastic controller manages.
    """
    sink = CollectingSink("out")
    (
        strata.add_source(
            SlowSource("src", recs, delay), "raw", checkpointable=checkpointable
        )
        .partition("parts", assign)
        .partition("cells", mark)
        .deliver(sink)
    )
    return sink


def payload_counts(sink):
    return Counter(tuple(sorted(t.payload.items())) for t in sink.results)


@pytest.fixture(scope="module")
def baseline():
    strata = Strata(engine_mode="threaded")
    sink = build(strata, records(), delay=0.0)
    strata.deploy()
    return payload_counts(sink)


# -- discovery and validation ------------------------------------------------


def test_discover_groups_empty_on_unreplicated_plan():
    strata = Strata(engine_mode="threaded")
    build(strata, records(8), delay=0.0)
    assert discover_groups(strata.query.build()) == []


def test_elastic_without_groups_raises_plan_error():
    strata = Strata(engine_mode="threaded")
    sink = CollectingSink("out")
    # source -> deliver: nothing keyed, nothing replicable
    strata.add_source(ListSource("src", records(4)), "raw").deliver(sink)
    with pytest.raises(PlanError, match="no keyed-replicated operator group"):
        strata.start(DeployConfig(plan=True, elastic=MANUAL))
    assert not strata.running()


def test_keyless_replicable_head_raises_plan_error():
    from repro.core.operators import PartitionOperator

    q = Query()
    q.add_source("src", ListSource("src", records(4)))
    q.add_operator("op", lambda: PartitionOperator("op"), "src", replicable=True)
    q.add_sink("out", CollectingSink(), "op")
    with pytest.raises(PlanError, match="declares no key"):
        replicate_keyed_stages(q.build(), 2)


# -- live rescale equivalence ------------------------------------------------


def test_rescale_up_preserves_output(baseline):
    strata = Strata(engine_mode="threaded")
    sink = build(strata, records())
    strata.start(DeployConfig(plan=True, elastic=MANUAL))
    controller = strata.elastic
    assert controller is not None and len(controller.groups) == 1
    group = controller.groups[0]
    assert group.parallelism == 1
    assert controller.rescale(group, 3)
    assert group.parallelism == 3
    strata.wait(timeout=120)
    assert payload_counts(sink) == baseline
    assert controller.summary()["rescales_up"] == 1


def test_rescale_up_then_down_preserves_output(baseline):
    strata = Strata(engine_mode="threaded")
    sink = build(strata, records())
    strata.start(DeployConfig(plan=True, elastic=MANUAL))
    controller = strata.elastic
    group = controller.groups[0]
    assert controller.rescale(group, 4)
    assert controller.rescale(group, 2)
    strata.wait(timeout=120)
    assert payload_counts(sink) == baseline
    summary = controller.summary()
    assert summary["rescales_up"] == 1 and summary["rescales_down"] == 1
    assert summary["groups"] == {group.name: 2}
    kinds = [e["kind"] for e in summary["events"]]
    assert kinds.count("rescale") == 2


def test_rescale_after_end_of_stream_aborts_cleanly():
    strata = Strata(engine_mode="threaded")
    sink = build(strata, records(24), delay=0.0)
    strata.start(DeployConfig(plan=True, elastic=MANUAL))
    controller = strata.elastic
    group = controller.groups[0]
    strata.wait(timeout=60)  # the stream is done; nothing left to drain
    assert not controller.rescale(group, 3)
    assert group.parallelism == 1
    assert len(sink.results) == 24


def test_rescale_to_same_parallelism_is_a_no_op():
    strata = Strata(engine_mode="threaded")
    build(strata, records(24), delay=0.0)
    strata.start(DeployConfig(plan=True, elastic=MANUAL))
    controller = strata.elastic
    group = controller.groups[0]
    assert not controller.rescale(group, group.parallelism)
    strata.wait(timeout=60)


# -- interplay with checkpointing --------------------------------------------


def test_rescale_concurrent_with_checkpoint_epoch(baseline):
    coordinator = CheckpointCoordinator(MemoryStore())
    strata = Strata(engine_mode="threaded")
    sink = build(strata, records(), checkpointable=True)
    strata.start(
        DeployConfig(
            plan=True, elastic=MANUAL,
            recovery=RecoveryConfig(checkpointer=coordinator),
        )
    )
    controller = strata.elastic
    group = controller.groups[0]
    epochs = []

    def checkpoint():
        epochs.append(coordinator.trigger(timeout=60.0))

    worker = threading.Thread(target=checkpoint)
    worker.start()
    controller.rescale(group, 3)
    worker.join(timeout=90)
    assert not worker.is_alive()
    strata.wait(timeout=120)
    assert payload_counts(sink) == baseline
    # the checkpoint epoch committed despite the group being swapped out
    # mid-flight: the coordinator was re-bound to the replacement nodes
    assert coordinator.completed_epochs


# -- observability surface ---------------------------------------------------


def test_rescale_exports_metrics_and_events(baseline):
    strata = Strata(engine_mode="threaded", obs=True)
    sink = build(strata, records())
    strata.start(DeployConfig(plan=True, elastic=MANUAL))
    controller = strata.elastic
    group = controller.groups[0]
    assert controller.rescale(group, 2)
    snap = strata.obs.snapshot()
    by_name = {}
    for sample in snap.samples:
        by_name.setdefault(sample.name, []).append(sample)
    assert by_name["elastic_parallelism"][0].value == 2.0
    assert sum(s.value for s in by_name["elastic_rescales_total"]) == 1.0
    assert by_name["elastic_last_rescale_seconds"][0].value > 0.0
    strata.wait(timeout=120)
    assert payload_counts(sink) == baseline
    event = controller.events[-1]
    assert event["kind"] == "rescale"
    assert event["from"] == 1 and event["to"] == 2


# -- runtime bound lending (the fleet scheduler's hook) ----------------------


def test_set_bounds_moves_live_clamp(baseline):
    from repro.elastic.controller import ElasticError

    strata = Strata(engine_mode="threaded")
    sink = build(strata, records())
    strata.start(DeployConfig(plan=True, elastic=MANUAL))
    controller = strata.elastic
    assert controller.bounds == (1, 4)  # the config bounds, initially

    controller.set_bounds(2, 3)
    assert controller.bounds == (2, 3)
    assert controller.events[-1]["kind"] == "bounds"
    events_before = len(controller.events)
    controller.set_bounds(2, 3)  # unchanged bounds: no event spam
    assert len(controller.events) == events_before

    with pytest.raises(ElasticError):
        controller.set_bounds(3, 2)
    with pytest.raises(ElasticError):
        controller.set_bounds(0, 2)

    # a binding lower bound forces the next tick to scale the group up,
    # even though the policy itself sees no load
    controller.tick()
    assert controller.groups[0].parallelism >= 2
    strata.wait(timeout=120)
    assert payload_counts(sink) == baseline
