"""Shard arithmetic: merge/split helpers and operator reshard_state."""

import pytest

from repro.core.operators import (
    CorrelateEventsOperator,
    DetectEventOperator,
    PartitionOperator,
)
from repro.elastic.reshard import merge_keyed, split_keyed, split_scalar
from repro.spe.operators.router import hash_route


def route_for(shards):
    return lambda key: hash_route(key, shards)


# -- merge_keyed -------------------------------------------------------------


def test_merge_unions_disjoint_shards():
    merged = merge_keyed([{"a": 1}, {"b": 2}, None, {}])
    assert merged == {"a": 1, "b": 2}


def test_merge_rejects_duplicate_keys():
    with pytest.raises(ValueError, match="more than one shard"):
        merge_keyed([{"a": 1}, {"a": 2}])


# -- split_keyed -------------------------------------------------------------


def test_split_routes_every_key():
    merged = {f"k{i}": i for i in range(20)}
    shards = split_keyed(merged, 3, route_for(3))
    assert len(shards) == 3
    assert merge_keyed(shards) == merged
    for index, shard in enumerate(shards):
        for key in shard:
            assert hash_route(key, 3) == index


def test_split_rejects_out_of_range_route():
    with pytest.raises(ValueError, match="outside"):
        split_keyed({"a": 1}, 2, lambda key: 5)


def test_split_rejects_zero_shards():
    with pytest.raises(ValueError):
        split_keyed({"a": 1}, 0, route_for(1))


def test_merge_split_round_trips_across_widths():
    merged = {(("j", f"s{i}")): [i, i + 1] for i in range(17)}
    for old_n, new_n in [(1, 4), (4, 1), (3, 2), (2, 3)]:
        shards = split_keyed(merged, old_n, route_for(old_n))
        again = split_keyed(merge_keyed(shards), new_n, route_for(new_n))
        assert merge_keyed(again) == merged


# -- split_scalar ------------------------------------------------------------


def test_scalar_total_lands_in_shard_zero():
    assert split_scalar(7, 3) == [7, 0, 0]
    assert split_scalar(2.5, 2) == [2.5, 0.0]


def test_scalar_sum_invariant_over_cycles():
    total = 42
    for _ in range(5):
        parts = split_scalar(total, 4)
        total = sum(parts)
    assert total == 42


# -- operator reshard_state --------------------------------------------------


def count_events(t):
    return [t.derive(payload={**t.payload, "seen": True})]


def test_detect_event_counter_is_additive():
    op = DetectEventOperator("detect", count_events)
    states = [{"events_out": 3}, {"events_out": 5}, None]
    out = op.reshard_state(states, 2, route_for(2))
    assert [s["events_out"] for s in out] == [8, 0]


def test_partition_without_stateful_fn_reshards_to_none():
    op = PartitionOperator("part")
    out = op.reshard_state([None, None], 3, route_for(3))
    assert out == [None, None, None]


def test_correlate_windows_split_along_group_key():
    def agg(window, t):
        return []

    op = CorrelateEventsOperator("corr", 4, agg)
    keys = [("j", f"s{i}") for i in range(6)]
    states = [
        {
            "events": {keys[0]: {1: ["a"]}, keys[2]: {1: ["c"]}},
            "last_punct": {keys[0]: 1},
            "triggers": 2,
        },
        {
            "events": {keys[1]: {2: ["b"]}, keys[3]: {2: ["d"]}},
            "last_punct": {keys[1]: 2},
            "triggers": 1,
        },
    ]
    out = op.reshard_state(states, 3, route_for(3))
    assert len(out) == 3
    # every window lands on the shard its routing key hashes to
    for index, state in enumerate(out):
        for group in state["events"]:
            assert hash_route(group, 3) == index
    # nothing lost: the union of shards is the union of inputs
    merged = merge_keyed([s["events"] for s in out])
    assert merged == {
        keys[0]: {1: ["a"]}, keys[1]: {2: ["b"]},
        keys[2]: {1: ["c"]}, keys[3]: {2: ["d"]},
    }
    # the trigger counter is additive
    assert sum(s["triggers"] for s in out) == 3
