"""Property: any mid-stream adaptation walk is output-invisible.

Hypothesis drives random walks mixing every action kind — replica
rescales, chain unfuse/fuse round trips, and scalar/vectorized mode
flips, with a checkpoint epoch running concurrently — against the same
paced pipeline, and compares the sink multiset with a static-plan run of
identical records. Whatever shape the plan walks through, the output
must be exactly the static one (divergence 0).
"""

import threading
import time
from collections import Counter

import hypothesis.strategies as st
from hypothesis import HealthCheck, given, settings

from repro.core import DeployConfig, RecoveryConfig, Strata
from repro.elastic import (
    ElasticConfig,
    Fuse,
    ReplanConfig,
    Rescale,
    SetChainMode,
    Unfuse,
)
from repro.kvstore.memory import MemoryStore
from repro.recovery import CheckpointCoordinator
from repro.spe import CollectingSink
from repro.spe.source import Source
from repro.spe.tuples import StreamTuple

N_RECORDS = 160
SPECIMENS = 5

MANUAL = ElasticConfig(
    max_parallelism=4, tick_s=60.0, cooldown_s=0.0,
    replan=ReplanConfig(cooldown_s=0.0, streak_ticks=1),
)


class SlowSource(Source):
    def __init__(self, name, records, delay):
        super().__init__(name)
        self._records = list(records)
        self._delay = delay

    def __iter__(self):
        for t in self._records:
            if self._delay:
                time.sleep(self._delay)
            t.ingest_time = time.monotonic()
            yield t


def records():
    return [
        StreamTuple(
            tau=float(i), job="j", layer=i // 8,
            specimen=f"s{i % 3}", portion="p0", payload={"v": i},
        )
        for i in range(N_RECORDS)
    ]


def scrub(t):
    return [t.derive(payload={**t.payload, "a": t.payload["v"] + 1})]


def enrich(t):
    return [t.derive(payload={**t.payload, "b": t.payload["v"] * 2})]


scrub.process_block = lambda block: block.with_columns(
    a=block.columns["v"] + 1
)
enrich.process_block = lambda block: block.with_columns(
    b=block.columns["v"] * 2
)


def assign(t):
    return [t.derive(specimen=f"s{t.payload['v'] % SPECIMENS}", portion="p0")]


def mark(t):
    return [t.derive(payload={**t.payload, "c": t.payload["v"] + 1000})]


def build(strata, delay, checkpointable=False):
    """chain (scrub+enrich, block-capable) feeding a keyed replica group."""
    sink = CollectingSink("out")
    (
        strata.add_source(
            SlowSource("src", records(), delay), "raw",
            checkpointable=checkpointable,
        )
        .detect_event("m1", scrub)
        .detect_event("m2", enrich, replicable=False)
        .partition("parts", assign, replicable=False)
        .partition("cells", mark)
        .deliver(sink)
    )
    return sink


def payload_counts(sink):
    return Counter(tuple(sorted(t.payload.items())) for t in sink.results)


_BASELINE = None


def baseline():
    global _BASELINE
    if _BASELINE is None:
        strata = Strata(engine_mode="threaded")
        sink = build(strata, delay=0.0)
        strata.deploy()
        _BASELINE = payload_counts(sink)
    return _BASELINE


STEPS = ("up", "down", "unfuse", "fuse", "scalar", "vectorized")


def to_action(step, controller):
    group = controller.groups[0]
    chain = controller.chains[0]
    if step == "up":
        return Rescale(group=group.name, target=min(4, group.parallelism + 1))
    if step == "down":
        return Rescale(group=group.name, target=max(1, group.parallelism - 1))
    if step == "unfuse":
        return Unfuse(chain=chain.name)
    if step == "fuse":
        return Fuse(chain=chain.name)
    return SetChainMode(chain=chain.name, mode=step)


@given(walk=st.lists(st.sampled_from(STEPS), min_size=1, max_size=4))
@settings(
    max_examples=6,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_random_adaptation_walk_is_output_invisible(walk):
    coordinator = CheckpointCoordinator(MemoryStore())
    strata = Strata(engine_mode="threaded")
    sink = build(strata, delay=0.0015, checkpointable=True)
    strata.start(
        DeployConfig(
            plan=True, elastic=MANUAL,
            recovery=RecoveryConfig(checkpointer=coordinator),
        )
    )
    controller = strata.elastic
    assert len(controller.groups) == 1 and len(controller.chains) == 1

    epoch_thread = threading.Thread(
        target=lambda: coordinator.trigger(timeout=60.0)
    )
    epoch_thread.start()
    for step in walk:
        # inapplicable steps (fuse while fused, flip while unfused, rescale
        # after EOS...) must be refused without corrupting anything — the
        # walk keeps going either way and the output must still hold
        controller.apply_action(to_action(step, controller))
    epoch_thread.join(timeout=90)
    assert not epoch_thread.is_alive()
    strata.wait(timeout=120)
    assert payload_counts(sink) == baseline()
