"""Adaptive re-planning: the action algebra, the cost model, and live
chain rewrites (unfuse/fuse/mode flips) with divergence-zero output."""

import time
from collections import Counter

import pytest

from repro.core import DeployConfig, Strata
from repro.core.deploy import DeployConfigError
from repro.elastic import (
    CostModelPolicy,
    ElasticConfig,
    Fuse,
    HysteresisPolicy,
    Migrate,
    NoOp,
    ReplanConfig,
    Rescale,
    ScalePolicyAdapter,
    SetChainMode,
    Unfuse,
    WorkloadView,
    is_legacy_scale_policy,
    plan_migration,
)
from repro.elastic.actions import ChainSignals
from repro.elastic.policy import GroupSignals
from repro.spe import CollectingSink, PlanConfig, PlanError
from repro.spe.source import Source
from repro.spe.tuples import StreamTuple

N_RECORDS = 240

#: manual-adaptation config: huge tick so the control loop never interferes,
#: zero cooldowns so back-to-back test actions are allowed.
REPLAN = ReplanConfig(cooldown_s=0.0, streak_ticks=1)
MANUAL = ElasticConfig(
    max_parallelism=4, tick_s=60.0, cooldown_s=0.0, replan=REPLAN
)


class SlowSource(Source):
    """Paced replay: keeps the stream alive while a chain drains."""

    def __init__(self, name, records, delay=0.002):
        super().__init__(name)
        self._records = list(records)
        self._delay = delay

    def __iter__(self):
        for t in self._records:
            if self._delay:
                time.sleep(self._delay)
            t.ingest_time = time.monotonic()
            yield t


def records(n=N_RECORDS):
    # specimen pre-assigned: the chain stages are pure event maps, so no
    # punctuation minting happens inside the chain under either mode
    return [
        StreamTuple(
            tau=float(i), job="j", layer=i // 8,
            specimen=f"s{i % 3}", portion="p0", payload={"v": i},
        )
        for i in range(n)
    ]


def mark_a(t):
    return [t.derive(payload={**t.payload, "a": t.payload["v"] + 1})]


def mark_b(t):
    return [t.derive(payload={**t.payload, "b": t.payload["v"] * 2})]


def block_a(t):
    return [t.derive(payload={**t.payload, "a": t.payload["v"] + 1})]


def block_b(t):
    return [t.derive(payload={**t.payload, "b": t.payload["v"] * 2})]


block_a.process_block = lambda block: block.with_columns(
    a=block.columns["v"] + 1
)
block_b.process_block = lambda block: block.with_columns(
    b=block.columns["v"] * 2
)


def build_chain(strata, recs, delay=0.002, block=False):
    """source -> detect(m1) -> detect(m2) -> sink: one 2-member fused chain.

    Nothing is keyed, so the plan compiler fuses m1+m2 into a standalone
    chain — the thing the re-planner adapts.
    """
    sink = CollectingSink("out")
    f1, f2 = (block_a, block_b) if block else (mark_a, mark_b)
    (
        strata.add_source(SlowSource("src", recs, delay), "raw")
        .detect_event("m1", f1)
        .detect_event("m2", f2, replicable=False)
        .deliver(sink)
    )
    return sink


def payload_counts(sink):
    return Counter(tuple(sorted(t.payload.items())) for t in sink.results)


@pytest.fixture(scope="module")
def baseline():
    strata = Strata(engine_mode="threaded")
    sink = build_chain(strata, records(), delay=0.0)
    strata.deploy()
    return payload_counts(sink)


# -- the action algebra -------------------------------------------------------


def test_action_kinds_and_describe():
    assert Rescale("g", 3).kind == "rescale"
    assert "x3" in Rescale("g", 3).describe()
    assert Unfuse("c").kind == "unfuse"
    assert Fuse("c").kind == "fuse"
    assert SetChainMode("c", "vectorized").kind == "set_chain_mode"
    assert Migrate("stage-1", "worker-2").describe() == (
        "migrate stage-1 -> worker-2"
    )
    assert NoOp().describe() == "noop"
    assert "idle" in NoOp("idle").describe()


def test_set_chain_mode_validates_mode():
    with pytest.raises(ValueError, match="scalar"):
        SetChainMode("c", "columnar")


def test_actions_are_frozen():
    action = Rescale("g", 2)
    with pytest.raises(AttributeError):
        action.target = 5


# -- ReplanConfig -------------------------------------------------------------


def test_replan_config_validation():
    with pytest.raises(ValueError, match="cooldown_s"):
        ReplanConfig(cooldown_s=-1.0)
    with pytest.raises(ValueError, match="max_actions_per_tick"):
        ReplanConfig(max_actions_per_tick=0)
    with pytest.raises(ValueError, match="streak_ticks"):
        ReplanConfig(streak_ticks=0)
    with pytest.raises(ValueError, match="unfuse_busy"):
        ReplanConfig(unfuse_busy=1.5)
    with pytest.raises(ValueError, match="oscillate"):
        ReplanConfig(refuse_queue_fill=0.6, unfuse_queue_fill=0.5)
    with pytest.raises(ValueError, match="migrate_busy_ratio"):
        ReplanConfig(migrate_busy_ratio=0.5)


def test_replan_config_resolve():
    assert ReplanConfig.resolve(None) is None
    assert ReplanConfig.resolve(False) is None
    assert ReplanConfig.resolve(True) == ReplanConfig()
    config = ReplanConfig(cooldown_s=3.0)
    assert ReplanConfig.resolve(config) is config
    assert ReplanConfig.resolve(ReplanConfig(enabled=False)) is None
    with pytest.raises(TypeError):
        ReplanConfig.resolve("yes")


def test_elastic_config_resolves_replan():
    config = ElasticConfig(replan=True)
    assert isinstance(config.replan, ReplanConfig)
    assert "replan(" in config.describe()
    assert ElasticConfig().replan is None
    assert ElasticConfig(replan=False).replan is None
    with pytest.raises(ValueError, match="replan"):
        ElasticConfig(replan="yes")


# -- legacy ScalePolicy shim --------------------------------------------------


class LegacyDoubler:
    """Old-contract policy: always asks for double the replicas."""

    def decide(self, group, signals, current):
        return current * 2


def test_is_legacy_scale_policy():
    assert is_legacy_scale_policy(HysteresisPolicy())
    assert is_legacy_scale_policy(LegacyDoubler())
    assert not is_legacy_scale_policy(CostModelPolicy())
    assert not is_legacy_scale_policy(ScalePolicyAdapter(LegacyDoubler(), warn=False))
    assert not is_legacy_scale_policy(object())


def test_adapter_warns_and_emits_only_rescale():
    with pytest.warns(DeprecationWarning, match="ScalePolicy"):
        adapter = ScalePolicyAdapter(LegacyDoubler())
    assert isinstance(adapter.wrapped, LegacyDoubler)
    view = WorkloadView(
        groups={"g": GroupSignals(parallelism=2)},
        chains={
            "c": ChainSignals(
                name="c", mode="scalar", members=("a", "b"), fused=True,
                queue_fill=1.0, busy_fraction=1.0,
            )
        },
    )
    actions = adapter.decide(view)
    assert actions == [Rescale(group="g", target=4)]


def test_adapter_skips_groups_already_at_target():
    class Hold:
        def decide(self, group, signals, current):
            return current

    assert ScalePolicyAdapter(Hold(), warn=False).decide(
        WorkloadView(groups={"g": GroupSignals(parallelism=2)})
    ) == []


# -- the cost model -----------------------------------------------------------


def chain_signals(**kw):
    base = dict(
        name="c", mode="scalar", members=("a", "b"), fused=True,
        queue_fill=0.0, busy_fraction=0.0, block_fill=0.0,
        blocks_delta=0, block_capable=False,
    )
    base.update(kw)
    return ChainSignals(**base)


def decide_chain(policy, signals):
    return policy.decide(WorkloadView(chains={signals.name: signals}))


def test_rule_starved_vectorized_goes_scalar():
    policy = CostModelPolicy(ReplanConfig(streak_ticks=1))
    signals = chain_signals(mode="vectorized", blocks_delta=5, block_fill=0.1)
    assert decide_chain(policy, signals) == [
        SetChainMode(chain="c", mode="scalar")
    ]


def test_rule_backlogged_scalar_goes_vectorized():
    policy = CostModelPolicy(ReplanConfig(streak_ticks=1))
    signals = chain_signals(block_capable=True, queue_fill=0.9)
    assert decide_chain(policy, signals) == [
        SetChainMode(chain="c", mode="vectorized")
    ]


def test_rule_saturated_chain_unfuses():
    policy = CostModelPolicy(ReplanConfig(streak_ticks=1))
    signals = chain_signals(queue_fill=0.9, busy_fraction=0.95)
    assert decide_chain(policy, signals) == [Unfuse(chain="c")]


def test_rule_idle_unfused_chain_refuses():
    policy = CostModelPolicy(ReplanConfig(streak_ticks=1))
    signals = chain_signals(
        mode="unfused", fused=False, queue_fill=0.0, busy_fraction=0.0
    )
    assert decide_chain(policy, signals) == [Fuse(chain="c")]


def test_single_member_chain_never_unfused():
    policy = CostModelPolicy(ReplanConfig(streak_ticks=1))
    signals = chain_signals(
        members=("a",), queue_fill=1.0, busy_fraction=1.0
    )
    assert decide_chain(policy, signals) == []


def test_streak_hysteresis_delays_and_resets():
    policy = CostModelPolicy(ReplanConfig(streak_ticks=2))
    hot = chain_signals(queue_fill=0.9, busy_fraction=0.95)
    calm = chain_signals()
    assert decide_chain(policy, hot) == []  # streak 1 of 2
    assert decide_chain(policy, hot) == [Unfuse(chain="c")]
    assert decide_chain(policy, hot) == []  # streak restarted after firing
    assert decide_chain(policy, calm) == []  # condition gone: streak resets
    assert decide_chain(policy, hot) == []


def test_cost_model_delegates_groups_to_scale_policy():
    policy = CostModelPolicy(ReplanConfig(streak_ticks=1))
    view = WorkloadView(
        groups={"g": GroupSignals(parallelism=2, qos_violation_delta=3)}
    )
    assert policy.decide(view) == [Rescale(group="g", target=4)]


def test_cost_model_emits_migration_when_enabled():
    policy = CostModelPolicy(
        ReplanConfig(streak_ticks=1, migrate=True, migrate_busy_ratio=2.0)
    )
    view = WorkloadView(
        workers={
            "w0": {"busy_fraction": 0.9, "stages": ["stage-0", "stage-1"]},
            "w1": {"busy_fraction": 0.1, "stages": ["stage-2"]},
        }
    )
    assert policy.decide(view) == [Migrate(stage="stage-1", to_worker="w1")]


# -- plan_migration -----------------------------------------------------------


def test_plan_migration_rules():
    cfg = ReplanConfig(migrate=True, migrate_busy_ratio=2.0)
    # fewer than two workers: nowhere to go
    assert plan_migration({"w0": {"busy_fraction": 1.0, "stages": ["a", "b"]}}, cfg) is None
    # hot worker with a single stage: moving it just relocates the hot spot
    assert plan_migration(
        {
            "w0": {"busy_fraction": 1.0, "stages": ["a"]},
            "w1": {"busy_fraction": 0.1, "stages": ["b"]},
        },
        cfg,
    ) is None
    # imbalance below the ratio: leave placement alone
    assert plan_migration(
        {
            "w0": {"busy_fraction": 0.5, "stages": ["a", "b"]},
            "w1": {"busy_fraction": 0.4, "stages": ["c"]},
        },
        cfg,
    ) is None
    # hot, multi-stage, imbalanced: move the hot worker's last stage
    action = plan_migration(
        {
            "w0": {"busy_fraction": 0.9, "stages": ["a", "b"]},
            "w1": {"busy_fraction": 0.1, "stages": ["c"]},
        },
        cfg,
    )
    assert action == Migrate(stage="b", to_worker="w1")


# -- chain discovery and deployment shapes ------------------------------------


def test_chains_only_deployment_discovers_the_chain():
    strata = Strata(engine_mode="threaded")
    build_chain(strata, records(24), delay=0.0)
    strata.start(DeployConfig(plan=True, elastic=MANUAL))
    controller = strata.elastic
    assert controller is not None
    assert controller.groups == []
    assert len(controller.chains) == 1
    chain = controller.chains[0]
    # the compiler may append bookkeeping stages (e.g. depunct) to the chain
    assert chain.fused and len(chain.members) >= 2
    assert {"detect:m1", "detect:m2"} <= set(chain.members)
    strata.wait(timeout=60)


def test_replan_off_discovers_no_chains():
    strata = Strata(engine_mode="threaded")
    sink = CollectingSink("out")
    (
        strata.add_source(SlowSource("src", records(24), 0.0), "raw")
        .partition("parts", lambda t: [t.derive(specimen="s0", portion="p0")])
        .partition("cells", mark_a)
        .deliver(sink)
    )
    strata.start(
        DeployConfig(
            plan=True,
            elastic=ElasticConfig(tick_s=60.0, cooldown_s=0.0),
        )
    )
    assert strata.elastic.chains == []
    strata.wait(timeout=60)


def test_no_groups_no_chains_still_raises_plan_error():
    strata = Strata(engine_mode="threaded")
    sink = CollectingSink("out")
    strata.add_source(SlowSource("src", records(4), 0.0), "raw").deliver(sink)
    with pytest.raises(PlanError, match="no keyed-replicated operator group"):
        strata.start(DeployConfig(plan=PlanConfig(fusion=False), elastic=MANUAL))


# -- live chain rewrites ------------------------------------------------------


def test_unfuse_preserves_output(baseline):
    strata = Strata(engine_mode="threaded")
    sink = build_chain(strata, records())
    strata.start(DeployConfig(plan=True, elastic=MANUAL))
    controller = strata.elastic
    chain = controller.chains[0]
    assert controller.apply_action(Unfuse(chain=chain.name))
    assert not chain.fused
    assert len(chain.nodes) == len(chain.members) >= 2
    assert chain.mode == "unfused"
    strata.wait(timeout=120)
    assert payload_counts(sink) == baseline
    summary = controller.summary()
    assert summary["actions"].get("unfuse") == 1
    assert summary["chains"][chain.name]["fused"] is False
    assert any(e["kind"] == "unfuse" for e in controller.events)


def test_unfuse_then_fuse_round_trip(baseline):
    strata = Strata(engine_mode="threaded")
    sink = build_chain(strata, records())
    strata.start(DeployConfig(plan=True, elastic=MANUAL))
    controller = strata.elastic
    chain = controller.chains[0]
    assert controller.apply_action(Unfuse(chain=chain.name))
    assert controller.apply_action(Fuse(chain=chain.name))
    assert chain.fused and len(chain.nodes) == 1
    strata.wait(timeout=120)
    assert payload_counts(sink) == baseline
    actions = controller.summary()["actions"]
    assert actions.get("unfuse") == 1 and actions.get("fuse") == 1


def test_fuse_on_fused_chain_is_a_no_op():
    strata = Strata(engine_mode="threaded")
    build_chain(strata, records(24), delay=0.0)
    strata.start(DeployConfig(plan=True, elastic=MANUAL))
    controller = strata.elastic
    chain = controller.chains[0]
    assert not controller.apply_action(Fuse(chain=chain.name))
    assert not controller.apply_action(Unfuse(chain="no-such-chain"))
    strata.wait(timeout=60)


@pytest.fixture(scope="module")
def block_baseline():
    strata = Strata(engine_mode="threaded")
    sink = build_chain(strata, records(), delay=0.0, block=True)
    strata.deploy()
    return payload_counts(sink)


def test_mode_flip_vectorized_to_scalar(block_baseline):
    strata = Strata(engine_mode="threaded", obs=True)
    sink = build_chain(strata, records(), block=True)
    strata.start(DeployConfig(plan=True, elastic=MANUAL))
    controller = strata.elastic
    chain = controller.chains[0]
    assert chain.mode == "vectorized"  # the compiler picked the block path
    assert controller.apply_action(SetChainMode(chain=chain.name, mode="scalar"))
    assert chain.mode == "scalar"
    snap = strata.obs.snapshot()
    modes = {
        s.label("chain"): s.label("mode")
        for s in snap.samples
        if s.name == "elastic_chain_mode"
    }
    assert modes[chain.name] == "scalar"
    assert any(
        s.name == "elastic_replan_actions_total"
        and s.label("action") == "set_chain_mode"
        and s.value == 1.0
        for s in snap.samples
    )
    assert any(
        s.name == "elastic_last_adaptation"
        and s.label("action") == "mode=scalar"
        for s in snap.samples
    )
    strata.wait(timeout=120)
    assert payload_counts(sink) == block_baseline


def test_mode_flip_scalar_to_vectorized(block_baseline):
    strata = Strata(engine_mode="threaded")
    sink = build_chain(strata, records(), block=True)
    strata.start(
        DeployConfig(plan=PlanConfig(vectorize=False), elastic=MANUAL)
    )
    controller = strata.elastic
    chain = controller.chains[0]
    assert chain.mode == "scalar" and chain.block_capable
    assert controller.apply_action(
        SetChainMode(chain=chain.name, mode="vectorized")
    )
    assert chain.mode == "vectorized"
    strata.wait(timeout=120)
    assert payload_counts(sink) == block_baseline


def test_vectorized_mode_requires_block_capability(baseline):
    strata = Strata(engine_mode="threaded")
    sink = build_chain(strata, records())  # scalar-only members
    strata.start(DeployConfig(plan=True, elastic=MANUAL))
    controller = strata.elastic
    chain = controller.chains[0]
    assert not chain.block_capable
    assert not controller.apply_action(
        SetChainMode(chain=chain.name, mode="vectorized")
    )
    assert chain.mode == "scalar"
    strata.wait(timeout=120)
    assert payload_counts(sink) == baseline


# -- tick-driven adaptation ---------------------------------------------------


class ScriptedPolicy:
    """Returns a fixed action list every tick (budget/cooldown testing)."""

    def __init__(self, actions):
        self.actions = list(actions)

    def decide(self, view):
        return list(self.actions)


def test_tick_respects_the_per_tick_action_budget():
    strata = Strata(engine_mode="threaded")
    build_chain(strata, records())
    chain_cfg = ElasticConfig(
        tick_s=60.0, cooldown_s=0.0,
        replan=ReplanConfig(cooldown_s=0.0, max_actions_per_tick=1),
    )
    strata.start(DeployConfig(plan=True, elastic=chain_cfg))
    controller = strata.elastic
    chain = controller.chains[0]
    controller._policy = ScriptedPolicy(
        [Unfuse(chain=chain.name), Fuse(chain=chain.name), NoOp()]
    )
    controller.tick()
    # budget of one: the unfuse landed, the fuse must wait for a later tick
    assert not chain.fused
    controller.tick()
    assert chain.fused
    strata.wait(timeout=120)


def test_tick_applies_cost_model_under_induced_backlog(baseline):
    """End-to-end: a saturated chain triggers a runtime Unfuse via tick()."""
    strata = Strata(engine_mode="threaded")

    def slow_mark(t):
        time.sleep(0.004)
        return [t.derive(payload={**t.payload, "a": t.payload["v"] + 1})]

    sink = CollectingSink("out")
    # the source must outlive the first ticks (a finished source wins the
    # drain race by design), while the chain falls behind it 2:1
    (
        strata.add_source(SlowSource("src", records(), 0.002), "raw")
        .detect_event("m1", slow_mark)
        .detect_event("m2", mark_b, replicable=False)
        .deliver(sink)
    )
    # batched edges keep queue_fill tiny (a 240-tuple run is 8 batch
    # entries), so gate the unfuse rule on busy_fraction alone here
    config = ElasticConfig(
        tick_s=0.2, cooldown_s=0.0,
        replan=ReplanConfig(
            cooldown_s=0.0, streak_ticks=1,
            unfuse_queue_fill=0.0, refuse_queue_fill=0.0, unfuse_busy=0.05,
        ),
    )
    strata.start(DeployConfig(plan=True, elastic=config))
    controller = strata.elastic
    chain = controller.chains[0]
    deadline = time.monotonic() + 30
    while chain.fused and time.monotonic() < deadline and strata.running():
        time.sleep(0.05)
    strata.wait(timeout=120)
    assert controller.summary()["actions"].get("unfuse", 0) >= 1
    expected = Counter(
        tuple(sorted({"v": i, "a": i + 1, "b": i * 2}.items()))
        for i in range(N_RECORDS)
    )
    assert payload_counts(sink) == expected


# -- set_bounds vs in-flight rescale (fleet lending race) ---------------------


def test_rescale_clamps_to_live_bounds():
    """A rescale racing a fleet set_bounds shrink can never exceed the
    lent maximum: targets re-clamp against live bounds at entry."""
    strata = Strata(engine_mode="threaded")
    sink = CollectingSink("out")
    (
        strata.add_source(SlowSource("src", records(), 0.002), "raw")
        .partition("parts", lambda t: [t.derive(specimen=f"s{t.payload['v'] % 3}", portion="p0")])
        .partition("cells", mark_a)
        .deliver(sink)
    )
    strata.start(
        DeployConfig(
            plan=True,
            elastic=ElasticConfig(max_parallelism=4, tick_s=60.0, cooldown_s=0.0),
        )
    )
    controller = strata.elastic
    group = controller.groups[0]
    controller.set_bounds(1, 2)
    # the pending decision wanted 4 replicas; the lent max is 2
    assert controller.rescale(group, 4)
    assert group.parallelism == 2
    strata.wait(timeout=120)


# -- [elastic.replan] deploy config -------------------------------------------


def test_deploy_config_replan_round_trip():
    data = {
        "plan": True,
        "elastic": {
            "max_parallelism": 8,
            "replan": {"cooldown_s": 2.5, "migrate": True},
        },
    }
    config = DeployConfig.from_dict(data)
    assert isinstance(config.elastic.replan, ReplanConfig)
    assert config.elastic.replan.cooldown_s == 2.5
    assert config.elastic.replan.migrate is True
    round_tripped = DeployConfig.from_dict(config.to_dict())
    assert round_tripped.elastic.replan == config.elastic.replan


def test_deploy_config_replan_bool_passthrough():
    config = DeployConfig.from_dict({"plan": True, "elastic": {"replan": True}})
    assert config.elastic.replan == ReplanConfig()
    config = DeployConfig.from_dict({"plan": True, "elastic": {"replan": False}})
    assert config.elastic.replan is None


def test_deploy_config_replan_unknown_key_dotted_path():
    with pytest.raises(DeployConfigError, match=r"elastic\.replan\.bogus"):
        DeployConfig.from_dict({"elastic": {"replan": {"bogus": 1}}})


def test_deploy_config_replan_invalid_value():
    with pytest.raises(DeployConfigError, match=r"\[elastic\.replan\]"):
        DeployConfig.from_dict({"elastic": {"replan": {"cooldown_s": -1.0}}})


def test_deploy_config_rejects_table_under_scalar_key():
    with pytest.raises(DeployConfigError, match="does not take a table"):
        DeployConfig.from_dict({"elastic": {"max_parallelism": {"x": 1}}})


# -- CLI surface --------------------------------------------------------------


def test_cli_elastic_of_replan_flags():
    import argparse

    from repro.cli import _elastic_of

    def ns(**kw):
        base = dict(
            elastic=False, replan=False, no_replan=False,
            min_parallelism=1, max_parallelism=4,
        )
        base.update(kw)
        return argparse.Namespace(**base)

    assert _elastic_of(ns()) is None
    assert _elastic_of(ns(elastic=True)).replan is None
    config = _elastic_of(ns(replan=True))  # --replan implies --elastic
    assert isinstance(config.replan, ReplanConfig)
    assert _elastic_of(ns(elastic=True, replan=True, no_replan=True)).replan is None


def test_cli_no_replan_overrides_config_file(tmp_path):
    import argparse

    from repro.cli import _deploy_of

    config_file = tmp_path / "deploy.toml"
    config_file.write_text("plan = true\n[elastic.replan]\ncooldown_s = 2.0\n")
    args = argparse.Namespace(config=str(config_file), no_replan=True)
    assert _deploy_of(args).elastic.replan is None
    args = argparse.Namespace(config=str(config_file), no_replan=False)
    assert _deploy_of(args).elastic.replan.cooldown_s == 2.0


def test_cli_top_renders_adapt_column():
    from repro.cli import _render_top
    from repro.obs.registry import MetricsSnapshot, Sample

    snap = MetricsSnapshot(wall_time=0.0, samples=[
        Sample("spe_tuples_in_total", (("operator", "op:m"),), 12.0),
        Sample(
            "elastic_last_adaptation",
            (("operator", "op:m"), ("action", "unfuse")),
            1.0,
        ),
    ])
    text = _render_top(snap)
    assert "ADAPT" in text
    assert "unfuse" in text
