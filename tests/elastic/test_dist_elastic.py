"""Elastic controllers inside the distributed runtime.

Each stage worker runs its own controller against its private scheduler;
a worker restart mid-run replays its input topics and must stay invisible
in the final output even while controllers are rescaling replicas.
"""

import threading
import time

import pytest

from repro.core import (
    DeployConfig,
    Strata,
    UseCaseConfig,
    build_use_case,
    calibrate_job,
    specimen_regions_px,
)
from repro.dist import DistConfig, DistCoordinator
from repro.elastic import ElasticConfig
from tests.conftest import TEST_IMAGE_PX

CELL_EDGE = 5

#: fast controller: decisions every 50 ms so short test runs exercise it
FAST = ElasticConfig(
    min_parallelism=1, max_parallelism=2, initial_parallelism=2,
    tick_s=0.05, cooldown_s=0.1,
)


def build(layer_records, reference_images, test_job):
    config = UseCaseConfig(
        image_px=TEST_IMAGE_PX, cell_edge_px=CELL_EDGE, window_layers=4
    )
    strata = Strata(engine_mode="threaded", connector_mode="pubsub")
    calibrate_job(
        strata.kv, test_job.job_id, reference_images, CELL_EDGE,
        regions=specimen_regions_px(test_job.specimens, TEST_IMAGE_PX),
    )
    pipeline = build_use_case(
        iter(layer_records), iter(layer_records), config, strata=strata
    )
    return strata, pipeline


def result_key(t):
    return (t.job, t.layer, t.specimen, t.payload["num_events"],
            t.payload["num_clusters"])


@pytest.fixture(scope="module")
def baseline(layer_records, reference_images, test_job):
    strata, pipeline = build(layer_records, reference_images, test_job)
    strata.deploy()
    return sorted(map(result_key, pipeline.sink.results))


def test_elastic_dist_deploy_equals_threaded(
    layer_records, reference_images, test_job, baseline
):
    strata, pipeline = build(layer_records, reference_images, test_job)
    report = strata.deploy(
        DeployConfig(plan=True, dist=DistConfig(workers=2), elastic=FAST)
    )
    assert sorted(map(result_key, pipeline.sink.results)) == baseline
    dist = report.extra["dist"]
    assert all(w["exitcode"] == 0 for w in dist["workers"].values())


def test_elastic_survives_worker_restart(
    layer_records, reference_images, test_job, baseline
):
    strata, pipeline = build(layer_records, reference_images, test_job)
    coordinator = DistCoordinator(
        strata.query, strata.broker, DistConfig(workers=2),
        capacity=strata.capacity, plan=True, elastic=FAST,
    )
    coordinator.start()

    def chaos():
        time.sleep(0.05)
        coordinator.workers[0].kill()

    threading.Thread(target=chaos, daemon=True).start()
    report = coordinator.run()
    assert sorted(map(result_key, pipeline.sink.results)) == baseline
    dist = report.extra["dist"]
    if dist["restarts"]:
        assert dist["failure"] is None
        assert dist["workers"]["worker-0"]["incarnation"] >= 1
