"""Specimen layout matches the paper's build description."""

import pytest

from repro.am import (
    CYLINDERS_PER_SPECIMEN,
    PLATE_MM,
    SPECIMEN_HEIGHT_MM,
    SPECIMEN_LENGTH_MM,
    SPECIMEN_WIDTH_MM,
    Specimen,
    specimen_map,
    standard_layout,
)


def test_paper_layout_dimensions():
    specimens = standard_layout()
    assert len(specimens) == 12
    for s in specimens:
        assert s.footprint.width == SPECIMEN_WIDTH_MM  # 25 mm
        assert s.footprint.height == SPECIMEN_LENGTH_MM  # 50 mm
        assert s.height_mm == SPECIMEN_HEIGHT_MM  # 23 mm
        assert s.num_stacks == 23
        assert len(s.cylinders) == CYLINDERS_PER_SPECIMEN


def test_layout_fits_plate():
    for s in standard_layout():
        fp = s.footprint
        assert 0 <= fp.x_min < fp.x_max <= PLATE_MM
        assert 0 <= fp.y_min < fp.y_max <= PLATE_MM


def test_layout_no_overlaps():
    specimens = standard_layout()
    for i, a in enumerate(specimens):
        for b in specimens[i + 1 :]:
            assert not a.footprint.intersects(b.footprint)


def test_layout_does_not_fit_raises():
    with pytest.raises(ValueError, match="do not fit"):
        standard_layout(num_specimens=100, columns=10)


def test_cylinders_inside_footprint():
    for s in standard_layout():
        for cyl in s.cylinders:
            assert s.footprint.contains(cyl.center_x, cyl.center_y)
            assert s.footprint.contains(cyl.center_x - cyl.radius, cyl.center_y)
            assert s.footprint.contains(cyl.center_x + cyl.radius - 1e-9, cyl.center_y)


def test_stack_of_height():
    s = standard_layout()[0]
    assert s.stack_of_height(0.0) == 0
    assert s.stack_of_height(0.999) == 0
    assert s.stack_of_height(1.0) == 1
    assert s.stack_of_height(22.9) == 22
    with pytest.raises(ValueError):
        s.stack_of_height(23.0)
    with pytest.raises(ValueError):
        s.stack_of_height(-0.1)


def test_specimen_map_serializable():
    specimens = standard_layout(num_specimens=3)
    mapping = specimen_map(specimens)
    assert set(mapping) == {"S00", "S01", "S02"}
    x_min, y_min, x_max, y_max = mapping["S00"]
    assert (x_max - x_min, y_max - y_min) == (25.0, 50.0)


def test_custom_height():
    specimens = standard_layout(num_specimens=2, height_mm=5.0)
    assert specimens[0].num_stacks == 5
