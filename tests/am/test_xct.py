"""Simulated XCT scanning of witness cylinders."""

import numpy as np
import pytest

from repro.am import COLD, DefectRegion, make_job, scan_cylinder, scan_job
from repro.am.xct import _disc_overlap_fraction


def defect_at(specimen, x, y, z, radius=3.0, half_depth=0.5):
    return DefectRegion(
        defect_id="D", specimen_id=specimen.specimen_id, kind=COLD,
        center_x_mm=x, center_y_mm=y, center_z_mm=z,
        radius_mm=radius, half_depth_mm=half_depth, intensity_delta=-0.3,
    )


@pytest.fixture(scope="module")
def job():
    return make_job("xct", seed=7, defect_rate_per_stack=0.0)


def test_clean_cylinder_zero_porosity(job):
    profile = scan_cylinder(job.specimens[0], 0, [])
    assert profile.num_bins == 23
    assert all(p == 0.0 for p in profile.porosity)
    assert profile.mean_porosity == 0.0


def test_enclosing_defect_gives_max_porosity(job):
    specimen = job.specimens[0]
    cylinder = specimen.cylinders[1]
    defect = defect_at(
        specimen, cylinder.center_x, cylinder.center_y, 5.5,
        radius=10.0, half_depth=0.51,
    )
    profile = scan_cylinder(specimen, 1, [defect], porosity_per_defect_overlap=0.35)
    bin5 = profile.porosity[5]
    assert bin5 == pytest.approx(0.35, rel=0.1)
    assert profile.porosity[0] == 0.0
    assert profile.porosity[10] == 0.0


def test_offset_defect_partial_overlap(job):
    specimen = job.specimens[0]
    cylinder = specimen.cylinders[0]
    # defect centered one radius away: partial overlap only
    defect = defect_at(
        specimen, cylinder.center_x + cylinder.radius, cylinder.center_y, 5.5,
        radius=cylinder.radius, half_depth=0.51,
    )
    profile = scan_cylinder(specimen, 0, [defect])
    assert 0.0 < profile.porosity[5] < 0.35


def test_defect_in_other_specimen_ignored(job):
    foreign = defect_at(job.specimens[1], 0.0, 0.0, 5.0, radius=50.0, half_depth=20.0)
    profile = scan_cylinder(job.specimens[0], 0, [foreign])
    assert profile.mean_porosity == 0.0


def test_overlap_fraction_bounds(job):
    cylinder = job.specimens[0].cylinders[0]
    far = defect_at(job.specimens[0], cylinder.center_x + 100, cylinder.center_y, 0.0)
    assert _disc_overlap_fraction(cylinder, far, 0.0) == 0.0
    covering = defect_at(
        job.specimens[0], cylinder.center_x, cylinder.center_y, 0.0, radius=50.0
    )
    assert _disc_overlap_fraction(cylinder, covering, 0.0) == pytest.approx(1.0)


def test_scan_job_covers_all_cylinders(job):
    profiles = scan_job(job)
    assert len(profiles) == 12 * 3
    assert {p.specimen_id for p in profiles} == {s.specimen_id for s in job.specimens}


def test_scan_job_truncation(job):
    profiles = scan_job(job, max_height_mm=5.0)
    assert all(p.num_bins == 5 for p in profiles)


def test_seeded_job_porosity_tracks_defects():
    defective = make_job("d", seed=7, defect_rate_per_stack=2.0)
    clean = make_job("c", seed=7, defect_rate_per_stack=0.0)
    porosity_defective = np.mean([p.mean_porosity for p in scan_job(defective)])
    porosity_clean = np.mean([p.mean_porosity for p in scan_job(clean)])
    assert porosity_defective > porosity_clean == 0.0


def test_z_of_bin():
    job = make_job("z", seed=1, defect_rate_per_stack=0.0)
    profile = scan_cylinder(job.specimens[0], 0, [])
    assert profile.z_of_bin(0) == 0.5
    assert profile.z_of_bin(22) == 22.5
