"""Plate geometry and unit conversions."""

import pytest

from repro.am import PLATE_MM, Rect, mm_to_px, px_to_mm


def test_rect_properties():
    r = Rect(10, 20, 35, 70)
    assert r.width == 25
    assert r.height == 50
    assert r.center == (22.5, 45)
    assert r.area == 1250


def test_rect_inverted_rejected():
    with pytest.raises(ValueError):
        Rect(10, 0, 5, 10)


def test_contains_half_open():
    r = Rect(0, 0, 10, 10)
    assert r.contains(0, 0)
    assert r.contains(9.99, 9.99)
    assert not r.contains(10, 5)
    assert not r.contains(-0.1, 5)


def test_intersects():
    a = Rect(0, 0, 10, 10)
    assert a.intersects(Rect(5, 5, 15, 15))
    assert not a.intersects(Rect(10, 0, 20, 10))  # touching edges don't overlap
    assert not a.intersects(Rect(20, 20, 30, 30))


def test_to_pixels_scale():
    r = Rect(0, 0, 125, 250)
    r0, r1, c0, c1 = r.to_pixels(1000, plate_mm=250)
    assert (r0, r1, c0, c1) == (0, 1000, 0, 500)


def test_to_pixels_clipped():
    r = Rect(-10, -10, 300, 300)
    r0, r1, c0, c1 = r.to_pixels(100, plate_mm=250)
    assert (r0, c0) == (0, 0)
    assert (r1, c1) == (100, 100)


def test_mm_px_roundtrip():
    assert px_to_mm(mm_to_px(12.5, 2000), 2000) == pytest.approx(12.5)
    assert mm_to_px(PLATE_MM, 2000) == 2000
