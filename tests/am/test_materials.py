"""Powder material library and its couplings."""

import numpy as np
import pytest

from repro.am import (
    MATERIALS,
    BuildDataset,
    OTImageRenderer,
    ProcessParameters,
    default_parameters_for,
    make_job,
    material_for,
)


def test_library_contents():
    assert {"Ti-6Al-4V", "IN718", "AlSi10Mg", "316L"} <= set(MATERIALS)
    for material in MATERIALS.values():
        low, high = material.process_window
        assert low < material.nominal_energy_density < high
        assert material.emissivity_scale > 0
        assert material.defect_susceptibility > 0


def test_material_for_known_and_fallback():
    assert material_for(ProcessParameters(material="IN718")).name == "IN718"
    assert material_for(ProcessParameters(material="unobtainium")).name == "Ti-6Al-4V"


def test_window_position():
    ti = MATERIALS["Ti-6Al-4V"]
    low, high = ti.process_window
    assert ti.window_position(low) == 0.0
    assert ti.window_position(high) == 1.0
    assert ti.in_window(ti.nominal_energy_density)
    assert not ti.in_window(high + 1)


def test_default_parameters_land_in_window():
    for name, material in MATERIALS.items():
        params = default_parameters_for(name)
        assert params.material == name
        assert params.energy_density_j_mm3 == pytest.approx(
            material.nominal_energy_density, rel=0.01
        )


def test_emissivity_changes_rendered_brightness():
    ti_job = make_job("ti", seed=3, process=default_parameters_for("Ti-6Al-4V"))
    al_job = make_job("al", seed=3, process=default_parameters_for("AlSi10Mg"))
    renderer = OTImageRenderer(image_px=200, seed=3)
    ti_img = BuildDataset(ti_job, renderer).layer_record(0).image
    al_img = BuildDataset(al_job, renderer).layer_record(0).image
    fp = ti_job.specimens[0].footprint
    r0, r1, c0, c1 = fp.to_pixels(200)
    # aluminium emits less at its nominal energy density
    assert al_img[r0:r1, c0:c1].mean() < ti_img[r0:r1, c0:c1].mean() - 20


def test_susceptibility_scales_defect_count():
    tough = make_job("t", seed=9, process=default_parameters_for("IN718"),
                     defect_rate_per_stack=1.0)
    fragile = make_job("f", seed=9, process=default_parameters_for("AlSi10Mg"),
                       defect_rate_per_stack=1.0)
    assert len(fragile.defects) > len(tough.defects)
