"""Recoater-streak defect model."""

import numpy as np
import pytest

from repro.am import BuildDataset, OTImageRenderer, make_job
from repro.am.defects import RecoaterStreak, seed_recoater_streaks, streaks_in_layer


def test_seed_deterministic():
    a = seed_recoater_streaks(500, seed=5, expected_streaks_per_100_layers=2.0)
    b = seed_recoater_streaks(500, seed=5, expected_streaks_per_100_layers=2.0)
    assert a == b


def test_seed_rate_scales_count():
    few = seed_recoater_streaks(500, seed=5, expected_streaks_per_100_layers=0.5)
    many = seed_recoater_streaks(500, seed=5, expected_streaks_per_100_layers=8.0)
    assert len(many) > len(few)


def test_seeded_geometry_valid():
    for streak in seed_recoater_streaks(500, seed=9, expected_streaks_per_100_layers=4.0):
        assert 0 <= streak.first_layer <= streak.last_layer < 500
        assert streak.x_start_mm < streak.x_end_mm
        assert streak.width_mm > 0
        assert streak.intensity_delta < 0
        assert 0 <= streak.y_mm <= 250


def test_covers_layer():
    streak = RecoaterStreak("R", 100.0, 0.0, 250.0, 0.5, 10, 14, -0.2)
    assert not streak.covers_layer(9)
    assert streak.covers_layer(10)
    assert streak.covers_layer(14)
    assert not streak.covers_layer(15)
    assert streaks_in_layer([streak], 12) == [streak]
    assert streaks_in_layer([streak], 20) == []


def test_invalid_geometry_rejected():
    with pytest.raises(ValueError):
        RecoaterStreak("R", 0, 10.0, 5.0, 0.5, 0, 1, -0.2)
    with pytest.raises(ValueError):
        RecoaterStreak("R", 0, 0.0, 5.0, 0.5, 3, 1, -0.2)
    with pytest.raises(ValueError):
        RecoaterStreak("R", 0, 0.0, 5.0, 0.0, 0, 1, -0.2)


def test_streak_darkens_melt_not_powder():
    job = make_job("s", seed=3, defect_rate_per_stack=0.0)
    job.streaks = [RecoaterStreak("R", 125.0, 0.0, 250.0, 1.0, 0, 5, -0.3)]
    renderer = OTImageRenderer(image_px=250, seed=3)
    with_streak = BuildDataset(job, renderer).layer_record(2).image

    clean = make_job("s", seed=3, defect_rate_per_stack=0.0)
    without = BuildDataset(clean, renderer).layer_record(2).image

    band = slice(124, 127)
    diff = without[band].astype(int) - with_streak[band].astype(int)
    melted = without[band] > 60
    assert diff[melted].mean() > 30  # melt darkened
    assert np.abs(diff[~melted]).max() <= 1  # powder untouched
    # rows away from the streak identical
    assert np.array_equal(with_streak[:120], without[:120])


def test_streak_absent_outside_layer_span():
    job = make_job("s", seed=3, defect_rate_per_stack=0.0)
    job.streaks = [RecoaterStreak("R", 125.0, 0.0, 250.0, 1.0, 3, 5, -0.3)]
    renderer = OTImageRenderer(image_px=250, seed=3)
    dataset = BuildDataset(job, renderer)
    clean = make_job("s", seed=3, defect_rate_per_stack=0.0)
    clean_img = BuildDataset(clean, renderer).layer_record(0).image
    assert np.array_equal(dataset.layer_record(0).image, clean_img)


def test_make_job_streak_rate():
    job = make_job("s", seed=5, streak_rate_per_100_layers=5.0)
    assert len(job.streaks) > 0
    default = make_job("s", seed=5)
    assert default.streaks == []
