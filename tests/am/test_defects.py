"""Defect seeding: determinism, geometry, risk weighting."""

import pytest

from repro.am import (
    COLD,
    HOT,
    DefectRegion,
    defects_in_layer,
    rotating_schedule,
    seed_defects,
    standard_layout,
)


@pytest.fixture(scope="module")
def setup():
    specimens = standard_layout()
    scans = rotating_schedule(23)
    return specimens, scans


def test_deterministic_for_seed(setup):
    specimens, scans = setup
    a = seed_defects(specimens, scans, seed=42)
    b = seed_defects(specimens, scans, seed=42)
    assert a == b
    c = seed_defects(specimens, scans, seed=43)
    assert a != c


def test_zero_rate_means_no_defects(setup):
    specimens, scans = setup
    assert seed_defects(specimens, scans, seed=1, base_rate_per_stack=0.0) == []


def test_defects_inside_their_specimen(setup):
    specimens, scans = setup
    by_id = {s.specimen_id: s for s in specimens}
    for defect in seed_defects(specimens, scans, seed=7):
        footprint = by_id[defect.specimen_id].footprint
        assert footprint.contains(defect.center_x_mm, defect.center_y_mm)
        assert 0.0 <= defect.center_z_mm <= 23.0


def test_kinds_and_signs(setup):
    specimens, scans = setup
    defects = seed_defects(specimens, scans, seed=7)
    assert defects, "expected some defects at the default rate"
    for defect in defects:
        if defect.kind == COLD:
            assert defect.intensity_delta < 0
        else:
            assert defect.kind == HOT
            assert defect.intensity_delta > 0


def test_radius_profile_ellipsoidal():
    defect = DefectRegion(
        defect_id="D", specimen_id="S", kind=HOT,
        center_x_mm=0, center_y_mm=0, center_z_mm=5.0,
        radius_mm=2.0, half_depth_mm=1.0, intensity_delta=0.3,
    )
    assert defect.radius_at(5.0) == pytest.approx(2.0)  # widest at center
    assert defect.radius_at(4.0) == 0.0  # vertical extent boundary
    assert defect.radius_at(6.1) == 0.0
    mid = defect.radius_at(5.5)
    assert 0 < mid < 2.0
    assert defect.covers_layer(5.5)
    assert not defect.covers_layer(7.0)


def test_defects_in_layer_filters(setup):
    specimens, scans = setup
    defects = seed_defects(specimens, scans, seed=7)
    layer = defects_in_layer(defects, 0.5)
    assert all(d.covers_layer(0.5) for d in layer)
    assert len(layer) <= len(defects)


def test_risk_weighting_shapes_distribution(setup):
    """High-risk stacks must accumulate clearly more defects."""
    specimens, scans = setup
    defects = seed_defects(specimens, scans, seed=11, base_rate_per_stack=2.0)
    from repro.am import defect_risk

    high_risk_stacks = {s.stack_index for s in scans if defect_risk(s) > 0.8}
    low_risk_stacks = {s.stack_index for s in scans if defect_risk(s) < 0.2}
    by_stack = lambda stacks: sum(  # noqa: E731
        1 for d in defects if int(d.center_z_mm) in stacks
    )
    assert by_stack(high_risk_stacks) > 2 * max(1, by_stack(low_risk_stacks))
