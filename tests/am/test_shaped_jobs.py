"""Mixed-geometry builds: rendering and job wiring."""

import numpy as np
import pytest

from repro.am import (
    BlockShape,
    BuildDataset,
    ConeShape,
    CylinderShape,
    OTImageRenderer,
    PolygonShape,
    make_shaped_job,
)

PX = 250


@pytest.fixture(scope="module")
def shaped_job():
    return make_shaped_job("shaped", seed=7, defect_rate_per_stack=0.0)


@pytest.fixture(scope="module")
def dataset(shaped_job):
    return BuildDataset(shaped_job, OTImageRenderer(image_px=PX, seed=7), cache=True)


def test_layout_mixes_shapes(shaped_job):
    kinds = [type(s.shape).__name__ if s.shape else "Block" for s in shaped_job.specimens]
    assert "Block" in kinds
    assert "CylinderShape" in kinds
    assert "ConeShape" in kinds
    assert "PolygonShape" in kinds


def test_parameters_ship_shapes(shaped_job):
    payload = shaped_job.layer_parameters(0).as_payload()
    shapes = payload["specimen_shapes"]
    assert set(shapes) == {s.specimen_id for s in shaped_job.specimens}
    assert shapes["S00"] is None  # block slots ship no shape
    assert isinstance(shapes["S01"], CylinderShape)


def test_unshaped_job_ships_no_shapes(test_job):
    assert "specimen_shapes" not in test_job.layer_parameters(0).as_payload()


def test_cylinder_corners_stay_powder(shaped_job, dataset):
    record = dataset.layer_record(2)
    cylinder_specimen = shaped_job.specimens[1]
    r0, r1, c0, c1 = cylinder_specimen.footprint.to_pixels(PX)
    crop = record.image[r0:r1, c0:c1]
    assert crop[:2, :2].mean() < 30  # powder corner
    mid_r, mid_c = crop.shape[0] // 2, crop.shape[1] // 2
    assert crop[mid_r - 1 : mid_r + 1, mid_c - 1 : mid_c + 1].mean() > 100  # melt


def test_cone_section_shrinks_with_height(shaped_job, dataset):
    cone_specimen = shaped_job.specimens[2]
    assert isinstance(cone_specimen.shape, ConeShape)
    r0, r1, c0, c1 = cone_specimen.footprint.to_pixels(PX)

    def melted_px(layer):
        crop = dataset.layer_record(layer).image[r0:r1, c0:c1]
        return int((crop > 80).sum())

    low = melted_px(0)
    # 5 mm higher: 125 layers at 0.04 mm
    high = melted_px(124)
    assert high < low


def test_blocks_render_like_unshaped(shaped_job, dataset, test_job, renderer):
    """Slot 0 is a plain block: pixels must match the all-block build."""
    record = dataset.layer_record(0)
    reference = BuildDataset(
        make_shaped_job("shaped-ref", seed=7, defect_rate_per_stack=0.0),
        OTImageRenderer(image_px=PX, seed=7),
    ).layer_record(0)
    block = shaped_job.specimens[0]
    r0, r1, c0, c1 = block.footprint.to_pixels(PX)
    assert np.array_equal(record.image[r0:r1, c0:c1], reference.image[r0:r1, c0:c1])


def test_defect_on_shaped_part_does_not_smudge_powder():
    job = make_shaped_job("shaped-d", seed=7, defect_rate_per_stack=1.5)
    clean = make_shaped_job("shaped-d", seed=7, defect_rate_per_stack=0.0)
    renderer = OTImageRenderer(image_px=PX, seed=7)
    dirty_img = BuildDataset(job, renderer).layer_record(3).image
    clean_img = BuildDataset(clean, renderer).layer_record(3).image
    # wherever the clean image is powder, the dirty one must be powder too
    powder = clean_img < 25
    assert np.abs(
        dirty_img[powder].astype(int) - clean_img[powder].astype(int)
    ).max() <= 1
