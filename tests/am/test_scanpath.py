"""Scan-path synthesis invariants: geometry, energy, determinism.

The thermal workloads' ground truth comes from
:mod:`repro.am.scanpath`'s digital twin, so its physical invariants are
load-bearing: hatch spacing must hold at every scan angle, deposited
energy must equal the tracks' line-energy budget exactly (conservation
is what makes the estimator's energy coupling identifiable), and the
whole synthesis must be a pure function of its config.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.am import Rect
from repro.am.scanpath import (
    MeltPoolOptics,
    ThermalBuildConfig,
    command_schedule,
    deposit_energy,
    raster_tracks,
    render_meltpool_frame,
    suggest_overheat_threshold,
    synthesize_laser_calibration,
    synthesize_thermal_build,
)

RECT = Rect(5.0, 5.0, 55.0, 55.0)

_angles = st.floats(min_value=0.0, max_value=179.9, allow_nan=False)
_hatches = st.floats(min_value=0.5, max_value=5.0, allow_nan=False)


class TestRasterTracks:
    @given(angle=_angles, hatch=_hatches)
    @settings(max_examples=100, deadline=None)
    def test_hatch_spacing_between_adjacent_tracks(self, angle, hatch):
        """Perpendicular distance between consecutive tracks == hatch."""
        tracks = raster_tracks(RECT, angle, hatch, 280.0, 1200.0)
        if len(tracks) < 2:
            return
        # project each track's anchor onto the hatch normal
        normal = (-math.sin(math.radians(angle)), math.cos(math.radians(angle)))
        offsets = sorted(
            t.x0_mm * normal[0] + t.y0_mm * normal[1] for t in tracks
        )
        for a, b in zip(offsets, offsets[1:]):
            assert math.isclose(b - a, hatch, rel_tol=1e-9, abs_tol=1e-9)

    @given(angle=_angles, hatch=_hatches)
    @settings(max_examples=100, deadline=None)
    def test_tracks_clipped_to_rect(self, angle, hatch):
        tracks = raster_tracks(RECT, angle, hatch, 280.0, 1200.0)
        assert tracks, "a 50 mm square must contain at least one track"
        eps = 1e-6
        for t in tracks:
            for x, y in ((t.x0_mm, t.y0_mm), (t.x1_mm, t.y1_mm)):
                assert RECT.x_min - eps <= x <= RECT.x_max + eps
                assert RECT.y_min - eps <= y <= RECT.y_max + eps

    def test_serpentine_alternates_direction(self):
        tracks = raster_tracks(RECT, 0.0, 2.0, 280.0, 1200.0)
        directions = [np.sign(t.x1_mm - t.x0_mm) for t in tracks]
        assert all(a == -b for a, b in zip(directions, directions[1:]))

    def test_track_energy_is_line_energy_times_length(self):
        (track, *_rest) = raster_tracks(RECT, 0.0, 2.0, 280.0, 1200.0)
        assert math.isclose(track.line_energy_j_mm, 280.0 / 1200.0)
        assert math.isclose(
            track.energy_j, track.length_mm * 280.0 / 1200.0, rel_tol=1e-12
        )


class TestDepositEnergy:
    @given(angle=_angles)
    @settings(max_examples=50, deadline=None)
    def test_energy_conserved_exactly(self, angle):
        """Every sampled joule lands in some cell: sum(grid) == budget."""
        tracks = raster_tracks(RECT, angle, 2.0, 280.0, 1200.0)
        grid = deposit_energy(tracks, 40, 1.5, sample_step_mm=0.5)
        budget = sum(t.energy_j for t in tracks)
        assert math.isclose(float(grid.sum()), budget, rel_tol=1e-9)

    def test_energy_lands_inside_the_part(self):
        rect = Rect(10.0, 10.0, 20.0, 20.0)
        tracks = raster_tracks(rect, 45.0, 1.0, 280.0, 1200.0)
        grid = deposit_energy(tracks, 40, 1.5, sample_step_mm=0.25)
        # cells clearly outside the part (plus midpoint slack) stay cold
        assert float(grid[:5, :].sum()) == 0.0
        assert float(grid[:, 15:].sum()) == 0.0


class TestCommandSchedule:
    def test_deterministic_in_seed(self):
        a = command_schedule(12, 280.0, 1200.0, seed=3)
        b = command_schedule(12, 280.0, 1200.0, seed=3)
        assert a == b
        c = command_schedule(12, 280.0, 1200.0, seed=4)
        assert a != c

    def test_commanded_constant_actual_drifts(self):
        schedule = command_schedule(30, 280.0, 1200.0, seed=3, drift_pct=0.03)
        for commanded, actual in schedule:
            assert commanded.power_w == 280.0
            assert commanded.speed_mm_s == 1200.0
        drifted = [a.power_w for _, a in schedule]
        assert len(set(drifted)) > 1
        assert all(abs(p - 280.0) / 280.0 < 0.25 for p in drifted)

    def test_spike_scales_commanded_and_actual(self):
        schedule = command_schedule(
            10, 280.0, 1200.0, seed=3, spike_layers=(4, 5), spike_factor=1.6
        )
        assert schedule[4][0].power_w == pytest.approx(280.0 * 1.6)
        assert schedule[3][0].power_w == 280.0
        assert schedule[6][0].power_w == 280.0


class TestMeltPoolRendering:
    def test_peak_scales_with_amplitude(self):
        optics = MeltPoolOptics(noise_std=0.0)
        tracks = raster_tracks(Rect(5, 5, 25, 25), 0.0, 2.0, 280.0, 1200.0)
        lo = render_meltpool_frame(tracks, 60, 2.0, optics)
        hot = raster_tracks(Rect(5, 5, 25, 25), 0.0, 2.0, 280.0 * 2, 1200.0)
        hi = render_meltpool_frame(hot, 60, 2.0, optics)
        ratio = float(hi.max()) / float(lo.max())
        # amplitude doubles exactly; the sampled pixel peak also benefits
        # from the wider sigma (pixel centers sit closer to the ridge in
        # Gaussian units), so the observed ratio lands slightly above 2
        assert 2.0 <= ratio < 2.2
        assert float(hi.max()) <= optics.amplitude(560.0, 1200.0)


class TestSynthesizeBuild:
    def test_build_is_deterministic(self):
        config = ThermalBuildConfig(layers=4, seed=9, dropout_rate=0.05)
        a = synthesize_thermal_build(config)
        b = synthesize_thermal_build(config)
        for ra, rb in zip(a.records, b.records):
            np.testing.assert_array_equal(ra.true_temp_cells, rb.true_temp_cells)
            np.testing.assert_array_equal(
                ra.measured_temp_cells, rb.measured_temp_cells
            )
            np.testing.assert_array_equal(ra.meltpool_image, rb.meltpool_image)

    def test_energy_next_matches_following_layers_plan(self):
        build = synthesize_thermal_build(ThermalBuildConfig(layers=4, seed=9))
        for cur, nxt in zip(build.records, build.records[1:]):
            np.testing.assert_array_equal(cur.energy_next_cells, nxt.energy_cells)
        assert float(build.records[-1].energy_next_cells.sum()) == 0.0

    def test_dropout_rate_produces_nans(self):
        build = synthesize_thermal_build(
            ThermalBuildConfig(layers=4, seed=9, dropout_rate=0.1)
        )
        fractions = [
            float(np.isnan(r.measured_temp_cells).mean()) for r in build.records
        ]
        assert all(0.0 < f < 0.3 for f in fractions)
        for r in build.records:
            assert not np.isnan(r.true_temp_cells).any()

    def test_spike_crosses_suggested_threshold(self):
        config = ThermalBuildConfig(layers=12, seed=11, spike_layers=(8, 9))
        build = synthesize_thermal_build(config)
        threshold = suggest_overheat_threshold(build)
        spike_max = max(
            float(build.records[k].true_temp_cells.max()) for k in (8, 9)
        )
        calm_max = max(
            float(r.true_temp_cells.max())
            for r in build.records if r.layer < 8
        )
        assert calm_max <= threshold < spike_max

    def test_calibration_sweep_is_labelled_and_deterministic(self):
        config = ThermalBuildConfig(layers=2, seed=5)
        a = synthesize_laser_calibration(config)
        b = synthesize_laser_calibration(config)
        assert len(a) >= 9
        powers = {s.power_w for s in a}
        speeds = {s.speed_mm_s for s in a}
        assert len(powers) >= 3 and len(speeds) >= 3
        for sa, sb in zip(a, b):
            assert sa.power_w == sb.power_w
            np.testing.assert_array_equal(sa.image, sb.image)
