"""Print jobs and replayable datasets."""

import numpy as np
import pytest

from repro.am import BuildDataset, OTImageRenderer, ProcessParameters, make_job


def test_make_job_paper_shape(test_job):
    assert len(test_job.specimens) == 12
    assert len(test_job.stack_scans) == 23
    assert test_job.num_layers == 575  # 23 mm / 0.04 mm


def test_z_and_stack_of_layer(test_job):
    assert test_job.z_of_layer(0) == 0.0
    assert test_job.z_of_layer(25) == pytest.approx(1.0)
    assert test_job.stack_of_layer(0).stack_index == 0
    assert test_job.stack_of_layer(25).stack_index == 1
    assert test_job.stack_of_layer(574).stack_index == 22


def test_layer_parameters_payload(test_job):
    params = test_job.layer_parameters(3)
    payload = params.as_payload()
    assert payload["z_mm"] == pytest.approx(0.12)
    assert payload["stack_index"] == 0
    assert "specimen_map" in payload
    assert len(payload["specimen_map"]) == 12
    assert payload["param_material"] == "Ti-6Al-4V"
    assert payload["param_energy_density_j_mm3"] > 0


def test_energy_density_formula():
    p = ProcessParameters(
        laser_power_w=280, scan_speed_mm_s=1200, hatch_distance_mm=0.14,
        layer_thickness_mm=0.04,
    )
    assert p.energy_density_j_mm3 == pytest.approx(280 / (1200 * 0.14 * 0.04))


def test_shrunk_job():
    job = make_job("small", specimen_height_mm=2.0)
    assert job.num_layers == 50
    assert len(job.stack_scans) == 2


def test_dataset_records(test_job, renderer):
    dataset = BuildDataset(test_job, renderer)
    assert len(dataset) == 575
    record = dataset.layer_record(5)
    assert record.layer == 5
    assert record.job_id == test_job.job_id
    assert record.image.shape == (renderer.image_px, renderer.image_px)
    assert record.truth_mask is None


def test_dataset_truth_opt_in(test_job, renderer):
    dataset = BuildDataset(test_job, renderer, with_truth=True)
    record = dataset.layer_record(0)
    assert record.truth_mask is not None
    assert record.truth_mask.shape == record.image.shape


def test_dataset_cache_returns_same_object(test_job, renderer):
    dataset = BuildDataset(test_job, renderer, cache=True)
    assert dataset.layer_record(1) is dataset.layer_record(1)


def test_dataset_determinism(test_job):
    a = BuildDataset(test_job, OTImageRenderer(image_px=200, seed=9)).layer_record(2)
    b = BuildDataset(test_job, OTImageRenderer(image_px=200, seed=9)).layer_record(2)
    assert np.array_equal(a.image, b.image)


def test_dataset_bounds(test_job, renderer):
    dataset = BuildDataset(test_job, renderer)
    with pytest.raises(IndexError):
        dataset.layer_record(575)
    with pytest.raises(IndexError):
        dataset.layer_record(-1)


def test_records_iteration(test_job, renderer):
    dataset = BuildDataset(test_job, renderer)
    got = list(dataset.records(3, 6))
    assert [r.layer for r in got] == [3, 4, 5]
