"""Cross-section shapes and rasterization."""

import numpy as np
import pytest

from repro.am import (
    BlockShape,
    ConeShape,
    CylinderShape,
    PolygonShape,
    Rect,
    shape_mask_px,
)


class TestBlockShape:
    def test_contains_is_footprint(self):
        shape = BlockShape(Rect(10, 10, 20, 30))
        x = np.array([15.0, 5.0, 20.0])
        y = np.array([20.0, 20.0, 20.0])
        assert shape.contains(x, y, 0.0).tolist() == [True, False, False]

    def test_bounding_rect(self):
        rect = Rect(0, 0, 5, 5)
        assert BlockShape(rect).bounding_rect() == rect


class TestCylinderShape:
    def test_contains_circle(self):
        shape = CylinderShape(10, 10, 3)
        assert shape.contains(np.array(10.0), np.array(10.0), 0.0)
        assert shape.contains(np.array(13.0), np.array(10.0), 5.0)  # boundary
        assert not shape.contains(np.array(13.1), np.array(10.0), 0.0)

    def test_constant_with_height(self):
        shape = CylinderShape(0, 0, 2)
        for z in (0.0, 10.0, 100.0):
            assert shape.contains(np.array(1.0), np.array(1.0), z)

    def test_area(self):
        shape = CylinderShape(10, 10, 3)
        assert shape.area_at(0.0, samples=256) == pytest.approx(np.pi * 9, rel=0.05)

    def test_invalid_radius(self):
        with pytest.raises(ValueError):
            CylinderShape(0, 0, 0)


class TestConeShape:
    def test_radius_shrinks(self):
        shape = ConeShape(0, 0, base_radius=4, height_mm=10, tip_fraction=0.5)
        assert shape.radius_at(0) == 4.0
        assert shape.radius_at(10) == pytest.approx(2.0)
        assert shape.radius_at(5) == pytest.approx(3.0)
        assert shape.radius_at(-1) == 0.0
        assert shape.radius_at(11) == 0.0

    def test_contains_narrows(self):
        shape = ConeShape(0, 0, base_radius=4, height_mm=10, tip_fraction=0.0)
        x, y = np.array(3.0), np.array(0.0)
        assert shape.contains(x, y, 0.0)
        assert not shape.contains(x, y, 9.0)

    def test_closed_tip_empty_slice(self):
        shape = ConeShape(0, 0, base_radius=4, height_mm=10, tip_fraction=0.0)
        mask = shape.contains(np.zeros(3), np.zeros(3), 10.0)
        assert not mask.any()

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            ConeShape(0, 0, 0, 10)
        with pytest.raises(ValueError):
            ConeShape(0, 0, 1, 10, tip_fraction=2.0)


class TestPolygonShape:
    def test_square(self):
        shape = PolygonShape([(0, 0), (10, 0), (10, 10), (0, 10)])
        assert shape.contains(np.array(5.0), np.array(5.0), 0.0)
        assert not shape.contains(np.array(15.0), np.array(5.0), 0.0)

    def test_concave_polygon(self):
        # an L-shape: the notch must be outside
        shape = PolygonShape([(0, 0), (10, 0), (10, 4), (4, 4), (4, 10), (0, 10)])
        assert shape.contains(np.array(2.0), np.array(8.0), 0.0)
        assert shape.contains(np.array(8.0), np.array(2.0), 0.0)
        assert not shape.contains(np.array(8.0), np.array(8.0), 0.0)

    def test_hexagon_area(self):
        radius = 5.0
        verts = [
            (radius * np.cos(np.pi / 3 * k) + 10, radius * np.sin(np.pi / 3 * k) + 10)
            for k in range(6)
        ]
        shape = PolygonShape(verts)
        expected = 3 * np.sqrt(3) / 2 * radius**2
        assert shape.area_at(0.0, samples=256) == pytest.approx(expected, rel=0.05)

    def test_too_few_vertices(self):
        with pytest.raises(ValueError):
            PolygonShape([(0, 0), (1, 1)])


def test_shape_mask_px_matches_geometry():
    shape = CylinderShape(5.0, 5.0, 4.0)
    # 1 px per mm over the 0..10mm window
    mask = shape_mask_px(shape, 0.0, 0, 10, 0, 10, px_per_mm=1.0)
    assert mask.shape == (10, 10)
    assert mask[5, 5]
    assert not mask[0, 0]
    assert mask.sum() == pytest.approx(np.pi * 16, rel=0.2)
