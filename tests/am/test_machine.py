"""PBF-LB machine simulator: execution, pacing, control loop."""

import pytest

from repro.am import ControlHandle, OTImageRenderer, PBFLBMachine, make_job


@pytest.fixture(scope="module")
def machine():
    return PBFLBMachine(renderer=OTImageRenderer(image_px=200, seed=7))


@pytest.fixture(scope="module")
def small_job():
    return make_job("J-small", seed=7, specimen_height_mm=0.4)  # 10 layers


def test_run_completes_all_layers(machine, small_job):
    seen = []
    outcome = machine.run(small_job, on_layer=seen.append)
    assert outcome.layers_completed == 10
    assert outcome.total_layers == 10
    assert not outcome.terminated_early
    assert [r.layer for r in seen] == list(range(10))


def test_max_layers_cap(machine, small_job):
    outcome = machine.run(small_job, max_layers=4)
    assert outcome.layers_completed == 4
    assert outcome.total_layers == 4


def test_early_termination_via_control(machine, small_job):
    control = ControlHandle()
    seen = []

    def on_layer(record):
        seen.append(record)
        if record.layer == 2:
            control.request_termination("cluster volume exceeded")

    outcome = machine.run(small_job, control=control, on_layer=on_layer)
    assert outcome.terminated_early
    assert outcome.termination_reason == "cluster volume exceeded"
    assert outcome.layers_completed == 3  # stops before the next layer


def test_control_first_reason_wins():
    control = ControlHandle()
    control.request_termination("first")
    control.request_termination("second")
    assert control.reason == "first"


def test_realtime_pacing_scaled(small_job):
    machine = PBFLBMachine(
        renderer=OTImageRenderer(image_px=200, seed=7),
        recoat_gap_s=3.0,
        time_scale=0.001,  # melt ~89 s/layer and 3 s recoat, 1000x compressed
    )
    expected_per_layer = machine.melt_time_s(small_job) * 0.001
    outcome = machine.run(small_job, realtime=True, max_layers=3)
    # 3 melts plus 2 recoat gaps, all scaled
    assert outcome.wall_seconds >= 3 * expected_per_layer + 2 * 3.0 * 0.001


def test_melt_time_positive(machine, small_job):
    assert machine.melt_time_s(small_job) > 0


def test_layer_stream(machine, small_job):
    records = list(machine.layer_stream(small_job, max_layers=5))
    assert [r.layer for r in records] == list(range(5))


def test_invalid_time_scale():
    with pytest.raises(ValueError):
        PBFLBMachine(time_scale=0)


def test_with_truth_flag(machine, small_job):
    records = list(machine.layer_stream(small_job, max_layers=1, with_truth=True))
    assert records[0].truth_mask is not None


def test_run_stamps_completion_time(machine, small_job):
    seen = []
    machine.run(small_job, on_layer=seen.append, max_layers=3)
    stamps = [r.completed_at for r in seen]
    assert all(s is not None for s in stamps)
    assert stamps == sorted(stamps)


def test_layer_stream_has_no_stamp(machine, small_job):
    records = list(machine.layer_stream(small_job, max_layers=2))
    assert all(r.completed_at is None for r in records)
