"""OT image synthesis: determinism, structure, ground truth."""

import numpy as np
import pytest

from repro.am import (
    COLD,
    HOT,
    DefectRegion,
    OTImageRenderer,
    ProcessParameters,
    StackScan,
    standard_layout,
)

PX = 250


@pytest.fixture(scope="module")
def specimens():
    return standard_layout()


@pytest.fixture(scope="module")
def scan():
    return StackScan(0, 45.0)


def render(specimens, scan, defects=(), seed=3, process=None, px=PX):
    renderer = OTImageRenderer(image_px=px, seed=seed)
    return renderer.render(0, 0.0, specimens, scan, list(defects), process)


def test_shape_and_dtype(specimens, scan):
    image = render(specimens, scan)
    assert image.shape == (PX, PX)
    assert image.dtype == np.uint8


def test_deterministic_per_seed(specimens, scan):
    a = render(specimens, scan, seed=5)
    b = render(specimens, scan, seed=5)
    c = render(specimens, scan, seed=6)
    assert np.array_equal(a, b)
    assert not np.array_equal(a, c)


def test_melt_brighter_than_powder(specimens, scan):
    image = render(specimens, scan)
    fp = specimens[0].footprint
    r0, r1, c0, c1 = fp.to_pixels(PX)
    melt_mean = image[r0:r1, c0:c1].mean()
    powder_mean = image[:10, :10].mean()
    assert melt_mean > powder_mean + 50


def test_cold_defect_darkens(specimens, scan):
    defect = DefectRegion(
        "D0", "S00", COLD,
        center_x_mm=specimens[0].footprint.center[0],
        center_y_mm=specimens[0].footprint.center[1],
        center_z_mm=0.0, radius_mm=4.0, half_depth_mm=1.0, intensity_delta=-0.4,
    )
    clean = render(specimens, scan)
    dirty = render(specimens, scan, [defect])
    scale = PX / 250.0
    cx = int(defect.center_x_mm * scale)
    cy = int(defect.center_y_mm * scale)
    patch = (slice(cy - 2, cy + 2), slice(cx - 2, cx + 2))
    assert dirty[patch].mean() < clean[patch].mean() - 30


def test_hot_defect_brightens(specimens, scan):
    defect = DefectRegion(
        "D0", "S00", HOT,
        center_x_mm=specimens[0].footprint.center[0],
        center_y_mm=specimens[0].footprint.center[1],
        center_z_mm=0.0, radius_mm=4.0, half_depth_mm=1.0, intensity_delta=0.4,
    )
    clean = render(specimens, scan)
    dirty = render(specimens, scan, [defect])
    scale = PX / 250.0
    cx = int(defect.center_x_mm * scale)
    cy = int(defect.center_y_mm * scale)
    patch = (slice(cy - 2, cy + 2), slice(cx - 2, cx + 2))
    assert dirty[patch].mean() > clean[patch].mean() + 30


def test_defect_outside_vertical_extent_invisible(specimens, scan):
    defect = DefectRegion(
        "D0", "S00", HOT,
        center_x_mm=specimens[0].footprint.center[0],
        center_y_mm=specimens[0].footprint.center[1],
        center_z_mm=10.0, radius_mm=4.0, half_depth_mm=0.5, intensity_delta=0.4,
    )
    renderer = OTImageRenderer(image_px=PX, seed=3)
    at_layer = renderer.render(0, 10.0, specimens, scan, [defect])
    away = renderer.render(0, 0.0, specimens, scan, [defect])
    clean = renderer.render(0, 0.0, specimens, scan, [])
    assert np.array_equal(away, clean)
    assert not np.array_equal(at_layer, clean)


def test_energy_density_scales_brightness(specimens, scan):
    low = ProcessParameters(laser_power_w=180.0)
    high = ProcessParameters(laser_power_w=340.0)
    dim = render(specimens, scan, process=low)
    bright = render(specimens, scan, process=high)
    fp = specimens[0].footprint
    r0, r1, c0, c1 = fp.to_pixels(PX)
    assert bright[r0:r1, c0:c1].mean() > dim[r0:r1, c0:c1].mean() + 20


def test_ground_truth_mask_covers_defect(specimens):
    defect = DefectRegion(
        "D0", "S00", HOT,
        center_x_mm=30.0, center_y_mm=30.0, center_z_mm=0.0,
        radius_mm=5.0, half_depth_mm=1.0, intensity_delta=0.3,
    )
    renderer = OTImageRenderer(image_px=PX, seed=1)
    mask = renderer.ground_truth_mask(0.0, [defect])
    assert mask.dtype == bool
    scale = PX / 250.0
    assert mask[int(30 * scale), int(30 * scale)]
    assert mask.sum() == pytest.approx(np.pi * (5 * scale) ** 2, rel=0.3)
    assert not renderer.ground_truth_mask(5.0, [defect]).any()


def test_image_px_validation():
    with pytest.raises(ValueError):
        OTImageRenderer(image_px=4)
