"""Scan schedule and gas-flow risk model."""

import pytest

from repro.am import StackScan, defect_risk, rotating_schedule


def test_angle_to_gas_flow_range():
    for angle in range(0, 360, 5):
        scan = StackScan(0, float(angle))
        assert 0.0 <= scan.angle_to_gas_flow_deg <= 90.0


def test_parallel_and_perpendicular():
    # gas flow axis is vertical (270 deg); a 90-deg scan runs along it
    assert StackScan(0, 90.0).angle_to_gas_flow_deg == pytest.approx(0.0)
    assert StackScan(0, 270.0).angle_to_gas_flow_deg == pytest.approx(0.0)
    assert StackScan(0, 0.0).angle_to_gas_flow_deg == pytest.approx(90.0)
    assert StackScan(0, 180.0).angle_to_gas_flow_deg == pytest.approx(90.0)


def test_risk_bounds_and_extremes():
    risks = [defect_risk(StackScan(0, float(a))) for a in range(0, 180, 5)]
    assert all(0.0 <= r <= 1.0 for r in risks)
    assert defect_risk(StackScan(0, 90.0)) == pytest.approx(1.0)  # parallel: worst
    assert defect_risk(StackScan(0, 0.0)) == pytest.approx(0.0)  # perpendicular: best


def test_risk_monotone_from_perpendicular_to_parallel():
    risks = [defect_risk(StackScan(0, float(a))) for a in range(0, 91, 5)]
    assert risks == sorted(risks)


def test_rotating_schedule_covers_range():
    scans = rotating_schedule(23)
    assert len(scans) == 23
    assert [s.stack_index for s in scans] == list(range(23))
    angles = {s.angle_deg for s in scans}
    assert len(angles) >= 12  # sweeps a substantial angular range
    assert all(0 <= s.angle_deg < 180 for s in scans)


def test_schedule_starts_at_high_risk():
    scans = rotating_schedule(23)
    assert defect_risk(scans[0]) == pytest.approx(1.0)
