"""The HTTP control-plane API, driven end to end over a real socket.

``TestFleetSmoke`` is the acceptance scenario from the fleet design: two
tenants run three concurrent jobs to completion with zero divergence
against standalone runs, a fourth submission over quota is rejected with
a structured 429, a long job is cancelled through DELETE within the
latency budget, and one ``/metrics`` scrape exposes every job's
``strata_*`` series behind ``job``/``tenant`` labels.
"""

import json
import time
import urllib.error
import urllib.request

import pytest

from repro.fleet import FleetConfig, FleetHTTPServer, FleetService, run_standalone

SMALL = {"layers": 3, "image_px": 96, "cell_edge": 8, "window": 3}
LONG = {"layers": 60, "image_px": 200, "cell_edge": 8, "window": 3}


@pytest.fixture(scope="module")
def server():
    service = FleetService(
        FleetConfig(
            worker_budget=8,
            max_jobs_per_tenant=2,
            max_parallelism_per_tenant=8,
            tick_s=0.05,
            port=0,
        )
    )
    srv = FleetHTTPServer(service, port=0)
    srv.start()
    yield srv
    srv.stop(drain_timeout=30.0)


def request(server, method, path, body=None, ctype="application/json"):
    data = body if isinstance(body, (bytes, type(None))) else json.dumps(body).encode()
    req = urllib.request.Request(
        server.url + path,
        method=method,
        data=data,
        headers={"Content-Type": ctype} if data else {},
    )
    try:
        with urllib.request.urlopen(req, timeout=30) as resp:
            return resp.status, json.loads(resp.read() or b"{}")
    except urllib.error.HTTPError as err:
        payload = err.read()
        return err.code, json.loads(payload) if payload else {}


def get_text(server, path):
    with urllib.request.urlopen(server.url + path, timeout=30) as resp:
        return resp.status, resp.read().decode()


def wait_terminal(server, job_id, timeout=90.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        status, body = request(server, "GET", f"/jobs/{job_id}")
        assert status == 200
        if body["state"] in ("COMPLETED", "FAILED", "CANCELLED"):
            return body
        time.sleep(0.05)
    raise AssertionError(f"job {job_id} still {body['state']} after {timeout}s")


class TestFleetSmoke:
    def test_three_tenant_jobs_quota_cancel_and_metrics(self, server):
        # -- three concurrent jobs from two tenants -------------------------
        elastic = {"plan": True, "elastic": {"max_parallelism": 2}}
        specs = [
            ("acme", {**SMALL, "seed": 11}, elastic),
            # the streak pipeline has no keyed replica group — runs static
            ("acme", {**SMALL, "kind": "streaks", "layers": 4, "seed": 12},
             {"plan": True}),
            ("zenith", {**SMALL, "seed": 13}, elastic),
        ]
        jobs = []
        for tenant, workload, deploy in specs:
            status, body = request(
                server, "POST", "/jobs",
                {"tenant": tenant, "workload": workload, "deploy": deploy},
            )
            assert status == 201, body
            assert body["state"] in ("ADMITTED", "RUNNING")
            jobs.append((body["job_id"], tenant, workload))

        # -- 4th job for a tenant already at its 2-job quota: HTTP 429 ------
        status, body = request(
            server, "POST", "/jobs", {"tenant": "acme", "workload": SMALL}
        )
        assert status == 429
        assert body["code"] == "tenant-jobs-quota"
        assert body["detail"]["max_jobs_per_tenant"] == 2
        assert "acme" in body["message"]

        # -- all three complete with divergence 0 vs standalone -------------
        for job_id, _, workload in jobs:
            final = wait_terminal(server, job_id)
            assert final["state"] == "COMPLETED", final["reason"]
            assert final["result"]["result_ids"] == run_standalone(workload)

        # -- DELETE cancels a running job within the 2s budget --------------
        status, body = request(
            server, "POST", "/jobs", {"tenant": "acme", "workload": LONG}
        )
        assert status == 201
        victim = body["job_id"]
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline:
            if request(server, "GET", f"/jobs/{victim}")[1]["state"] == "RUNNING":
                break
            time.sleep(0.02)
        started = time.monotonic()
        status, body = request(server, "DELETE", f"/jobs/{victim}")
        elapsed = time.monotonic() - started
        assert status == 200
        assert body["state"] == "CANCELLED"
        assert elapsed < 2.0, f"cancel took {elapsed:.2f}s"

        # -- one scrape exposes every job, labelled -------------------------
        status, text = get_text(server, "/metrics")
        assert status == 200
        for job_id, tenant, _ in jobs:
            labelled = [
                line for line in text.splitlines()
                if line.startswith("strata_")
                and f'job="{job_id}"' in line
                and f'tenant="{tenant}"' in line
            ]
            assert labelled, f"no strata_* series for {job_id}"
        assert "fleet_jobs_submitted_total" in text
        assert 'fleet_jobs_rejected_total{code="tenant-jobs-quota"}' in text


class TestRoutes:
    def test_healthz_reports_version(self, server):
        status, body = request(server, "GET", "/healthz")
        assert status == 200
        assert body["status"] == "ok"
        assert body["version"] == server.service.version
        assert body["worker_budget"] == 8

    def test_toml_submission_body(self, server):
        toml = (
            'tenant = "toml-tenant"\n'
            "[workload]\nlayers = 2\nimage_px = 96\ncell_edge = 8\nwindow = 3\n"
            "[deploy.plan]\nparallelism = 1\n"
        )
        status, body = request(
            server, "POST", "/jobs", toml.encode(), ctype="application/toml"
        )
        assert status == 201
        assert body["tenant"] == "toml-tenant"
        wait_terminal(server, body["job_id"])

    def test_list_filters_by_tenant_and_state(self, server):
        status, body = request(server, "GET", "/jobs?tenant=toml-tenant")
        assert status == 200
        assert body["jobs"]
        assert all(j["tenant"] == "toml-tenant" for j in body["jobs"])
        status, body = request(server, "GET", "/jobs?state=PENDING&tenant=nobody")
        assert body["jobs"] == []

    def test_unknown_job_404(self, server):
        assert request(server, "GET", "/jobs/job-missing")[0] == 404
        assert request(server, "DELETE", "/jobs/job-missing")[0] == 404

    def test_unknown_route_404(self, server):
        assert request(server, "GET", "/nope")[0] == 404
        assert request(server, "POST", "/jobs/extra")[0] == 404

    def test_malformed_bodies_400(self, server):
        status, body = request(
            server, "POST", "/jobs", b"{not json", ctype="application/json"
        )
        assert status == 400
        assert body["code"] == "invalid-submission"
        status, body = request(
            server, "POST", "/jobs", b"= bad", ctype="application/toml"
        )
        assert status == 400
        status, body = request(
            server, "POST", "/jobs", {"deploy": {"elastic": {"max_par": 2}}}
        )
        assert status == 400
        assert "elastic.max_par" in body["message"]

    def test_cancel_completed_job_409(self, server):
        status, body = request(
            server, "POST", "/jobs", {"workload": {**SMALL, "layers": 2}}
        )
        job_id = body["job_id"]
        wait_terminal(server, job_id)
        status, body = request(server, "DELETE", f"/jobs/{job_id}")
        assert status == 409
        assert body["code"] == "not-cancellable"
