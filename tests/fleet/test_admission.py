"""Admission control: quotas, rejection codes, parallelism accounting."""

import pytest

from repro.fleet import (
    AdmissionController,
    AdmissionError,
    FleetConfig,
    JobRecord,
    JobRegistry,
    new_job_id,
    requested_parallelism,
)
from repro.fleet.registry import CANCELLED, PENDING  # noqa: F401
from repro.kvstore import MemoryStore


class TestRequestedParallelism:
    def test_default_deployment_is_one(self):
        assert requested_parallelism({}) == 1
        assert requested_parallelism({"plan": True}) == 1

    def test_static_plan_charged_declared_parallelism(self):
        assert requested_parallelism({"plan": {"parallelism": 3}}) == 3

    def test_elastic_charged_upper_bound(self):
        assert requested_parallelism({"elastic": {"max_parallelism": 6}}) == 6
        assert requested_parallelism({"elastic": True}) == 4  # config default
        assert requested_parallelism({"elastic": {}}) == 4


def make_controller(**cfg):
    config = FleetConfig(**cfg)
    registry = JobRegistry(MemoryStore())
    return config, registry, AdmissionController(config, registry)


def admit_job(registry, tenant, parallelism=1):
    record = JobRecord(
        job_id=new_job_id(), tenant=tenant, parallelism=parallelism
    )
    registry.register(record)
    return record


class TestQuotas:
    def test_admits_within_quota(self):
        _, _, controller = make_controller()
        decision = controller.decide("t1", 2)
        assert decision.admitted
        decision.raise_if_rejected()  # no-op when admitted

    def test_job_bigger_than_whole_budget_rejected(self):
        _, _, controller = make_controller(worker_budget=4)
        decision = controller.decide("t1", 5)
        assert not decision.admitted
        assert decision.code == "job-exceeds-budget"
        assert decision.detail == {"requested": 5, "worker_budget": 4}

    def test_concurrent_jobs_quota(self):
        _, registry, controller = make_controller(max_jobs_per_tenant=2)
        admit_job(registry, "t1")
        admit_job(registry, "t1")
        decision = controller.decide("t1", 1)
        assert decision.code == "tenant-jobs-quota"
        assert decision.detail["active_jobs"] == 2
        # a different tenant is unaffected
        assert controller.decide("t2", 1).admitted

    def test_parallelism_quota_sums_active_jobs(self):
        _, registry, controller = make_controller(
            max_jobs_per_tenant=5, max_parallelism_per_tenant=8
        )
        admit_job(registry, "t1", parallelism=4)
        admit_job(registry, "t1", parallelism=3)
        decision = controller.decide("t1", 2)
        assert decision.code == "tenant-parallelism-quota"
        assert decision.detail["committed"] == 7
        assert decision.detail["requested"] == 2
        assert controller.decide("t1", 1).admitted

    def test_terminal_jobs_release_quota(self):
        _, registry, controller = make_controller(max_jobs_per_tenant=1)
        record = admit_job(registry, "t1")
        assert controller.decide("t1", 1).code == "tenant-jobs-quota"
        registry.transition(record.job_id, CANCELLED)
        assert controller.decide("t1", 1).admitted

    def test_raise_if_rejected_carries_structure(self):
        _, _, controller = make_controller(worker_budget=2)
        with pytest.raises(AdmissionError) as err:
            controller.decide("t1", 3).raise_if_rejected()
        body = err.value.to_dict()
        assert body["code"] == "job-exceeds-budget"
        assert body["detail"]["worker_budget"] == 2
        assert "message" in body


class TestFleetConfigValidation:
    def test_defaults_valid(self):
        FleetConfig()

    @pytest.mark.parametrize("bad", [
        {"max_jobs_per_tenant": 0},
        {"max_parallelism_per_tenant": 0},
        {"worker_budget": 0},
        {"min_share": 0},
        {"min_share": 9, "worker_budget": 8},
        {"tick_s": 0},
        {"port": 70000},
        {"default_tenant": ""},
    ])
    def test_invalid_rejected(self, bad):
        with pytest.raises(ValueError):
            FleetConfig(**bad)

    def test_resolve(self):
        assert FleetConfig.resolve(None) is None
        assert FleetConfig.resolve(False) is None
        assert FleetConfig.resolve(True) == FleetConfig()
        cfg = FleetConfig(worker_budget=3)
        assert FleetConfig.resolve(cfg) is cfg
        with pytest.raises(TypeError):
            FleetConfig.resolve("yes")
