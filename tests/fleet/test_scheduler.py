"""Fair-share scheduling and elastic bound lending."""

from repro.fleet import FleetConfig, FleetScheduler, JobLease, fair_shares


class TestFairShares:
    def test_empty(self):
        assert fair_shares(8, {}) == {}

    def test_even_split(self):
        assert fair_shares(8, {"a": 8, "b": 8}) == {"a": 4, "b": 4}

    def test_uneven_split_stays_maximally_even(self):
        assert fair_shares(8, {"a": 8, "b": 8, "c": 8}) == {"a": 3, "b": 3, "c": 2}

    def test_caps_respected_and_leftover_reoffered(self):
        # a can only use 1; its unused share flows to the others
        assert fair_shares(8, {"a": 1, "b": 8, "c": 8}) == {"a": 1, "b": 4, "c": 3}

    def test_budget_surplus_stops_at_caps(self):
        assert fair_shares(100, {"a": 2, "b": 3}) == {"a": 2, "b": 3}

    def test_oversubscribed_floor_guarantee(self):
        # 2 replicas across 4 jobs: everyone still gets the floor
        shares = fair_shares(2, {c: 4 for c in "abcd"})
        assert all(s == 1 for s in shares.values())

    def test_deterministic_by_job_id(self):
        assert fair_shares(5, {"b": 9, "a": 9}) == fair_shares(5, {"a": 9, "b": 9})
        assert fair_shares(5, {"a": 9, "b": 9}) == {"a": 3, "b": 2}


class FakeController:
    def __init__(self):
        self.bounds = None

    def set_bounds(self, min_p, max_p):
        self.bounds = (min_p, max_p)


class TestJobLease:
    def test_lend_forwards_bounds_to_controller(self):
        controller = FakeController()
        lease = JobLease("j", cap=6, floor=1, controller_fn=lambda: controller)
        lease.lend(4)
        assert controller.bounds == (1, 4)
        assert lease.granted == 4

    def test_lend_clamps_to_cap_and_floor(self):
        controller = FakeController()
        lease = JobLease("j", cap=3, floor=2, controller_fn=lambda: controller)
        lease.lend(10)
        assert controller.bounds == (2, 3)
        lease.lend(1)
        assert controller.bounds == (2, 2)

    def test_lend_dedupes_repeated_grants(self):
        calls = []

        class Recording(FakeController):
            def set_bounds(self, lo, hi):
                calls.append((lo, hi))

        controller = Recording()
        lease = JobLease("j", cap=4, controller_fn=lambda: controller)
        lease.lend(3)
        lease.lend(3)
        assert calls == [(1, 3)]

    def test_tolerates_missing_controller(self):
        lease = JobLease("j", cap=4, controller_fn=lambda: None)
        lease.lend(2)  # no crash while the job is still deploying
        assert lease.granted == 2


class TestFleetScheduler:
    def make(self, **cfg):
        cfg.setdefault("worker_budget", 8)
        return FleetScheduler(FleetConfig(**cfg))

    def test_single_elastic_job_gets_whole_budget(self):
        sched = self.make()
        controller = FakeController()
        sched.attach(JobLease("j1", cap=8, controller_fn=lambda: controller))
        assert sched.shares() == {"j1": 8}
        assert controller.bounds == (1, 8)

    def test_second_job_shrinks_the_first(self):
        sched = self.make()
        c1, c2 = FakeController(), FakeController()
        sched.attach(JobLease("j1", cap=8, controller_fn=lambda: c1))
        sched.attach(JobLease("j2", cap=8, controller_fn=lambda: c2))
        assert sched.shares() == {"j1": 4, "j2": 4}
        assert c1.bounds == (1, 4)
        sched.detach("j2")
        assert sched.shares() == {"j1": 8}
        assert c1.bounds == (1, 8)

    def test_static_jobs_hold_their_parallelism(self):
        sched = self.make()
        elastic = FakeController()
        sched.attach(JobLease("static", cap=5, elastic=False))
        sched.attach(JobLease("flex", cap=8, controller_fn=lambda: elastic))
        shares = sched.shares()
        assert shares["static"] == 5
        assert shares["flex"] == 3  # 8 - 5 static

    def test_oversubscription_keeps_min_share(self):
        sched = self.make(worker_budget=2, max_jobs_per_tenant=8)
        controllers = {name: FakeController() for name in "abcd"}
        for name, controller in controllers.items():
            sched.attach(
                JobLease(name, cap=4, controller_fn=lambda c=controller: c)
            )
        assert all(s >= 1 for s in sched.shares().values())

    def test_background_thread_lifecycle(self):
        sched = self.make(tick_s=0.01)
        sched.start()
        sched.start()  # idempotent
        controller = FakeController()
        sched.attach(JobLease("j", cap=8, controller_fn=lambda: controller))
        sched.stop()
        assert controller.bounds == (1, 8)
