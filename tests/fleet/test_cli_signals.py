"""Resident CLI verbs shut down cleanly on SIGTERM/SIGINT (exit 0).

These run the real console entry point in a subprocess — signal delivery
to an in-process handler would not regression-test what a supervisor
(systemd, Kubernetes) actually does to the process.
"""

import json
import os
import signal
import subprocess
import sys
import time
import urllib.request

import pytest

from repro import __version__
from repro.cli import main

REPO_SRC = os.path.join(os.path.dirname(__file__), "..", "..", "src")


def spawn(*verb_args):
    env = {**os.environ, "PYTHONPATH": REPO_SRC}
    return subprocess.Popen(
        [sys.executable, "-m", "repro", *verb_args],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )


def read_banner(proc, timeout=30.0):
    """First stdout line; the resident verbs print it once they're up."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if line:
            return line.strip()
    raise AssertionError("process printed no banner")


def finish(proc, sig, timeout=30.0):
    proc.send_signal(sig)
    out, _ = proc.communicate(timeout=timeout)
    return proc.returncode, out


@pytest.mark.parametrize("sig", [signal.SIGTERM, signal.SIGINT])
def test_serve_drains_and_exits_zero(sig):
    proc = spawn("serve", "--port", "0")
    try:
        banner = read_banner(proc)
        assert "fleet control plane on http://" in banner
        url = banner.split("on ")[1].split(" ")[0]
        with urllib.request.urlopen(url + "/healthz", timeout=10) as resp:
            assert json.loads(resp.read())["status"] == "ok"
        code, out = finish(proc, sig)
    finally:
        proc.kill()
    assert code == 0, out
    assert "draining fleet" in out
    assert "fleet stopped" in out
    assert "Traceback" not in out


def test_broker_sigterm_exits_zero():
    proc = spawn("broker", "--port", "0")
    try:
        banner = read_banner(proc)
        assert "broker listening" in banner
        code, out = finish(proc, signal.SIGTERM)
    finally:
        proc.kill()
    assert code == 0, out
    assert "broker stopped" in out
    assert "Traceback" not in out


def test_version_flag_prints_package_version(capsys):
    with pytest.raises(SystemExit) as exc:
        main(["--version"])
    assert exc.value.code == 0
    assert capsys.readouterr().out.strip() == f"repro {__version__}"


def test_version_matches_healthz():
    """The /healthz version and --version read the same source."""
    from repro.fleet import FleetService

    service = FleetService()
    try:
        assert service.health()["version"] == __version__
    finally:
        service.drain(timeout=10.0)
