"""FleetService: submit/admit/run/cancel with real pipelines.

Workloads are kept tiny (a few layers at coarse resolution) so each job
completes in about a second; determinism of the am simulator makes the
in-fleet vs standalone divergence check exact.
"""

import pytest

from repro.core.errors import DeployConfigError
from repro.fleet import (
    CANCELLED,
    COMPLETED,
    AdmissionError,
    FleetConfig,
    FleetError,
    FleetService,
    JobRegistry,
    run_standalone,
)
from repro.fleet.runner import resolve_workload
from repro.kvstore import MemoryStore

SMALL = {"layers": 3, "image_px": 96, "cell_edge": 8, "window": 3}


@pytest.fixture()
def service():
    svc = FleetService(FleetConfig(worker_budget=6, tick_s=0.05))
    yield svc
    svc.drain(timeout=30.0)


class TestWorkloadSpec:
    def test_defaults_fill_in(self):
        spec = resolve_workload({"layers": 2})
        assert spec["kind"] == "thermal"
        assert spec["layers"] == 2

    def test_unknown_keys_rejected(self):
        with pytest.raises(ValueError, match="unknown workload key"):
            resolve_workload({"layer": 2})

    def test_bad_values_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            resolve_workload({"kind": "milling"})
        with pytest.raises(ValueError, match="layers"):
            resolve_workload({"layers": 0})


class TestSubmission:
    def test_job_completes_with_zero_divergence(self, service):
        record = service.submit({"workload": SMALL})
        assert record.tenant == "default"
        final = service.wait(record.job_id, timeout=90)
        assert final.state == COMPLETED
        assert final.result["result_ids"] == run_standalone(SMALL)
        assert final.result["images_per_second"] > 0
        assert [t["state"] for t in final.transitions] == [
            "PENDING", "ADMITTED", "RUNNING", "COMPLETED",
        ]

    def test_streak_workload_completes(self, service):
        record = service.submit(
            {"workload": {**SMALL, "kind": "streaks", "layers": 4}}
        )
        final = service.wait(record.job_id, timeout=90)
        assert final.state == COMPLETED
        assert final.result["result_ids"] == run_standalone(
            {**SMALL, "kind": "streaks", "layers": 4}
        )

    def test_invalid_deploy_config_rejected_before_admission(self, service):
        with pytest.raises(DeployConfigError, match="unknown deploy config key"):
            service.submit({"workload": SMALL, "deploy": {"plam": True}})
        assert len(service.registry) == 0

    def test_fleet_section_rejected_in_submission(self, service):
        with pytest.raises(ValueError, match="fleet"):
            service.submit({"deploy": {"fleet": {"worker_budget": 2}}})

    def test_unknown_submission_key_rejected(self, service):
        with pytest.raises(ValueError, match="unknown submission key"):
            service.submit({"wrkload": SMALL})

    def test_quota_rejection_raises_and_counts(self, service):
        with pytest.raises(AdmissionError) as err:
            service.submit(
                {"workload": SMALL, "deploy": {"plan": {"parallelism": 7}}}
            )
        assert err.value.code == "job-exceeds-budget"
        assert (
            service.metrics.snapshot().value(
                "fleet_jobs_rejected_total", code="job-exceeds-budget"
            )
            == 1.0
        )


class TestCancel:
    def test_cancel_running_job(self, service):
        record = service.submit(
            {"workload": {**SMALL, "layers": 40, "image_px": 200}}
        )
        cancelled = service.cancel(record.job_id, timeout=30)
        assert cancelled.state == CANCELLED
        # quota released: the tenant can submit again immediately
        again = service.submit({"workload": SMALL})
        assert service.wait(again.job_id, timeout=90).state == COMPLETED

    def test_cancel_finished_job_raises(self, service):
        record = service.submit({"workload": SMALL})
        service.wait(record.job_id, timeout=90)
        with pytest.raises(FleetError, match="already finished"):
            service.cancel(record.job_id)


class TestObservability:
    def test_fleet_snapshot_labels_every_job_series(self, service):
        records = [
            service.submit({"tenant": t, "workload": SMALL})
            for t in ("acme", "zenith")
        ]
        for record in records:
            service.wait(record.job_id, timeout=90)
        snap = service.snapshot()
        for record in records:
            job_series = snap.filter(job=record.job_id)
            assert len(job_series) > 0
            assert any(s.name.startswith("strata_") for s in job_series)
            assert all(s.label("tenant") == record.tenant for s in job_series)
        assert snap.value("fleet_jobs_submitted_total") == 2.0
        assert snap.value("fleet_worker_budget") == 6.0

    def test_health_reports_counts_and_version(self, service):
        health = service.health()
        assert health["status"] == "ok"
        assert health["version"]
        assert set(health["jobs"]) == {
            "PENDING", "ADMITTED", "RUNNING", "COMPLETED", "FAILED", "CANCELLED",
        }


class TestPersistence:
    def test_restart_rehydrates_and_fails_orphans(self):
        store = MemoryStore()
        svc = FleetService(FleetConfig(worker_budget=6, tick_s=0.05), store=store)
        record = svc.submit({"workload": SMALL})
        svc.wait(record.job_id, timeout=90)
        running = svc.submit(
            {"workload": {**SMALL, "layers": 40, "image_px": 200}}
        )
        # simulate a crash: the store survives, the service does not
        reborn = JobRegistry(store)
        reborn.load()
        assert reborn.get(record.job_id).state == COMPLETED
        assert reborn.get(running.job_id).state == "FAILED"
        svc.drain(timeout=30.0)
