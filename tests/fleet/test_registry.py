"""Job registry: the lifecycle state machine and its persistence."""

import pytest

from repro.fleet import (
    ACTIVE_STATES,
    ADMITTED,
    CANCELLED,
    COMPLETED,
    FAILED,
    PENDING,
    RUNNING,
    TERMINAL_STATES,
    TRANSITIONS,
    InvalidTransitionError,
    JobRecord,
    JobRegistry,
    UnknownJobError,
    new_job_id,
)
from repro.kvstore import MemoryStore


def make_registry():
    store = MemoryStore()
    registry = JobRegistry(store)
    return store, registry


def register_one(registry, tenant="t", **kwargs) -> JobRecord:
    record = JobRecord(job_id=new_job_id(), tenant=tenant, **kwargs)
    registry.register(record)
    return record


class TestStateMachine:
    def test_happy_path(self):
        _, registry = make_registry()
        record = register_one(registry)
        assert record.state == PENDING
        registry.transition(record.job_id, ADMITTED)
        registry.transition(record.job_id, RUNNING)
        final = registry.transition(
            record.job_id, COMPLETED, result={"results": 3}
        )
        assert final.state == COMPLETED
        assert final.result == {"results": 3}
        assert [t["state"] for t in final.transitions] == [
            PENDING, ADMITTED, RUNNING, COMPLETED,
        ]

    def test_cancel_reachable_from_every_active_state(self):
        for start in sorted(ACTIVE_STATES):
            assert CANCELLED in TRANSITIONS[start]

    def test_terminal_states_are_dead_ends(self):
        for state in sorted(TERMINAL_STATES):
            assert TRANSITIONS[state] == frozenset()

    def test_illegal_transition_rejected(self):
        _, registry = make_registry()
        record = register_one(registry)
        with pytest.raises(InvalidTransitionError, match="PENDING -> COMPLETED"):
            registry.transition(record.job_id, COMPLETED)

    def test_terminal_is_final(self):
        _, registry = make_registry()
        record = register_one(registry)
        registry.transition(record.job_id, CANCELLED, reason="user asked")
        with pytest.raises(InvalidTransitionError):
            registry.transition(record.job_id, ADMITTED)
        assert registry.get(record.job_id).reason == "user asked"

    def test_unknown_state_and_job_rejected(self):
        _, registry = make_registry()
        record = register_one(registry)
        with pytest.raises(InvalidTransitionError, match="unknown job state"):
            registry.transition(record.job_id, "LIMBO")
        with pytest.raises(UnknownJobError):
            registry.transition("job-nope", ADMITTED)
        with pytest.raises(UnknownJobError):
            registry.get("job-nope")

    def test_duplicate_registration_rejected(self):
        _, registry = make_registry()
        record = register_one(registry)
        with pytest.raises(InvalidTransitionError, match="already registered"):
            registry.register(record)


class TestPersistence:
    def test_every_transition_is_persisted(self):
        store, registry = make_registry()
        record = register_one(registry)
        registry.transition(record.job_id, ADMITTED)
        stored = store.get(f"fleet/jobs/{record.job_id}")
        assert stored["state"] == ADMITTED
        assert len(stored["transitions"]) == 2

    def test_rehydration_round_trips_terminal_jobs(self):
        store, registry = make_registry()
        record = register_one(registry)
        registry.transition(record.job_id, ADMITTED)
        registry.transition(record.job_id, RUNNING)
        registry.transition(record.job_id, COMPLETED, result={"results": 7})

        reborn = JobRegistry(store)
        assert reborn.load() == 1
        loaded = reborn.get(record.job_id)
        assert loaded.state == COMPLETED
        assert loaded.result == {"results": 7}

    def test_rehydration_fails_orphaned_active_jobs(self):
        store, registry = make_registry()
        running = register_one(registry, tenant="a")
        registry.transition(running.job_id, ADMITTED)
        registry.transition(running.job_id, RUNNING)
        pending = register_one(registry, tenant="b")

        reborn = JobRegistry(store)
        reborn.load()
        for job_id in (running.job_id, pending.job_id):
            record = reborn.get(job_id)
            assert record.state == FAILED
            assert "restarted" in record.reason
        # the orphan-marking itself is persisted, so a third load is clean
        third = JobRegistry(store)
        third.load()
        assert third.get(running.job_id).state == FAILED


class TestQueries:
    def test_list_filters_and_orders_newest_first(self):
        _, registry = make_registry()
        a = register_one(registry, tenant="a", created=1.0)
        b = register_one(registry, tenant="b", created=2.0)
        c = register_one(registry, tenant="a", created=3.0)
        assert [r.job_id for r in registry.list()] == [c.job_id, b.job_id, a.job_id]
        assert [r.job_id for r in registry.list(tenant="a")] == [c.job_id, a.job_id]
        registry.transition(b.job_id, CANCELLED)
        assert [r.job_id for r in registry.list(state=CANCELLED)] == [b.job_id]

    def test_active_and_counts(self):
        _, registry = make_registry()
        a = register_one(registry, tenant="a")
        register_one(registry, tenant="a")
        registry.transition(a.job_id, CANCELLED)
        assert len(registry.active(tenant="a")) == 1
        counts = registry.counts()
        assert counts[PENDING] == 1
        assert counts[CANCELLED] == 1
        assert counts[RUNNING] == 0
        assert len(registry) == 2

    def test_record_dict_round_trip(self):
        record = JobRecord(
            job_id="job-x", tenant="t", deploy={"plan": True},
            workload={"layers": 3}, parallelism=2,
        )
        assert JobRecord.from_dict(record.to_dict()).to_dict() == record.to_dict()
