"""Bench reporting helpers."""

import json

import numpy as np
import pytest

from repro.bench import (
    BOXPLOT_HEADERS,
    boxplot_row,
    format_table,
    render_ascii_image,
    save_json,
)
from repro.bench.config import BenchProfile, active_profile
from repro.spe import summarize


def test_format_table_alignment():
    text = format_table(["name", "value"], [["alpha", 1.5], ["b", 22]])
    lines = text.splitlines()
    assert len(lines) == 4  # header, rule, 2 rows
    widths = {len(line) for line in lines}
    assert len(widths) == 1  # all lines equally wide


def test_format_table_float_rendering():
    text = format_table(["v"], [[0.123456789]])
    assert "0.1235" in text


def test_boxplot_row_scales_to_ms():
    summary = summarize([0.010, 0.020, 0.030])
    row = boxplot_row("param", summary)
    assert row[0] == "param"
    assert row[3] == pytest.approx(20.0)  # median in ms
    assert row[-1] == 3
    assert len(row) == len(BOXPLOT_HEADERS)


def test_save_json_roundtrip(tmp_path, monkeypatch):
    import repro.bench.report as report

    monkeypatch.setattr(report, "RESULTS_DIR", tmp_path)
    path = save_json("probe", {"a": 1, "nested": {"b": [1, 2]}})
    assert path.exists()
    assert json.loads(path.read_text()) == {"a": 1, "nested": {"b": [1, 2]}}


def test_render_ascii_image_shape():
    image = np.arange(12).reshape(3, 4)
    art = render_ascii_image(image)
    lines = art.splitlines()
    assert len(lines) == 3
    assert all(len(line) == 4 for line in lines)
    # darkest first, brightest last
    assert art[0] == " "
    assert lines[-1][-1] == "@"


def test_render_ascii_constant_image():
    art = render_ascii_image(np.full((2, 2), 7.0))
    assert art == "  \n  "


def test_render_ascii_empty():
    assert render_ascii_image(np.empty((0, 0))) == "(empty)"


class TestProfiles:
    def test_default_profile(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_PROFILE", raising=False)
        monkeypatch.delenv("REPRO_BENCH_IMAGE_PX", raising=False)
        monkeypatch.delenv("REPRO_BENCH_LAYERS", raising=False)
        profile = active_profile()
        assert profile.name == "ci"
        assert profile.qos_seconds == 3.0

    def test_full_profile(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_PROFILE", "full")
        profile = active_profile()
        assert profile.image_px == 2000
        assert profile.repetitions == 5

    def test_env_overrides(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_PROFILE", "ci")
        monkeypatch.setenv("REPRO_BENCH_IMAGE_PX", "321")
        monkeypatch.setenv("REPRO_BENCH_LAYERS", "9")
        profile = active_profile()
        assert profile.image_px == 321
        assert profile.layers == 9

    def test_unknown_profile_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_PROFILE", "galactic")
        with pytest.raises(ValueError, match="galactic"):
            active_profile()

    def test_scale_cell_edge_preserves_mm(self):
        profile = BenchProfile("x", image_px=500, layers=1, repetitions=1, qos_seconds=3)
        assert profile.scale_cell_edge(40) == 10  # 5 mm at 2 px/mm
        assert profile.scale_cell_edge(20) == 5
        assert profile.scale_cell_edge(2) == 1  # floored at 1 px
        assert profile.px_per_mm == 2.0
