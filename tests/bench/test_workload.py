"""Workload generation and replay."""

import numpy as np

from repro.bench import EvaluationWorkload


def make_workload():
    return EvaluationWorkload(image_px=250, layers=6, seed=7)


def test_records_cached_and_ordered():
    workload = make_workload()
    assert len(workload) == 6
    assert [r.layer for r in workload.records] == list(range(6))


def test_layers_capped_at_build_height():
    workload = EvaluationWorkload(image_px=250, layers=10_000, seed=7)
    assert len(workload) == workload.job.num_layers


def test_reference_images_are_clean():
    workload = make_workload()
    refs = workload.reference_images(count=2)
    assert len(refs) == 2
    assert refs[0].shape == (250, 250)


def test_replay_within_base_is_identity():
    workload = make_workload()
    replayed = list(workload.replay(4))
    assert [r.layer for r in replayed] == [0, 1, 2, 3]
    assert replayed[0] is workload.records[0]


def test_replay_beyond_base_keeps_layer_monotonic():
    workload = make_workload()
    replayed = list(workload.replay(15))
    layers = [r.layer for r in replayed]
    assert layers == sorted(layers)
    assert len(set(layers)) == 15  # strictly increasing
    assert all(r.job_id == workload.job.job_id for r in replayed)


def test_replay_reuses_images_without_rerendering():
    workload = make_workload()
    replayed = list(workload.replay(10))
    assert np.shares_memory(replayed[6].image, workload.records[0].image)


def test_replay_z_advances():
    workload = make_workload()
    replayed = list(workload.replay(13))
    zs = [r.z_mm for r in replayed]
    assert zs == sorted(zs)
