"""Bench harness: lockstep latency runs and throughput runs."""

import pytest

from repro.bench import (
    EvaluationWorkload,
    run_latency_experiment,
    run_throughput_experiment,
)
from repro.core import UseCaseConfig


@pytest.fixture(scope="module")
def workload():
    return EvaluationWorkload(image_px=250, layers=6, seed=7)


@pytest.fixture(scope="module")
def config():
    return UseCaseConfig(image_px=250, cell_edge_px=5, window_layers=4)


def test_latency_run_shape(workload, config):
    run = run_latency_experiment(workload, config, warmup_layers=2)
    assert run.results == 6 * 12  # every layer x specimen reported
    assert len(run.per_layer_latencies) == 4  # warm-up layers dropped
    assert all(latency > 0 for latency in run.per_layer_latencies)
    assert run.cells_evaluated == 6 * 12 * 50
    summary = run.summary
    assert summary.minimum <= summary.median <= summary.maximum


def test_latency_meets_generous_qos(workload, config):
    run = run_latency_experiment(workload, config)
    assert run.meets_qos(30.0)  # sanity bound, not the paper's 3 s claim


def test_throughput_run_fields(workload, config):
    run = run_throughput_experiment(
        workload, config, offered_images_s=20.0, total_images=12
    )
    assert run.images == 12
    assert run.cells_evaluated == 12 * 12 * 50
    assert run.achieved_images_s > 0
    assert run.kcells_per_second == pytest.approx(run.cells_per_second / 1000)
    assert run.mean_latency_s >= 0
    assert run.p99_latency_s >= run.mean_latency_s * 0.1


def test_throughput_saturates_below_offered(workload, config):
    """At an absurd offered rate the achieved rate must fall short."""
    run = run_throughput_experiment(
        workload, config, offered_images_s=100_000.0, total_images=30
    )
    assert run.achieved_images_s < 100_000.0


def test_latency_grows_with_smaller_cells(workload):
    coarse = run_latency_experiment(
        workload, UseCaseConfig(image_px=250, cell_edge_px=25, window_layers=4)
    )
    fine = run_latency_experiment(
        workload, UseCaseConfig(image_px=250, cell_edge_px=1, window_layers=4)
    )
    assert fine.summary.median > coarse.summary.median
    assert fine.cells_evaluated > coarse.cells_evaluated
