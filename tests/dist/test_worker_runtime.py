"""Distributed runtime end-to-end: equivalence, restarts, failure paths."""

import threading
import time
import urllib.request

import pytest

from repro.core import (
    Strata,
    UseCaseConfig,
    build_use_case,
    calibrate_job,
    specimen_regions_px,
)
from repro.core.errors import DeploymentError
from repro.dist import DistConfig, DistCoordinator, DistError
from tests.conftest import TEST_IMAGE_PX

CELL_EDGE = 5


def build(layer_records, reference_images, test_job, connector_mode="pubsub"):
    config = UseCaseConfig(
        image_px=TEST_IMAGE_PX, cell_edge_px=CELL_EDGE, window_layers=4
    )
    strata = Strata(engine_mode="threaded", connector_mode=connector_mode)
    calibrate_job(
        strata.kv, test_job.job_id, reference_images, CELL_EDGE,
        regions=specimen_regions_px(test_job.specimens, TEST_IMAGE_PX),
    )
    pipeline = build_use_case(
        iter(layer_records), iter(layer_records), config, strata=strata
    )
    return strata, pipeline


def result_key(t):
    # cluster lists may arrive in a different within-layer order across
    # runs, so compare the order-insensitive result identity
    return (t.job, t.layer, t.specimen, t.payload["num_events"],
            t.payload["num_clusters"])


@pytest.fixture(scope="module")
def baseline(layer_records, reference_images, test_job):
    strata, pipeline = build(layer_records, reference_images, test_job)
    strata.deploy()
    return sorted(map(result_key, pipeline.sink.results))


def test_two_worker_deploy_equals_threaded(
    layer_records, reference_images, test_job, baseline
):
    strata, pipeline = build(layer_records, reference_images, test_job)
    report = strata.deploy(distributed=2)
    assert sorted(map(result_key, pipeline.sink.results)) == baseline
    dist = report.extra["dist"]
    assert len(dist["workers"]) == 2
    assert all(w["exitcode"] == 0 for w in dist["workers"].values())
    assert dist["restarts"] == 0 and dist["failure"] is None


def test_survives_worker_kill(
    layer_records, reference_images, test_job, baseline
):
    strata, pipeline = build(layer_records, reference_images, test_job)
    coordinator = DistCoordinator(
        strata.query, strata.broker, DistConfig(workers=2),
        capacity=strata.capacity,
    )
    coordinator.start()

    def chaos():
        time.sleep(0.05)
        coordinator.workers[0].kill()

    threading.Thread(target=chaos, daemon=True).start()
    report = coordinator.run()
    assert sorted(map(result_key, pipeline.sink.results)) == baseline
    dist = report.extra["dist"]
    # the kill may race natural completion on fast machines; when it lands
    # mid-run, the restart must be recorded and absorbed
    if dist["restarts"]:
        assert dist["failure"] is None
        assert dist["workers"]["worker-0"]["incarnation"] >= 1


def test_worker_metrics_aggregated(layer_records, reference_images, test_job):
    strata, _ = build(layer_records, reference_images, test_job)
    coordinator = DistCoordinator(
        strata.query, strata.broker, DistConfig(workers=2),
        capacity=strata.capacity,
    )
    report = coordinator.run()
    metrics = report.extra["worker_metrics"]
    assert set(metrics) == {"worker-0", "worker-1"}
    # workers processed tuples: their schedulers exported operator counters
    assert any(
        s.name == "spe_tuples_out_total" and s.value > 0
        for s in metrics["worker-0"].samples
    )
    merged = coordinator.cluster_snapshot()
    workers_seen = {s.label("worker") for s in merged.samples}
    assert {"worker-0", "worker-1"} <= workers_seen


def test_prometheus_scrape_endpoint(layer_records, reference_images, test_job):
    strata, _ = build(layer_records, reference_images, test_job)
    coordinator = DistCoordinator(
        strata.query, strata.broker,
        DistConfig(workers=2, scrape_port=0),
        capacity=strata.capacity,
    )
    coordinator.start()
    try:
        host, port = coordinator.scrape_address
        deadline = time.monotonic() + 10
        body = ""
        while time.monotonic() < deadline:
            with urllib.request.urlopen(
                f"http://{host}:{port}/metrics", timeout=5
            ) as response:
                assert response.status == 200
                body = response.read().decode("utf-8")
            if 'worker="worker-0"' in body:
                break
            time.sleep(0.1)
        assert 'worker="worker-0"' in body
    finally:
        coordinator.run()


def test_permanent_worker_failure_raises(
    layer_records, reference_images, test_job
):
    strata, _ = build(layer_records, reference_images, test_job)
    coordinator = DistCoordinator(
        strata.query, strata.broker,
        DistConfig(workers=2, restart_limit=0),
        capacity=strata.capacity,
    )
    coordinator.start()

    def chaos():
        time.sleep(0.05)
        for worker in coordinator.workers:
            worker.kill()

    threading.Thread(target=chaos, daemon=True).start()
    try:
        coordinator.run()
    except DistError as exc:
        assert "exited" in str(exc)
    else:
        # both kills raced completion: legal on a very fast run, but the
        # coordinator must then report a clean deployment
        assert coordinator.status()["failure"] is None


def test_distributed_requires_pubsub_mode(
    layer_records, reference_images, test_job
):
    strata, _ = build(
        layer_records, reference_images, test_job, connector_mode="direct"
    )
    with pytest.raises(DeploymentError, match="pubsub"):
        strata.deploy(distributed=2)


def test_distributed_rejects_checkpointer(
    layer_records, reference_images, test_job
):
    strata, _ = build(layer_records, reference_images, test_job)
    with pytest.raises(DeploymentError, match="crash recovery"):
        strata.deploy(distributed=2, checkpointer=object())


def test_dist_config_resolve():
    assert DistConfig.resolve(None) is None
    assert DistConfig.resolve(False) is None
    assert DistConfig.resolve(True) == DistConfig()
    assert DistConfig.resolve(3).workers == 3
    config = DistConfig(workers=5)
    assert DistConfig.resolve(config) is config
    with pytest.raises(ValueError):
        DistConfig.resolve(0)
    with pytest.raises(TypeError):
        DistConfig.resolve("two")


def test_worker_process_requires_fork():
    from repro.dist import WorkerProcess

    with pytest.raises(ValueError, match="fork"):
        WorkerProcess("w", [], ("127.0.0.1", 0), start_method="spawn")
