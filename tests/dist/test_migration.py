"""Live stage migration between dist workers: placement surface and
output equivalence (replay + dedup absorb the move, divergence 0)."""

import threading
import time

from repro.core import (
    Strata,
    UseCaseConfig,
    build_use_case,
    calibrate_job,
    specimen_regions_px,
)
from repro.dist import DistConfig, DistCoordinator
from tests.conftest import TEST_IMAGE_PX

CELL_EDGE = 5


def build(layer_records, reference_images, test_job):
    config = UseCaseConfig(
        image_px=TEST_IMAGE_PX, cell_edge_px=CELL_EDGE, window_layers=4
    )
    strata = Strata(engine_mode="threaded", connector_mode="pubsub")
    calibrate_job(
        strata.kv, test_job.job_id, reference_images, CELL_EDGE,
        regions=specimen_regions_px(test_job.specimens, TEST_IMAGE_PX),
    )
    pipeline = build_use_case(
        iter(layer_records), iter(layer_records), config, strata=strata
    )
    return strata, pipeline


def result_key(t):
    return (t.job, t.layer, t.specimen, t.payload["num_events"],
            t.payload["num_clusters"])


def test_migrate_stage_preserves_output(
    layer_records, reference_images, test_job
):
    strata, pipeline = build(layer_records, reference_images, test_job)
    static_strata, static_pipeline = build(
        layer_records, reference_images, test_job
    )
    static_strata.deploy()
    baseline = sorted(map(result_key, static_pipeline.sink.results))

    coordinator = DistCoordinator(
        strata.query, strata.broker, DistConfig(workers=2),
        capacity=strata.capacity,
    )
    coordinator.start()

    def move():
        time.sleep(0.05)
        source = coordinator.workers[0]
        dest = coordinator.workers[1]
        if source.stage_names:
            coordinator.migrate_stage(source.stage_names[0], dest.name)

    threading.Thread(target=move, daemon=True).start()
    report = coordinator.run()
    assert sorted(map(result_key, pipeline.sink.results)) == baseline
    dist = report.extra["dist"]
    assert dist["failure"] is None
    # the migration may race natural completion on a fast machine; when it
    # landed, it must be recorded as a planned move, not a crash restart
    if coordinator.migrations:
        event = coordinator.migrations[0]
        assert event["from_worker"] == "worker-0"
        assert event["to_worker"] == "worker-1"
        assert dist["restarts"] == 0
        assert event["stage"] in coordinator.workers[1].stage_names
        assert dist["migrations"] == coordinator.migrations


def test_migrate_stage_refuses_bad_targets(
    layer_records, reference_images, test_job
):
    strata, pipeline = build(layer_records, reference_images, test_job)
    coordinator = DistCoordinator(
        strata.query, strata.broker, DistConfig(workers=2),
        capacity=strata.capacity,
    )
    coordinator.start()
    try:
        # unknown stage, unknown worker, and a self-move all refuse cleanly
        assert not coordinator.migrate_stage("no-such-stage", "worker-1")
        assert not coordinator.migrate_stage(
            coordinator.workers[0].stage_names[0], "no-such-worker"
        )
        assert not coordinator.migrate_stage(
            coordinator.workers[0].stage_names[0], "worker-0"
        )
        assert coordinator.migrations == []
    finally:
        coordinator.run()


def test_worker_loads_shape(layer_records, reference_images, test_job):
    strata, _ = build(layer_records, reference_images, test_job)
    coordinator = DistCoordinator(
        strata.query, strata.broker, DistConfig(workers=2),
        capacity=strata.capacity,
    )
    coordinator.start()
    try:
        loads = coordinator.worker_loads()
        assert set(loads) == {"worker-0", "worker-1"}
        for info in loads.values():
            assert 0.0 <= info["busy_fraction"] <= 1.0
            assert isinstance(info["stages"], list)
    finally:
        coordinator.run()


def test_refork_does_not_charge_the_restart_budget(
    layer_records, reference_images, test_job
):
    strata, pipeline = build(layer_records, reference_images, test_job)
    coordinator = DistCoordinator(
        strata.query, strata.broker,
        DistConfig(workers=2, restart_limit=0),  # any crash would be fatal
        capacity=strata.capacity,
    )
    coordinator.start()

    def replan():
        time.sleep(0.05)
        worker = coordinator.workers[0]
        if not worker.finished:
            worker.refork()

    threading.Thread(target=replan, daemon=True).start()
    report = coordinator.run()
    dist = report.extra["dist"]
    # a planned re-fork bumps the incarnation but never the crash budget,
    # so restart_limit=0 must not trip
    assert dist["failure"] is None
    assert dist["restarts"] == 0
