"""Distributed deployments over the shared-memory payload plane.

The shm transport changes how payload bytes move, not what the pipeline
computes — so every test here is an equivalence test against the
in-process baseline, including under chaos: a killed worker dies holding
slab leases, and the replacement's replay must still converge to the
exact same result set while the server reclaims every orphaned slot.
"""

import threading
import time

import pytest

from repro.dist import DistConfig, DistCoordinator

from .test_worker_runtime import build, result_key

# 250 px float64 OT images are 500 KB: comfortably above SHM_MIN_BYTES,
# so layer payloads genuinely ride the ring in these tests
SHM_CONFIG = dict(transport="shm", shm_slots=24, shm_slab_bytes=2 * 1024 * 1024)


@pytest.fixture(scope="module")
def baseline(layer_records, reference_images, test_job):
    strata, pipeline = build(layer_records, reference_images, test_job)
    strata.deploy()
    return sorted(map(result_key, pipeline.sink.results))


def _ring_stats(coordinator):
    return coordinator._server._transport.stats()


def test_shm_deploy_equals_threaded(
    layer_records, reference_images, test_job, baseline
):
    strata, pipeline = build(layer_records, reference_images, test_job)
    coordinator = DistCoordinator(
        strata.query, strata.broker,
        DistConfig(workers=2, **SHM_CONFIG),
        capacity=strata.capacity,
    )
    coordinator.start()
    stats_mid = _ring_stats(coordinator)
    assert stats_mid["slots"] == SHM_CONFIG["shm_slots"]
    report = coordinator.run()
    assert sorted(map(result_key, pipeline.sink.results)) == baseline
    dist = report.extra["dist"]
    assert dist["restarts"] == 0 and dist["failure"] is None


def test_shm_deploy_with_batching_equals_threaded(
    layer_records, reference_images, test_job, baseline
):
    from repro.core.deploy import DeployConfig

    strata, pipeline = build(layer_records, reference_images, test_job)
    report = strata.deploy(
        DeployConfig(dist=DistConfig(workers=2, produce_batch=8, **SHM_CONFIG))
    )
    assert sorted(map(result_key, pipeline.sink.results)) == baseline
    assert report.extra["dist"]["failure"] is None


def test_worker_kill_under_shm_reclaims_leases_and_converges(
    layer_records, reference_images, test_job, baseline
):
    """The chaos case the lease design exists for: a worker is killed while
    it may hold leased-but-unpublished slots. The server must reclaim them
    on disconnect (no slot leaks), and the restarted worker's replay must
    leave the output bit-identical to the in-process run."""
    strata, pipeline = build(layer_records, reference_images, test_job)
    coordinator = DistCoordinator(
        strata.query, strata.broker,
        DistConfig(workers=2, **SHM_CONFIG),
        capacity=strata.capacity,
    )
    coordinator.start()

    def chaos():
        time.sleep(0.05)
        coordinator.workers[0].kill()

    threading.Thread(target=chaos, daemon=True).start()
    report = coordinator.run()

    assert sorted(map(result_key, pipeline.sink.results)) == baseline
    dist = report.extra["dist"]
    if dist["restarts"]:
        assert dist["failure"] is None
        assert dist["workers"]["worker-0"]["incarnation"] >= 1
    stats = _ring_stats(coordinator)
    # every lease is either bound to a record or back on the free list —
    # a kill mid-produce must not leak slots
    assert stats["leased"] == 0
    assert stats["free"] + stats["bound"] == stats["slots"]


def test_shm_ring_is_unlinked_after_shutdown(
    layer_records, reference_images, test_job
):
    strata, _ = build(layer_records, reference_images, test_job)
    coordinator = DistCoordinator(
        strata.query, strata.broker,
        DistConfig(workers=2, **SHM_CONFIG),
        capacity=strata.capacity,
    )
    coordinator.start()
    ring_name = coordinator._server._transport.describe()["ring"]
    coordinator.run()
    from multiprocessing import shared_memory

    with pytest.raises(FileNotFoundError):
        shared_memory.SharedMemory(name=ring_name)


def test_shm_config_toml_roundtrip():
    """`[dist] transport = "shm"` is first-class DeployConfig surface."""
    from repro.core.deploy import DeployConfig, DeployConfigError

    data = {
        "dist": {
            "workers": 4, "transport": "shm", "shm_slots": 32,
            "shm_slab_bytes": 8 * 1024 * 1024, "produce_batch": 16,
        }
    }
    config = DeployConfig.from_dict(data)
    assert config.dist.transport == "shm"
    assert config.dist.shm_slots == 32
    assert config.dist.produce_batch == 16
    assert DeployConfig.from_dict(config.to_dict()).dist == config.dist
    # legacy dicts (no transport keys) load with tcp defaults
    legacy = DeployConfig.from_dict({"dist": {"workers": 2}})
    assert legacy.dist.transport == "tcp" and legacy.dist.produce_batch == 1
    with pytest.raises(DeployConfigError, match="dist.transprot"):
        DeployConfig.from_dict({"dist": {"workers": 2, "transprot": "shm"}})
