"""Stage cutting: DAG components at pub/sub connector edges."""

import pytest

from repro.core import (
    Strata,
    UseCaseConfig,
    build_use_case,
    calibrate_job,
    specimen_regions_px,
    topic_for_stream,
)
from repro.dist import assign_stages, cut_stages, render_stages
from tests.conftest import TEST_IMAGE_PX

CELL_EDGE = 5


def build(layer_records, reference_images, test_job, connector_mode="pubsub"):
    config = UseCaseConfig(
        image_px=TEST_IMAGE_PX, cell_edge_px=CELL_EDGE, window_layers=4
    )
    strata = Strata(engine_mode="threaded", connector_mode=connector_mode)
    calibrate_job(
        strata.kv, test_job.job_id, reference_images, CELL_EDGE,
        regions=specimen_regions_px(test_job.specimens, TEST_IMAGE_PX),
    )
    build_use_case(
        iter(layer_records), iter(layer_records), config, strata=strata
    )
    return strata.query.build(capacity=strata.capacity)


def test_use_case_cuts_into_four_stages(layer_records, reference_images, test_job):
    stages = cut_stages(build(layer_records, reference_images, test_job))
    assert len(stages) == 4
    by_name = {s.name: s for s in stages}
    # two source stages publish the raw topics
    source_outputs = sorted(
        t for s in stages if not s.input_topics and not s.terminal
        for t in s.output_topics
    )
    assert source_outputs == sorted(
        [topic_for_stream("OT"), topic_for_stream("pp")]
    )
    # the monitor stage consumes both raw topics and publishes events
    monitor = [
        s for s in stages
        if set(s.input_topics)
        == {topic_for_stream("OT"), topic_for_stream("pp")}
    ]
    assert len(monitor) == 1
    assert monitor[0].output_topics == [topic_for_stream("cellLabel")]
    assert not monitor[0].terminal
    # exactly one terminal stage: aggregator + expert sink
    terminal = [s for s in stages if s.terminal]
    assert len(terminal) == 1
    assert terminal[0].input_topics == [topic_for_stream("cellLabel")]
    assert terminal[0].output_topics == []
    assert "stage-0" in by_name  # indexes are dense and deterministic


def test_stage_indexes_are_deterministic(layer_records, reference_images, test_job):
    first = cut_stages(build(layer_records, reference_images, test_job))
    second = cut_stages(build(layer_records, reference_images, test_job))
    assert [s.node_names for s in first] == [s.node_names for s in second]


def test_readers_and_writers_found_through_wrappers(
    layer_records, reference_images, test_job
):
    stages = cut_stages(build(layer_records, reference_images, test_job))
    terminal = next(s for s in stages if s.terminal)
    readers = terminal.readers()  # wrapped in CheckpointableSource by the API
    assert len(readers) == 1
    assert readers[0].topic == topic_for_stream("cellLabel")
    monitor = next(
        s for s in stages if s.input_topics and not s.terminal
    )
    assert [w.topic for w in monitor.writers()] == [topic_for_stream("cellLabel")]


def test_assign_stages_round_robin(layer_records, reference_images, test_job):
    stages = cut_stages(build(layer_records, reference_images, test_job))
    groups, local = assign_stages(stages, workers=2)
    assert len(groups) == 2
    assert len(local) == 1 and local[0].terminal
    assert sorted(s.name for g in groups for s in g) == [
        s.name for s in stages if not s.terminal
    ]
    # one worker per stage by default
    default_groups, _ = assign_stages(stages, workers=None)
    assert len(default_groups) == 3
    # more workers than stages collapses to one stage per worker
    many_groups, _ = assign_stages(stages, workers=10)
    assert len(many_groups) == 3


def test_direct_mode_graph_has_nothing_to_distribute(
    layer_records, reference_images, test_job
):
    nodes = build(layer_records, reference_images, test_job, connector_mode="direct")
    stages = cut_stages(nodes)
    assert len(stages) == 1 and stages[0].terminal
    with pytest.raises(ValueError, match="no remote-capable"):
        assign_stages(stages, workers=2)


def test_render_stages_lists_every_node(layer_records, reference_images, test_job):
    stages = cut_stages(build(layer_records, reference_images, test_job))
    rendered = render_stages(stages)
    assert "4 stage(s):" in rendered
    assert "[terminal]" in rendered and "[remote]" in rendered
    for stage in stages:
        for name in stage.node_names:
            assert name in rendered
