"""Checkpoint storage layout: manifest-last atomicity, retention, scans."""

import pytest

from repro.kvstore.lsm import LSMStore
from repro.kvstore.memory import MemoryStore
from repro.recovery.storage import CheckpointStorage


@pytest.fixture(params=["memory", "lsm"])
def storage(request, tmp_path):
    if request.param == "memory":
        yield CheckpointStorage(MemoryStore())
    else:
        store = LSMStore(tmp_path / "db")
        yield CheckpointStorage(store)
        store.close()


def test_node_state_roundtrip(storage):
    storage.save_node_state(0, "agg", {"windows": {("k", 1): [1, 2]}})
    state = storage.load_node_state(0, "agg")
    assert state["windows"] == {("k", 1): [1, 2]}


def test_source_position_roundtrip(storage):
    position = {"kind": "pubsub", "offsets": [["t", 0, 7]]}
    storage.save_source_position(3, "src", position)
    assert storage.load_source_position(3, "src") == position


def test_epoch_invisible_without_manifest(storage):
    storage.save_node_state(0, "agg", {"x": 1})
    storage.save_source_position(0, "src", {"kind": "count", "emitted": 5})
    assert storage.epochs() == []
    assert storage.latest_epoch() is None


def test_manifest_commits_epoch(storage):
    storage.save_node_state(0, "agg", {"x": 1})
    storage.commit_manifest(0, {"epoch": 0, "nodes": ["agg"], "sources": []})
    assert storage.epochs() == [0]
    assert storage.latest_epoch() == 0
    assert storage.load_manifest(0)["nodes"] == ["agg"]


def test_partial_epoch_hides_behind_committed_one(storage):
    """A crash mid-checkpoint (epoch 1 torso) must not mask epoch 0."""
    storage.save_node_state(0, "agg", {"x": 1})
    storage.commit_manifest(0, {"epoch": 0, "nodes": ["agg"], "sources": []})
    # epoch 1 crashed before its manifest
    storage.save_node_state(1, "agg", {"x": 2})
    storage.save_source_position(1, "src", {"kind": "count", "emitted": 9})
    assert storage.epochs() == [0]
    assert storage.latest_epoch() == 0


def test_epochs_sorted_numerically_past_width_9(storage):
    for epoch in (0, 2, 10, 9, 100):
        storage.commit_manifest(epoch, {"epoch": epoch, "nodes": [], "sources": []})
    assert storage.epochs() == [0, 2, 9, 10, 100]
    assert storage.latest_epoch() == 100


def test_drop_epoch_removes_every_key(storage):
    storage.save_node_state(0, "agg", {"x": 1})
    storage.save_source_position(0, "src", {"kind": "count", "emitted": 1})
    storage.commit_manifest(0, {"epoch": 0, "nodes": ["agg"], "sources": ["src"]})
    storage.drop_epoch(0)
    assert storage.epochs() == []
    assert storage.load_node_state(0, "agg") is None
    assert storage.load_source_position(0, "src") is None
    assert storage.load_manifest(0) is None


def test_retain_drops_oldest(storage):
    for epoch in range(5):
        storage.save_node_state(epoch, "agg", {"x": epoch})
        storage.commit_manifest(epoch, {"epoch": epoch, "nodes": ["agg"], "sources": []})
    dropped = storage.retain(2)
    assert dropped == [0, 1, 2]
    assert storage.epochs() == [3, 4]
    assert storage.load_node_state(3, "agg") == {"x": 3}
    assert storage.load_node_state(1, "agg") is None


def test_retain_noop_when_under_budget(storage):
    storage.commit_manifest(0, {"epoch": 0, "nodes": [], "sources": []})
    assert storage.retain(3) == []
    assert storage.epochs() == [0]


def test_retain_requires_positive(storage):
    with pytest.raises(ValueError):
        storage.retain(0)


def test_negative_epoch_rejected(storage):
    with pytest.raises(ValueError):
        storage.save_node_state(-1, "agg", {})


def test_prefix_validation():
    with pytest.raises(ValueError):
        CheckpointStorage(MemoryStore(), prefix="")
    with pytest.raises(ValueError):
        CheckpointStorage(MemoryStore(), prefix="a/b")


def test_prefix_isolation():
    """Two prefixes on one store don't see each other's epochs."""
    store = MemoryStore()
    a = CheckpointStorage(store, prefix="ckptA")
    b = CheckpointStorage(store, prefix="ckptB")
    a.commit_manifest(0, {"epoch": 0, "nodes": [], "sources": []})
    assert b.epochs() == []
    assert a.epochs() == [0]


def test_node_names_with_separators(storage):
    """STRATA node names contain ':' and may contain '/'-ish chars."""
    name = "sink:expert:3"
    storage.save_node_state(0, name, {"ok": True})
    storage.commit_manifest(0, {"epoch": 0, "nodes": [name], "sources": []})
    assert storage.load_node_state(0, name) == {"ok": True}
