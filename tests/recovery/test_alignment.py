"""Barrier alignment across fan-in and fan-out in the schedulers."""

import pytest

from repro.kvstore.memory import MemoryStore
from repro.recovery import CheckpointableSource, CheckpointCoordinator
from repro.spe import (
    CollectingSink,
    IterableSource,
    JoinOperator,
    Query,
    StreamEngine,
    UnionOperator,
)

from .conftest import make_tuples, paced


def _fanin_query(n=40, delay=0.01, operator="union"):
    q = Query("fanin")
    left = CheckpointableSource(IterableSource("L", paced(make_tuples(n), delay)))
    right = CheckpointableSource(IterableSource("R", paced(make_tuples(n), delay)))
    q.add_source("L", left)
    q.add_source("R", right)
    if operator == "union":
        q.add_operator("merge", UnionOperator("merge", num_inputs=2), ["L", "R"])
    else:
        q.add_operator(
            "merge",
            JoinOperator(
                "merge",
                ws=0.0,
                group_by=lambda t: (t.job, t.layer),
                combiner=lambda l, r: l.derive(
                    payload={"x": l.payload["x"] + r.payload["x"]}
                ),
            ),
            ["L", "R"],
        )
    sink = CollectingSink("out")
    q.add_sink("out", sink, "merge")
    return q, sink


@pytest.mark.parametrize("operator", ["union", "join"])
def test_two_input_node_aligns_before_snapshot(operator):
    """The merge node must wait for the barrier on BOTH inputs; the epoch
    commits exactly once with both source positions captured."""
    query, sink = _fanin_query(operator=operator)
    coordinator = CheckpointCoordinator(MemoryStore())
    engine = StreamEngine(mode="threaded")
    engine.start(query, checkpointer=coordinator)
    epoch = coordinator.trigger(timeout=10.0)
    engine.wait(timeout=30)
    storage = coordinator.storage
    manifest = storage.load_manifest(epoch)
    assert manifest["sources"] == ["L", "R"]
    assert storage.load_source_position(epoch, "L") is not None
    assert storage.load_source_position(epoch, "R") is not None
    assert len(sink.results) == (80 if operator == "union" else 40)


def test_join_snapshot_consistent_with_cuts():
    """At an aligned barrier, the join buffers hold exactly the unmatched
    prefix tuples: restoring them + replaying both suffixes must reproduce
    the uninterrupted join output."""
    query, sink = _fanin_query(n=30, delay=0.01, operator="join")
    coordinator = CheckpointCoordinator(MemoryStore())
    engine = StreamEngine(mode="threaded")
    engine.start(query, checkpointer=coordinator)
    epoch = coordinator.trigger(timeout=10.0)
    engine.wait(timeout=30)
    storage = coordinator.storage
    state = storage.load_node_state(epoch, "merge")
    cut_l = storage.load_source_position(epoch, "L")["emitted"]
    cut_r = storage.load_source_position(epoch, "R")["emitted"]

    # replay: fresh topology, restore state, feed the post-cut suffixes
    replay_query = Query("replay")
    left = CheckpointableSource(IterableSource("L", iter(make_tuples(30))))
    right = CheckpointableSource(IterableSource("R", iter(make_tuples(30))))
    replay_query.add_source("L", left)
    replay_query.add_source("R", right)
    join = JoinOperator(
        "merge",
        ws=0.0,
        group_by=lambda t: (t.job, t.layer),
        combiner=lambda l, r: l.derive(payload={"x": l.payload["x"] + r.payload["x"]}),
    )
    replay_sink = CollectingSink("out")
    replay_query.add_operator("merge", join, ["L", "R"])
    replay_query.add_sink("out", replay_sink, "merge")
    join.restore_state(state)
    left.restore_position({"kind": "count", "emitted": cut_l})
    right.restore_position({"kind": "count", "emitted": cut_r})
    StreamEngine(mode="sync").run(replay_query)

    # With a single producer per input, the aligned cut is exact: the join
    # had matched exactly the layers where BOTH sides were pre-barrier, so
    # the replay emits precisely the remaining layers — no loss, no dupes.
    matched_before_cut = min(cut_l, cut_r)
    replayed = sorted(t.payload["x"] for t in replay_sink.results)
    assert replayed == [2 * x for x in range(matched_before_cut, 30)]


def test_sync_scheduler_checkpoints_too(chain_query_factory):
    """The synchronous scheduler carries barriers end to end: an epoch
    requested right after bind (before any tuple flows) commits with the
    zero state and position 0."""
    query, source, fn, sink = chain_query_factory(n=10, delay=0.0)
    coordinator = CheckpointCoordinator(MemoryStore())
    engine = StreamEngine(mode="sync")
    # on_built runs after checkpointer.bind and before execution starts
    engine.run(
        query,
        checkpointer=coordinator,
        on_built=lambda nodes: coordinator.request_checkpoint(),
    )
    assert coordinator.storage.epochs() == [0]
    position = coordinator.storage.load_source_position(0, "src")
    assert position == {"kind": "count", "emitted": 0}
    assert coordinator.storage.load_node_state(0, "sum")["fn"]["total"] == 0
    assert len(sink.results) == 10
