"""Checkpoint portability across plan shapes (fusion x replication).

The plan compiler rewrites the physical graph, but checkpoints are keyed
by *logical* node names: a fused node acks one snapshot per constituent
and replicas carry their clone source's name as ``base_name``. These
tests pin the contract: a manifest written under any plan shape restores
into any other — except shrinking replicated state, which is a strict
error.
"""

from __future__ import annotations

import time

import pytest

from repro.kvstore.memory import MemoryStore
from repro.recovery import (
    ChaosInjector,
    CheckpointableSource,
    CheckpointCoordinator,
    RecoveryCoordinator,
    RecoveryError,
)
from repro.recovery.storage import CheckpointStorage
from repro.spe import (
    CollectingSink,
    IterableSource,
    MapOperator,
    PlanConfig,
    Query,
    StreamEngine,
)

from .conftest import make_tuples, paced


class RunningSum:
    """Stateful per-stage accumulator whose snapshot round-trips."""

    def __init__(self, field="sum"):
        self.field = field
        self.total = 0

    def __call__(self, t):
        self.total += t.payload["x"]
        return t.derive(payload={**t.payload, self.field: self.total})

    def snapshot_state(self):
        return {"total": self.total}

    def restore_state(self, state):
        self.total = int(state["total"])


class KeyedCount:
    """Per-key counter: keyed state, safe to replicate behind a hash router."""

    def __init__(self):
        self.counts = {}

    def __call__(self, t):
        key = t.layer % 4
        self.counts[key] = self.counts.get(key, 0) + 1
        return t.derive(payload={**t.payload, "nth": self.counts[key]})

    def snapshot_state(self):
        return {"counts": {str(k): v for k, v in self.counts.items()}}

    def restore_state(self, state):
        self.counts = {int(k): v for k, v in state["counts"].items()}


def two_stage_query(n=40, delay=0.0):
    """src -> sum1 -> sum2 -> sink: a fusable chain of two stateful maps."""
    q = Query("chain2")
    source = CheckpointableSource(IterableSource("src", paced(make_tuples(n), delay)))
    q.add_source("src", source)
    q.add_operator("sum1", MapOperator("sum1", RunningSum("a")), "src")
    q.add_operator("sum2", MapOperator("sum2", RunningSum("b")), "sum1")
    sink = CollectingSink("out")
    q.add_sink("out", sink, "sum2")
    return q, sink


def keyed_query(n=40, delay=0.0, parallelism_decl=1):
    q = Query("keyed")
    source = CheckpointableSource(IterableSource("src", paced(make_tuples(n), delay)))
    q.add_source("src", source)
    q.add_operator(
        "kc",
        lambda: MapOperator("kc", KeyedCount()),
        "src",
        key_fn=lambda t: t.layer % 4,
        replicable=True,
    )
    sink = CollectingSink("out")
    q.add_sink("out", sink, "kc")
    return q, sink


def checkpointed_store(build, plan=None, n=60, epochs=1):
    """Run ``build(n, delay)`` to completion under ``plan``, checkpointing."""
    store = MemoryStore()
    query, _ = build(n=n, delay=0.01)
    coordinator = CheckpointCoordinator(store)
    engine = StreamEngine(mode="threaded")
    engine.start(query, checkpointer=coordinator, plan=plan)
    for _ in range(epochs):
        coordinator.trigger(timeout=15.0)
    engine.wait(timeout=30)
    return store


def test_unfused_checkpoint_restores_into_fused_plan():
    store = checkpointed_store(two_stage_query, plan=None)
    recovery = RecoveryCoordinator(store)
    query, sink = two_stage_query(n=60)
    StreamEngine(mode="sync").run(query, on_built=recovery, plan=PlanConfig())
    assert {"sum1", "sum2"} <= set(recovery.report.nodes_restored)
    assert [t.payload["x"] for t in sink.results] == list(range(60))
    # both stages accumulate the same raw x values independently
    assert sink.results[-1].payload["a"] == sum(range(60))
    assert sink.results[-1].payload["b"] == sum(range(60))


def test_fused_checkpoint_restores_into_unfused_plan():
    store = checkpointed_store(two_stage_query, plan=PlanConfig(edge_batch_size=4))
    recovery = RecoveryCoordinator(store)
    query, sink = two_stage_query(n=60)
    StreamEngine(mode="sync").run(query, on_built=recovery, plan=None)
    assert {"sum1", "sum2"} <= set(recovery.report.nodes_restored)
    assert [t.payload["x"] for t in sink.results] == list(range(60))
    assert sink.results[-1].payload["a"] == sum(range(60))


def test_manifests_are_identical_across_plan_shapes():
    """The fused run snapshots under the original node names — its manifest
    is byte-compatible with the unfused run's."""
    plain = checkpointed_store(two_stage_query, plan=None)
    fused = checkpointed_store(two_stage_query, plan=PlanConfig())
    manifest_plain = CheckpointStorage(plain).load_manifest(0)
    manifest_fused = CheckpointStorage(fused).load_manifest(0)
    assert sorted(manifest_plain["nodes"]) == sorted(manifest_fused["nodes"])
    assert manifest_plain["sources"] == manifest_fused["sources"]


def test_unreplicated_checkpoint_restores_into_every_replica():
    store = checkpointed_store(keyed_query, plan=None)
    recovery = RecoveryCoordinator(store)
    query, sink = keyed_query(n=60)
    StreamEngine(mode="sync").run(
        query, on_built=recovery, plan=PlanConfig(fusion=False, parallelism=3)
    )
    assert "kc" in recovery.report.nodes_restored
    # every layer's tuple arrives exactly once; per-key sequence numbers
    # continue across the restore with no gap and no repeat
    got = sorted((t.layer, t.payload["nth"]) for t in sink.results)
    expected = sorted((i, i // 4 + 1) for i in range(60))
    assert got == expected


def test_replicated_checkpoint_into_unreplicated_plan_is_strict_error():
    store = checkpointed_store(keyed_query, plan=PlanConfig(parallelism=2))
    manifest = CheckpointStorage(store).load_manifest(0)
    assert any("::" in name for name in manifest["nodes"])  # replica entries
    query, _ = keyed_query(n=20)
    with pytest.raises(RecoveryError, match="unknown node"):
        StreamEngine(mode="sync").run(
            query, on_built=RecoveryCoordinator(store), plan=None
        )
    # lenient mode degrades to a cold start for the orphaned replicas
    query2, sink2 = keyed_query(n=20)
    recovery = RecoveryCoordinator(store, strict=False)
    StreamEngine(mode="sync").run(query2, on_built=recovery, plan=None)
    assert len(sink2.results) == 20


def test_crash_unfused_then_recover_fused():
    """The ISSUE's acceptance scenario: checkpoint under the unoptimized
    plan, crash mid-stream, recover under the fused+batched plan."""
    store = MemoryStore()
    n = 60
    query, sink = two_stage_query(n=n, delay=0.02)
    coordinator = CheckpointCoordinator(store)
    engine = StreamEngine(mode="threaded")
    engine.start(query, checkpointer=coordinator, plan=None)
    coordinator.trigger(timeout=15.0)
    chaos = ChaosInjector(engine, lambda: len(sink.results) >= 10, timeout=30.0).start()
    assert chaos.join(timeout=60.0), "chaos kill did not fire"
    assert len(sink.results) < n, "crash came too late to matter"

    recovery = RecoveryCoordinator(store)
    query2, sink2 = two_stage_query(n=n)
    StreamEngine(mode="threaded").run(
        query2, on_built=recovery, plan=PlanConfig(edge_batch_size=8)
    )
    assert recovery.report is not None
    assert recovery.report.sources_restored == ["src"]
    assert [t.payload["x"] for t in sink2.results] == list(range(n))
    assert sink2.results[-1].payload["a"] == sum(range(n))


def test_fused_checkpoint_during_batched_run_round_trips():
    """Checkpoint under fusion+batching, crash, recover under the same
    optimized shape — the common production path."""
    store = MemoryStore()
    n = 60
    plan = PlanConfig(edge_batch_size=8)
    query, sink = two_stage_query(n=n, delay=0.02)
    coordinator = CheckpointCoordinator(store)
    engine = StreamEngine(mode="threaded")
    engine.start(query, checkpointer=coordinator, plan=plan)
    coordinator.trigger(timeout=15.0)
    chaos = ChaosInjector(engine, lambda: len(sink.results) >= 10, timeout=30.0).start()
    assert chaos.join(timeout=60.0), "chaos kill did not fire"

    recovery = RecoveryCoordinator(store)
    query2, sink2 = two_stage_query(n=n)
    StreamEngine(mode="threaded").run(query2, on_built=recovery, plan=plan)
    assert [t.payload["x"] for t in sink2.results] == list(range(n))
    assert sink2.results[-1].payload["a"] == sum(range(n))
