"""DedupSink: duplicate suppression and checkpointed seen-set."""

from repro.recovery import DedupSink
from repro.recovery.dedup import result_identity
from repro.spe import CollectingSink, StreamTuple


def t(tau, layer=0, specimen="s1"):
    return StreamTuple(
        tau=float(tau), job="J", layer=layer, specimen=specimen,
        payload={"x": tau}, ingest_time=0.0,
    )


def test_duplicates_dropped():
    sink = DedupSink(CollectingSink("inner"))
    for x in (t(0), t(1), t(0), t(1), t(2)):
        sink.accept(x)
    assert [r.payload["x"] for r in sink.results] == [0.0, 1.0, 2.0]
    assert sink.duplicates == 2
    assert sink.seen == 3


def test_identity_spans_full_metadata():
    """Same tau but different layer/specimen are distinct results."""
    sink = DedupSink(CollectingSink("inner"))
    sink.accept(t(1, layer=0, specimen="a"))
    sink.accept(t(1, layer=0, specimen="b"))
    sink.accept(t(1, layer=1, specimen="a"))
    assert len(sink.results) == 3
    assert sink.duplicates == 0


def test_custom_key_fn():
    sink = DedupSink(CollectingSink("inner"), key_fn=lambda x: x.layer)
    sink.accept(t(0, layer=5))
    sink.accept(t(99, layer=5))  # same layer -> dropped
    assert len(sink.results) == 1


def test_seen_set_survives_snapshot_roundtrip():
    a = DedupSink(CollectingSink("inner"))
    a.accept(t(0))
    a.accept(t(1))
    state = a.snapshot_state()
    b = DedupSink(CollectingSink("inner"))
    b.restore_state(state)
    # replayed duplicates of checkpointed deliveries are suppressed
    b.accept(t(0))
    b.accept(t(1))
    b.accept(t(2))
    assert [r.payload["x"] for r in b.results] == [0.0, 1.0, 2.0]
    assert b.duplicates == 2


def test_restore_retuples_codec_lists():
    """Keys round-trip through the KV codec as lists; they must still
    compare equal to freshly computed tuple keys."""
    a = DedupSink(CollectingSink("inner"))
    a.accept(t(0))
    state = a.snapshot_state()
    state["seen"] = [list(key) for key in state["seen"]]  # what the codec does
    b = DedupSink(CollectingSink("inner"))
    b.restore_state(state)
    b.accept(t(0))
    assert b.duplicates == 1


def test_inner_state_checkpointed_alongside():
    a = DedupSink(CollectingSink("inner"))
    a.accept(t(0))
    state = a.snapshot_state()
    assert "inner" in state
    b = DedupSink(CollectingSink("inner"))
    b.restore_state(state)
    assert len(b.inner.results) == 1


def test_result_identity_shape():
    key = result_identity(t(3, layer=7, specimen="s2"))
    assert key == (3.0, "J", 7, "s2", None)


def test_on_close_propagates():
    closed = []

    class TrackingSink(CollectingSink):
        def on_close(self):
            closed.append(self.name)
            super().on_close()

    sink = DedupSink(TrackingSink("inner"))
    sink.on_close()
    assert closed == ["inner"]
