"""Shared helpers for recovery tests: small checkpointable SPE queries."""

from __future__ import annotations

import time

import pytest

from repro.spe import IterableSource, Query, StreamTuple
from repro.recovery import CheckpointableSource


def make_tuples(n, job="j"):
    return [
        StreamTuple(tau=float(i), job=job, layer=i, payload={"x": i}) for i in range(n)
    ]


def paced(items, delay=0.01):
    for item in items:
        if delay:
            time.sleep(delay)
        yield item


@pytest.fixture()
def chain_query_factory():
    """Builds src -> stateful sum -> sink, with a paced checkpointable source."""
    from repro.spe import CollectingSink, MapOperator

    def build(n=40, delay=0.01, sink=None):
        class RunningSum:
            def __init__(self):
                self.total = 0

            def __call__(self, t):
                self.total += t.payload["x"]
                return t.derive(payload={"x": t.payload["x"], "sum": self.total})

            def snapshot_state(self):
                return {"total": self.total}

            def restore_state(self, state):
                self.total = int(state["total"])

        fn = RunningSum()
        q = Query("chain")
        source = CheckpointableSource(IterableSource("src", paced(make_tuples(n), delay)))
        q.add_source("src", source)
        q.add_operator("sum", MapOperator("sum", fn), "src")
        sink = sink or CollectingSink("out")
        q.add_sink("out", sink, "sum")
        return q, source, fn, sink

    return build
