"""RecoveryCoordinator: epoch resolution, strictness, corrupt checkpoints."""

import pytest

from repro.kvstore.memory import MemoryStore
from repro.recovery import (
    CheckpointCoordinator,
    NoCheckpointError,
    RecoveryCoordinator,
    RecoveryError,
)
from repro.recovery.storage import CheckpointStorage
from repro.spe import StreamEngine


def checkpointed_store(chain_query_factory, epochs=1, n=60):
    store = MemoryStore()
    query, _, _, _ = chain_query_factory(n=n, delay=0.01)
    coordinator = CheckpointCoordinator(store)
    engine = StreamEngine(mode="threaded")
    engine.start(query, checkpointer=coordinator)
    for _ in range(epochs):
        coordinator.trigger(timeout=10.0)
    engine.wait(timeout=30)
    return store


def test_cold_start_without_checkpoint(chain_query_factory):
    recovery = RecoveryCoordinator(MemoryStore())
    query, _, _, sink = chain_query_factory(n=10, delay=0.0)
    StreamEngine(mode="sync").run(query, on_built=recovery)
    assert recovery.report is None
    assert len(sink.results) == 10


def test_require_checkpoint_raises_on_cold_start(chain_query_factory):
    recovery = RecoveryCoordinator(MemoryStore(), require_checkpoint=True)
    query, _, _, _ = chain_query_factory(n=5, delay=0.0)
    with pytest.raises(NoCheckpointError):
        StreamEngine(mode="sync").run(query, on_built=recovery)


def test_recovery_resumes_from_cut(chain_query_factory):
    store = checkpointed_store(chain_query_factory)
    storage = CheckpointStorage(store)
    cut = storage.load_source_position(0, "src")["emitted"]
    recovery = RecoveryCoordinator(store)
    query, source, fn, sink = chain_query_factory(n=60, delay=0.0)
    StreamEngine(mode="sync").run(query, on_built=recovery)
    assert recovery.report.epoch == 0
    assert recovery.report.sources_restored == ["src"]
    assert "sum" in recovery.report.nodes_restored
    # restored sink state carries the pre-cut prefix; the replay appends
    # exactly the suffix — one result per input, no loss, no duplication
    assert [t.payload["x"] for t in sink.results] == list(range(60))
    assert sink.results[cut].payload["x"] == cut
    assert sink.results[-1].payload["sum"] == sum(range(60))


def test_explicit_epoch_selection(chain_query_factory):
    store = checkpointed_store(chain_query_factory, epochs=2, n=80)
    storage = CheckpointStorage(store)
    assert storage.epochs() == [0, 1]
    cut0 = storage.load_source_position(0, "src")["emitted"]
    recovery = RecoveryCoordinator(store, epoch=0)
    query, _, _, sink = chain_query_factory(n=80, delay=0.0)
    StreamEngine(mode="sync").run(query, on_built=recovery)
    assert recovery.report.epoch == 0
    assert [t.payload["x"] for t in sink.results] == list(range(80))
    assert sink.results[cut0].payload["x"] == cut0


def test_missing_manifest_for_explicit_epoch(chain_query_factory):
    recovery = RecoveryCoordinator(MemoryStore(), epoch=7)
    query, _, _, _ = chain_query_factory(n=5, delay=0.0)
    with pytest.raises(NoCheckpointError):
        StreamEngine(mode="sync").run(query, on_built=recovery)


def test_strict_rejects_unknown_node(chain_query_factory):
    """Recovering into a different topology is an error by default."""
    store = MemoryStore()
    storage = CheckpointStorage(store)
    storage.save_node_state(0, "ghost", {"x": 1})
    storage.commit_manifest(0, {"epoch": 0, "nodes": ["ghost"], "sources": []})
    query, _, _, _ = chain_query_factory(n=5, delay=0.0)
    with pytest.raises(RecoveryError):
        StreamEngine(mode="sync").run(query, on_built=RecoveryCoordinator(store))


def test_lenient_skips_unknown_node(chain_query_factory):
    store = MemoryStore()
    storage = CheckpointStorage(store)
    storage.save_node_state(0, "ghost", {"x": 1})
    storage.commit_manifest(0, {"epoch": 0, "nodes": ["ghost"], "sources": []})
    recovery = RecoveryCoordinator(store, strict=False)
    query, _, _, sink = chain_query_factory(n=5, delay=0.0)
    StreamEngine(mode="sync").run(query, on_built=recovery)
    assert recovery.report.nodes_restored == []
    assert len(sink.results) == 5


def test_corrupt_checkpoint_missing_state_record(chain_query_factory):
    """A manifest that lists a node whose record is gone must fail loudly."""
    store = checkpointed_store(chain_query_factory)
    storage = CheckpointStorage(store)
    store.delete(storage.node_key(0, "sum"))
    query, _, _, _ = chain_query_factory(n=5, delay=0.0)
    with pytest.raises(RecoveryError):
        StreamEngine(mode="sync").run(query, on_built=RecoveryCoordinator(store))


def test_corrupt_checkpoint_missing_source_record(chain_query_factory):
    store = checkpointed_store(chain_query_factory)
    storage = CheckpointStorage(store)
    store.delete(storage.source_key(0, "src"))
    query, _, _, _ = chain_query_factory(n=5, delay=0.0)
    with pytest.raises(RecoveryError):
        StreamEngine(mode="sync").run(query, on_built=RecoveryCoordinator(store))
