"""Integration: kill the full Alg. 1 pipeline mid-build and recover it.

The acceptance bar for the recovery subsystem: after a crash following at
least two committed checkpoints, a recovered run must report, for every
(layer, specimen), the same per-cell event counts and the same cluster
sets as an uninterrupted oracle run.
"""

import time

import pytest

from repro.core import (
    Strata,
    UseCaseConfig,
    build_use_case,
    calibrate_job,
    specimen_regions_px,
)
from repro.kvstore.memory import MemoryStore
from repro.recovery import ChaosInjector, CheckpointCoordinator, RecoveryCoordinator
from tests.conftest import TEST_IMAGE_PX

CELL_EDGE = 5
WINDOW = 4


def _normalize_cluster(cluster: dict) -> tuple:
    """Codec-stable view of one cluster summary (tuples vs lists)."""
    return (
        cluster["size"],
        tuple(round(c, 6) for c in cluster["centroid"]),
        tuple(cluster["layers"]),
        round(cluster["volume_mm3"], 9),
    )


def signature(results) -> list[tuple]:
    """Per-result identity: metadata + event count + full cluster set."""
    return sorted(
        (
            t.job,
            t.layer,
            t.specimen,
            t.payload["num_events"],
            tuple(sorted(_normalize_cluster(c) for c in t.payload["clusters"])),
        )
        for t in results
    )


def _paced(records, delay):
    for record in records:
        time.sleep(delay)
        yield record


def _build(strata, layer_records, reference_images, test_job, delay=0.0):
    config = UseCaseConfig(
        image_px=TEST_IMAGE_PX, cell_edge_px=CELL_EDGE, window_layers=WINDOW
    )
    calibrate_job(
        strata.kv, test_job.job_id, reference_images, CELL_EDGE,
        regions=specimen_regions_px(test_job.specimens, TEST_IMAGE_PX),
    )
    ot = _paced(layer_records, delay) if delay else iter(layer_records)
    pp = _paced(layer_records, delay) if delay else iter(layer_records)
    return build_use_case(ot, pp, config, strata=strata, checkpointable=True)


@pytest.fixture(scope="module")
def oracle_signature(layer_records, reference_images, test_job):
    strata = Strata(engine_mode="threaded")
    pipeline = _build(strata, layer_records, reference_images, test_job)
    strata.deploy()
    return signature(pipeline.sink.results)


def test_crash_after_two_checkpoints_recovers_identically(
    layer_records, reference_images, test_job, oracle_signature
):
    ckpt_store = MemoryStore()

    # -- run 1: checkpoint twice, then die mid-build --------------------------
    strata = Strata(engine_mode="threaded")
    pipeline = _build(
        strata, layer_records, reference_images, test_job, delay=0.35
    )
    coordinator = CheckpointCoordinator(ckpt_store, retain=3)
    strata.start(checkpointer=coordinator)
    epochs = 0
    deadline = time.monotonic() + 60
    while epochs < 2 and time.monotonic() < deadline:
        coordinator.trigger(timeout=15.0)
        epochs += 1
    assert epochs >= 2, "need at least two committed checkpoints before the kill"
    chaos = ChaosInjector(
        strata._engine, lambda: len(pipeline.sink.results) >= 6, timeout=60.0
    ).start()
    assert chaos.join(timeout=90.0), "chaos kill did not fire"
    partial = signature(pipeline.sink.results)
    assert len(partial) < len(oracle_signature), "crash came too late to matter"

    # -- run 2: fresh pipeline, recover from the newest checkpoint ------------
    strata2 = Strata(engine_mode="threaded")
    pipeline2 = _build(strata2, layer_records, reference_images, test_job)
    recovery = RecoveryCoordinator(ckpt_store)
    strata2.deploy(recover_from=recovery)
    assert recovery.report is not None
    assert recovery.report.epoch == max(coordinator.completed_epochs)
    assert recovery.report.sources_restored  # both collectors rewound

    recovered = signature(pipeline2.sink.results)
    # The recovered run must close the gap exactly: everything the oracle
    # reported, nothing extra, no duplicates (DedupSink absorbs replays).
    assert sorted(set(partial) | set(recovered)) == oracle_signature
    assert len(recovered) == len(set(recovered)), "duplicate results delivered"


def test_recovered_run_latency_state_restored(
    layer_records, reference_images, test_job
):
    """Sink-side latency samples checkpointed before the crash are part of
    the restored state, so post-recovery reports span the whole build."""
    ckpt_store = MemoryStore()
    strata = Strata(engine_mode="threaded")
    pipeline = _build(
        strata, layer_records, reference_images, test_job, delay=0.35
    )
    coordinator = CheckpointCoordinator(ckpt_store)
    strata.start(checkpointer=coordinator)
    coordinator.trigger(timeout=15.0)
    chaos = ChaosInjector(
        strata._engine, lambda: len(pipeline.sink.results) >= 3, timeout=60.0
    ).start()
    assert chaos.join(timeout=90.0)

    strata2 = Strata(engine_mode="threaded")
    pipeline2 = _build(strata2, layer_records, reference_images, test_job)
    strata2.deploy(recover_from=RecoveryCoordinator(ckpt_store))
    expected = len(layer_records) * len(test_job.specimens)
    assert len(pipeline2.sink.results) == expected
    assert len(pipeline2.sink.latency.samples()) >= len(pipeline2.sink.results)
