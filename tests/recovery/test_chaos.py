"""Chaos harness: condition-triggered kills and in-operator crashes."""

import pytest

from repro.kvstore.memory import MemoryStore
from repro.recovery import (
    ChaosError,
    ChaosInjector,
    CheckpointCoordinator,
    CrashingFunction,
    RecoveryCoordinator,
)
from repro.spe import StreamEngine


def test_injector_kills_on_condition(chain_query_factory):
    query, _, _, sink = chain_query_factory(n=500, delay=0.01)
    engine = StreamEngine(mode="threaded")
    engine.start(query)
    chaos = ChaosInjector(engine, lambda: len(sink.results) >= 5).start()
    assert chaos.join(timeout=30.0)
    assert chaos.fired.is_set()
    assert not chaos.timed_out
    # hard stop: far fewer than the 500 offered tuples arrived
    assert 5 <= len(sink.results) < 500


def test_injector_times_out_when_condition_never_holds(chain_query_factory):
    query, _, _, _ = chain_query_factory(n=5, delay=0.0)
    engine = StreamEngine(mode="threaded")
    engine.start(query)
    engine.wait(timeout=30)
    chaos = ChaosInjector(engine, lambda: False, timeout=0.1).start()
    assert chaos.join(timeout=5.0) is False
    assert chaos.timed_out


def test_kill_then_recover_completes(chain_query_factory):
    """The canonical chaos loop: checkpoint, kill, recover, finish."""
    store = MemoryStore()
    query, _, _, sink = chain_query_factory(n=120, delay=0.01)
    coordinator = CheckpointCoordinator(store)
    engine = StreamEngine(mode="threaded")
    engine.start(query, checkpointer=coordinator)
    coordinator.trigger(timeout=10.0)
    chaos = ChaosInjector(
        engine,
        lambda: bool(coordinator.completed_epochs) and len(sink.results) >= 10,
    ).start()
    assert chaos.join(timeout=30.0)

    recovery = RecoveryCoordinator(store)
    query2, _, _, sink2 = chain_query_factory(n=120, delay=0.0)
    StreamEngine(mode="sync").run(query2, on_built=recovery)
    assert recovery.report is not None
    assert [t.payload["x"] for t in sink2.results] == list(range(120))
    assert sink2.results[-1].payload["sum"] == sum(range(120))


def test_crashing_function_raises_after_n():
    fn = CrashingFunction(lambda t: t, crash_after=3)
    for i in range(3):
        assert fn(i) == i
    with pytest.raises(ChaosError):
        fn(99)


def test_crashing_function_inside_query(chain_query_factory):
    """An in-operator crash takes the node down via the engine error path;
    the partial results before the crash are still in the sink."""
    from repro.spe import CollectingSink, IterableSource, MapOperator, Query

    from .conftest import make_tuples, paced

    q = Query("crashing")
    from repro.recovery import CheckpointableSource

    source = CheckpointableSource(IterableSource("src", paced(make_tuples(50), 0.005)))
    q.add_source("src", source)
    q.add_operator(
        "boom", MapOperator("boom", CrashingFunction(lambda t: t, crash_after=20)), "src"
    )
    sink = CollectingSink("out")
    q.add_sink("out", sink, "boom")
    engine = StreamEngine(mode="threaded")
    engine.start(q)
    with pytest.raises(Exception):
        engine.wait(timeout=30)
    assert len(sink.results) <= 20
