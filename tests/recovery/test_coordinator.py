"""Checkpoint coordinator: epochs, commit atomicity, retention, daemon."""

import threading
import time

import pytest

from repro.kvstore.memory import MemoryStore
from repro.recovery import (
    CheckpointConfigError,
    CheckpointCoordinator,
    CheckpointStorage,
)
from repro.spe import CollectingSink, ListSource, Query, StreamEngine

from .conftest import make_tuples


def test_trigger_commits_manifest(chain_query_factory):
    query, _, fn, sink = chain_query_factory(n=60, delay=0.01)
    store = MemoryStore()
    coordinator = CheckpointCoordinator(store)
    engine = StreamEngine(mode="threaded")
    engine.start(query, checkpointer=coordinator)
    epoch = coordinator.trigger(timeout=10.0)
    engine.wait(timeout=30)
    assert epoch == 0
    storage = coordinator.storage
    manifest = storage.load_manifest(0)
    assert manifest is not None
    assert "sum" in manifest["nodes"]
    assert manifest["sources"] == ["src"]
    assert storage.load_node_state(0, "sum") is not None
    position = storage.load_source_position(0, "src")
    assert position["kind"] == "count"
    assert 0 <= position["emitted"] <= 60
    assert coordinator.last_duration is not None


def test_snapshot_matches_source_cut(chain_query_factory):
    """The operator snapshot must reflect exactly the pre-barrier prefix."""
    query, _, fn, sink = chain_query_factory(n=50, delay=0.01)
    store = MemoryStore()
    coordinator = CheckpointCoordinator(store)
    engine = StreamEngine(mode="threaded")
    engine.start(query, checkpointer=coordinator)
    coordinator.trigger(timeout=10.0)
    engine.wait(timeout=30)
    emitted = coordinator.storage.load_source_position(0, "src")["emitted"]
    total = coordinator.storage.load_node_state(0, "sum")["fn"]["total"]
    assert total == sum(range(emitted))


def test_multiple_epochs_in_one_run(chain_query_factory):
    query, _, _, _ = chain_query_factory(n=80, delay=0.01)
    coordinator = CheckpointCoordinator(MemoryStore())
    engine = StreamEngine(mode="threaded")
    engine.start(query, checkpointer=coordinator)
    first = coordinator.trigger(timeout=10.0)
    second = coordinator.trigger(timeout=10.0)
    engine.wait(timeout=30)
    assert (first, second) == (0, 1)
    assert coordinator.storage.epochs() == [0, 1]
    # later epoch saw at least as much of the stream
    pos0 = coordinator.storage.load_source_position(0, "src")["emitted"]
    pos1 = coordinator.storage.load_source_position(1, "src")["emitted"]
    assert pos1 >= pos0


def test_epoch_numbering_continues_across_runs(chain_query_factory):
    store = MemoryStore()
    for expected_epoch in (0, 1):
        query, _, _, _ = chain_query_factory(n=40, delay=0.01)
        coordinator = CheckpointCoordinator(store)
        engine = StreamEngine(mode="threaded")
        engine.start(query, checkpointer=coordinator)
        assert coordinator.trigger(timeout=10.0) == expected_epoch
        engine.wait(timeout=30)
    assert CheckpointStorage(store).epochs() == [0, 1]


def test_retain_applied_on_commit(chain_query_factory):
    query, _, _, _ = chain_query_factory(n=200, delay=0.005)
    coordinator = CheckpointCoordinator(MemoryStore(), retain=2)
    engine = StreamEngine(mode="threaded")
    engine.start(query, checkpointer=coordinator)
    for _ in range(4):
        coordinator.trigger(timeout=10.0)
    engine.stop()
    assert coordinator.storage.epochs() == [2, 3]


def test_on_epoch_committed_callback(chain_query_factory):
    committed = []
    query, _, _, _ = chain_query_factory(n=60, delay=0.01)
    coordinator = CheckpointCoordinator(
        MemoryStore(), on_epoch_committed=committed.append
    )
    engine = StreamEngine(mode="threaded")
    engine.start(query, checkpointer=coordinator)
    coordinator.trigger(timeout=10.0)
    engine.wait(timeout=30)
    assert committed == [0]


def test_unbound_coordinator_rejects_checkpoints():
    coordinator = CheckpointCoordinator(MemoryStore())
    with pytest.raises(CheckpointConfigError):
        coordinator.request_checkpoint()


def test_bind_rejects_plain_sources():
    q = Query("plain")
    q.add_source("src", ListSource("src", make_tuples(3)))
    q.add_sink("out", CollectingSink("out"), "src")
    coordinator = CheckpointCoordinator(MemoryStore())
    engine = StreamEngine(mode="sync")
    with pytest.raises(CheckpointConfigError):
        engine.run(q, checkpointer=coordinator)


def test_interval_and_retain_validation():
    with pytest.raises(ValueError):
        CheckpointCoordinator(MemoryStore(), interval=0)
    with pytest.raises(ValueError):
        CheckpointCoordinator(MemoryStore(), retain=0)
    with pytest.raises(CheckpointConfigError):
        CheckpointCoordinator(MemoryStore()).start_periodic()


def test_periodic_daemon_commits_epochs(chain_query_factory):
    query, _, _, _ = chain_query_factory(n=150, delay=0.01)
    coordinator = CheckpointCoordinator(MemoryStore(), interval=0.05)
    engine = StreamEngine(mode="threaded")
    engine.start(query, checkpointer=coordinator)
    coordinator.start_periodic()
    deadline = time.monotonic() + 10
    while len(coordinator.completed_epochs) < 2 and time.monotonic() < deadline:
        time.sleep(0.01)
    engine.stop()
    coordinator.stop()
    assert len(coordinator.completed_epochs) >= 2


def test_wait_for_completed_epoch_returns_true(chain_query_factory):
    query, _, _, _ = chain_query_factory(n=60, delay=0.01)
    coordinator = CheckpointCoordinator(MemoryStore())
    engine = StreamEngine(mode="threaded")
    engine.start(query, checkpointer=coordinator)
    epoch = coordinator.trigger(timeout=10.0)
    engine.wait(timeout=30)
    assert coordinator.wait_for(epoch, timeout=0.1) is True


def test_checkpoint_after_drain_times_out(chain_query_factory):
    """A barrier injected after the source finished can never complete."""
    query, _, _, _ = chain_query_factory(n=3, delay=0.0)
    coordinator = CheckpointCoordinator(MemoryStore())
    engine = StreamEngine(mode="threaded")
    engine.start(query, checkpointer=coordinator)
    engine.wait(timeout=30)
    with pytest.raises(TimeoutError):
        coordinator.trigger(timeout=0.2)
    assert coordinator.storage.epochs() == []
