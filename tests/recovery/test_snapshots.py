"""Snapshot/restore roundtrips for every stateful component."""

import numpy as np
import pytest

from repro.analysis.adaptive import AdaptiveThresholdLearner
from repro.clustering.incremental import IncrementalLayerClusterer
from repro.core.operators import CorrelateEventsOperator, DetectEventOperator
from repro.spe import CollectingSink, StreamTuple
from repro.spe.metrics import LatencyRecorder
from repro.spe.operators.aggregate import AggregateOperator
from repro.spe.operators.join import JoinOperator
from repro.spe.sink import DeadlineSink


def t(tau, layer=0, specimen="s1", payload=None):
    return StreamTuple(
        tau=float(tau), job="J", layer=layer, specimen=specimen,
        payload=payload or {"x": tau}, ingest_time=0.0,
    )


def test_aggregate_roundtrip():
    fn = lambda key, start, end, tuples: {"n": len(tuples)}
    a = AggregateOperator("a", ws=4.0, wa=2.0, fn=fn)
    for i in range(5):
        a.process(0, t(i))
    state = a.snapshot_state()
    b = AggregateOperator("b", ws=4.0, wa=2.0, fn=fn)
    b.restore_state(state)
    assert b.open_windows == a.open_windows
    # both drains must now produce identical remaining windows
    out_a = [x.payload for x in a.process(0, t(9))] + [x.payload for x in a.on_close()]
    out_b = [x.payload for x in b.process(0, t(9))] + [x.payload for x in b.on_close()]
    assert out_a == out_b


def test_join_roundtrip():
    make = lambda: JoinOperator(
        "j", ws=0.0, group_by=lambda x: x.layer,
        combiner=lambda l, r: l.derive(payload={"s": l.tau + r.tau}),
    )
    a = make()
    for i in range(4):
        a.process(0, t(i, layer=i))
    a.process(1, t(0, layer=0))
    state = a.snapshot_state()
    b = make()
    b.restore_state(state)
    out = b.process(1, t(2, layer=2))
    assert [x.payload["s"] for x in out] == [4.0]


def test_correlate_events_roundtrip():
    calls = []

    def fn(job, layer, specimen, events):
        calls.append((job, layer, specimen, len(events)))
        return {"n": len(events)}

    a = CorrelateEventsOperator("c", window_layers=3, fn=fn)
    for layer in range(3):
        for k in range(2):
            a.process(0, t(layer * 10 + k, layer=layer))
    state = a.snapshot_state()
    b = CorrelateEventsOperator("c2", window_layers=3, fn=fn)
    b.restore_state(state)
    from repro.core.punctuation import make_punctuation

    punct = make_punctuation(t(99, layer=2), "s1")
    out_a = a.process(0, punct)
    out_b = b.process(0, punct)
    assert [x.payload for x in out_a] == [x.payload for x in out_b] == [{"n": 6}]
    assert b.triggers == a.triggers


def test_detect_event_roundtrip():
    a = DetectEventOperator("d", fn=lambda x: [x])
    for i in range(5):
        a.process(0, t(i))
    b = DetectEventOperator("d2", fn=lambda x: [x])
    b.restore_state(a.snapshot_state())
    assert b.events_out == a.events_out


def _thresholds():
    from repro.analysis.thresholds import ThermalThresholds

    return ThermalThresholds(
        very_cold_below=90.0, cold_below=110.0, warm_above=150.0,
        very_warm_above=170.0,
    )


def test_adaptive_learner_roundtrip():
    a = AdaptiveThresholdLearner(_thresholds(), alpha=0.2)
    rng = np.random.default_rng(3)
    for _ in range(20):
        a.update(rng.normal(130.0, 5.0, size=64))
    b = AdaptiveThresholdLearner(_thresholds(), alpha=0.2)
    b.restore_state(a.snapshot_state())
    frame = rng.normal(128.0, 5.0, size=64)
    a.update(frame)
    b.update(frame)
    assert a.snapshot_state() == b.snapshot_state()
    assert b.current == a.current


def test_incremental_clusterer_roundtrip():
    make = lambda: IncrementalLayerClusterer(
        window_layers=3, eps=1.5, min_samples=2, layer_thickness_mm=0.04
    )
    a = make()
    rng = np.random.default_rng(5)
    for layer in range(4):
        a.observe_layer(layer, rng.uniform(0, 10, size=(6, 2)))
    state = a.snapshot_state()
    b = make()
    b.restore_state(state)
    pts = rng.uniform(0, 10, size=(5, 2))
    ra = a.observe_layer(4, pts)
    rb = b.observe_layer(4, pts)
    np.testing.assert_array_equal(ra.labels, rb.labels)
    np.testing.assert_array_equal(ra.points, rb.points)
    assert ra.num_clusters == rb.num_clusters


def test_latency_recorder_roundtrip():
    a = LatencyRecorder()
    for s in (0.1, 0.2, 0.3):
        a.record(s)
    b = LatencyRecorder()
    b.restore(a.snapshot())
    assert b.samples() == [0.1, 0.2, 0.3]


def test_collecting_sink_roundtrip():
    a = CollectingSink("s")
    for i in range(3):
        a.accept(t(i))
    state = a.snapshot_state()
    b = CollectingSink("s")
    b.restore_state(state)
    assert [x.tau for x in b.results] == [0.0, 1.0, 2.0]
    assert b.latency.samples() == a.latency.samples()


def test_deadline_sink_roundtrip():
    a = DeadlineSink(CollectingSink("inner"), qos_seconds=1000.0)
    for i in range(4):
        a.accept(t(i))
    b = DeadlineSink(CollectingSink("inner"), qos_seconds=1000.0)
    b.restore_state(a.snapshot_state())
    assert b.delivered == 4
    assert b.violations == a.violations
    assert len(b.inner.results) == 4


def test_stateless_operator_snapshots_none():
    from repro.spe import FilterOperator, MapOperator

    assert MapOperator("m", lambda x: x).snapshot_state() is None
    # FilterOperator counts drops -> stateful
    f = FilterOperator("f", lambda x: True)
    assert isinstance(f.snapshot_state(), dict)
