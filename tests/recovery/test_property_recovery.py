"""Property: checkpoint + restore + replay ≡ an uninterrupted oracle run.

For random stateful operator chains and a random barrier cut point, the
sequence (snapshot at the barrier, rebuild the chain, restore, replay the
post-cut suffix) must deliver exactly the results of a synchronous oracle
run that never checkpointed — same values, same order.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kvstore.memory import MemoryStore
from repro.recovery import (
    CheckpointableSource,
    CheckpointCoordinator,
    RecoveryCoordinator,
)
from repro.spe import (
    AggregateOperator,
    CollectingSink,
    FilterOperator,
    IterableSource,
    MapOperator,
    Query,
    StreamEngine,
    StreamTuple,
)


def make_tuples(n):
    return [
        StreamTuple(tau=float(i), job="j", layer=i, payload={"x": i}, ingest_time=0.0)
        for i in range(n)
    ]


class RunningSum:
    """Stateful map function implementing the snapshot protocol."""

    def __init__(self):
        self.total = 0

    def __call__(self, t):
        self.total += t.payload["x"]
        return t.derive(payload={"x": self.total})

    def snapshot_state(self):
        return {"total": self.total}

    def restore_state(self, state):
        self.total = int(state["total"])


class EveryOther:
    """Stateful filter: keeps every second tuple it sees (order-dependent)."""

    def __init__(self):
        self.count = 0

    def __call__(self, t):
        self.count += 1
        return self.count % 2 == 1

    def snapshot_state(self):
        return {"count": self.count}

    def restore_state(self, state):
        self.count = int(state["count"])


OP_CATALOG = {
    "sum": lambda name: MapOperator(name, RunningSum()),
    "double": lambda name: MapOperator(
        name, lambda t: t.derive(payload={"x": t.payload["x"] * 2})
    ),
    "mod_filter": lambda name: FilterOperator(name, lambda t: t.layer % 3 != 1),
    "every_other": lambda name: FilterOperator(name, EveryOther()),
    "window_sum": lambda name: AggregateOperator(
        name,
        ws=4.0,
        wa=2.0,
        fn=lambda key, start, end, tuples: {"x": sum(t.payload["x"] for t in tuples)},
    ),
}


def build_query(chain: list[str], n: int, barrier_after: int | None, coordinator_ref):
    """src -> chain ops -> sink; optionally request a checkpoint mid-stream."""

    def feeding():
        for i, t in enumerate(make_tuples(n)):
            if barrier_after is not None and i == barrier_after:
                coordinator_ref[0].request_checkpoint()
            yield t

    q = Query("prop")
    source = CheckpointableSource(IterableSource("src", feeding()))
    q.add_source("src", source)
    upstream = "src"
    for index, op_name in enumerate(chain):
        node = f"op{index}"
        q.add_operator(node, OP_CATALOG[op_name](node), upstream)
        upstream = node
    sink = CollectingSink("out")
    q.add_sink("out", sink, upstream)
    return q, sink


def result_signature(sink):
    return [(t.tau, t.layer, t.payload["x"]) for t in sink.results]


@settings(max_examples=40, deadline=None)
@given(
    chain=st.lists(st.sampled_from(sorted(OP_CATALOG)), min_size=1, max_size=4),
    n=st.integers(min_value=1, max_value=32),
    data=st.data(),
)
def test_checkpoint_restore_replay_equals_oracle(chain, n, data):
    cut = data.draw(st.integers(min_value=0, max_value=n - 1), label="cut")

    # oracle: plain synchronous run, no checkpointing anywhere
    oracle_query, oracle_sink = build_query(chain, n, None, None)
    StreamEngine(mode="sync").run(oracle_query)
    oracle = result_signature(oracle_sink)

    # run 1: same chain, checkpoint at the cut; barriers must be transparent
    store = MemoryStore()
    coordinator_ref = [None]
    query1, sink1 = build_query(chain, n, cut, coordinator_ref)
    coordinator = CheckpointCoordinator(store)
    coordinator_ref[0] = coordinator
    StreamEngine(mode="sync").run(query1, checkpointer=coordinator)
    assert result_signature(sink1) == oracle, "barrier changed the results"
    assert coordinator.storage.epochs() == [0]

    # run 2: fresh chain, restore the checkpoint, replay the suffix
    recovery = RecoveryCoordinator(store)
    query2, sink2 = build_query(chain, n, None, None)
    StreamEngine(mode="sync").run(query2, on_built=recovery)
    assert recovery.report is not None
    assert result_signature(sink2) == oracle
