"""Broker topic registry and consumer-group offset bookkeeping."""

import pytest

from repro.pubsub import Broker, BrokerClosedError, TopicExistsError, UnknownTopicError


def test_create_and_lookup():
    broker = Broker()
    broker.create_topic("ot", partitions=2)
    assert broker.topic("ot").num_partitions == 2
    assert broker.topics() == ["ot"]
    assert broker.has_topic("ot")


def test_duplicate_create_rejected():
    broker = Broker()
    broker.create_topic("t")
    with pytest.raises(TopicExistsError):
        broker.create_topic("t")


def test_ensure_topic_idempotent():
    broker = Broker()
    first = broker.ensure_topic("t", partitions=3)
    second = broker.ensure_topic("t", partitions=99)  # partitions ignored
    assert first is second
    assert second.num_partitions == 3


def test_unknown_topic():
    broker = Broker()
    with pytest.raises(UnknownTopicError):
        broker.topic("nope")


def test_commit_and_fetch():
    broker = Broker()
    broker.create_topic("t")
    assert broker.committed("g", "t", 0) is None
    broker.commit("g", "t", 0, 17)
    assert broker.committed("g", "t", 0) == 17
    assert broker.committed("other-group", "t", 0) is None


def test_negative_commit_rejected():
    broker = Broker()
    with pytest.raises(ValueError):
        broker.commit("g", "t", 0, -1)


def test_reset_group():
    broker = Broker()
    broker.commit("g", "a", 0, 5)
    broker.commit("g", "b", 0, 7)
    broker.commit("g2", "a", 0, 9)
    broker.reset_group("g", topics=["a"])
    assert broker.committed("g", "a", 0) is None
    assert broker.committed("g", "b", 0) == 7
    broker.reset_group("g")
    assert broker.committed("g", "b", 0) is None
    assert broker.committed("g2", "a", 0) == 9


def test_closed_broker_rejects_operations():
    broker = Broker()
    broker.close()
    with pytest.raises(BrokerClosedError):
        broker.create_topic("t")
