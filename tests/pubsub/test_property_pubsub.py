"""Property-based pub/sub invariants."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.pubsub import Broker, Consumer, Producer

keys = st.one_of(st.none(), st.text(min_size=1, max_size=6))
records = st.lists(st.tuples(keys, st.integers()), max_size=80)


@given(data=records, partitions=st.integers(min_value=1, max_value=5))
@settings(max_examples=50, deadline=None)
def test_all_records_delivered_exactly_once(data, partitions):
    broker = Broker()
    broker.create_topic("t", partitions=partitions)
    producer = Producer(broker)
    for key, value in data:
        producer.send("t", value, key=key)
    consumer = Consumer(broker, "g", ["t"])
    received = [m.value for m in consumer.poll(max_records=10_000)]
    assert sorted(received) == sorted(value for _, value in data)
    assert consumer.poll() == []  # exactly once: nothing left


@given(data=records, partitions=st.integers(min_value=1, max_value=5))
@settings(max_examples=50, deadline=None)
def test_per_key_fifo_order(data, partitions):
    broker = Broker()
    broker.create_topic("t", partitions=partitions)
    producer = Producer(broker)
    sent: dict[str | None, list[int]] = {}
    for key, value in data:
        producer.send("t", value, key=key)
        if key is not None:
            sent.setdefault(key, []).append(value)
    consumer = Consumer(broker, "g", ["t"])
    got: dict[str | None, list[int]] = {}
    for message in consumer.poll(max_records=10_000):
        got.setdefault(message.key, []).append(message.value)
    for key, values in sent.items():
        assert got.get(key, []) == values


@given(
    data=st.lists(st.integers(), min_size=1, max_size=50),
    split=st.integers(min_value=0, max_value=50),
)
@settings(max_examples=50, deadline=None)
def test_offsets_restartable_at_any_commit_point(data, split):
    split = min(split, len(data))
    broker = Broker()
    broker.create_topic("t", partitions=1)
    producer = Producer(broker)
    for value in data:
        producer.send("t", value)
    first = Consumer(broker, "g", ["t"])
    head = [m.value for m in first.poll(max_records=split)] if split else []
    second = Consumer(broker, "g", ["t"])
    tail = [m.value for m in second.poll(max_records=10_000)]
    assert head + tail == data
