"""Consumers: offsets, groups, replay, rebalancing."""

import pytest

from repro.pubsub import Broker, Consumer, ConsumerGroup, InvalidOffsetError, Producer


@pytest.fixture()
def broker():
    b = Broker()
    b.create_topic("events", partitions=3)
    return b


def fill(broker, n=30, topic="events"):
    producer = Producer(broker)
    for i in range(n):
        producer.send(topic, {"i": i}, key=f"k{i % 5}")
    return producer


def test_earliest_reads_everything(broker):
    fill(broker)
    consumer = Consumer(broker, "g", ["events"])
    values = sorted(m.value["i"] for m in consumer.poll())
    assert values == list(range(30))


def test_latest_skips_history(broker):
    fill(broker)
    consumer = Consumer(broker, "g", ["events"], auto_offset_reset="latest")
    assert consumer.poll() == []
    fill(broker, 5)
    assert len(consumer.poll()) == 5


def test_group_resume_after_restart(broker):
    fill(broker, 10)
    consumer = Consumer(broker, "g", ["events"])
    assert len(consumer.poll()) == 10
    fill(broker, 7)
    # a new consumer with the same group id picks up where the group left off
    resumed = Consumer(broker, "g", ["events"])
    assert len(resumed.poll()) == 7


def test_distinct_groups_independent(broker):
    fill(broker, 10)
    a = Consumer(broker, "ga", ["events"])
    b = Consumer(broker, "gb", ["events"])
    assert len(a.poll()) == 10
    assert len(b.poll()) == 10


def test_manual_commit(broker):
    fill(broker, 10)
    consumer = Consumer(broker, "g", ["events"], auto_commit=False)
    assert len(consumer.poll()) == 10
    # nothing committed -> a sibling starts from scratch
    sibling = Consumer(broker, "g", ["events"])
    assert len(sibling.poll()) == 10
    sibling.commit()
    third = Consumer(broker, "g", ["events"])
    assert third.poll() == []


def test_seek_replays(broker):
    broker2 = Broker()
    broker2.create_topic("t", partitions=1)
    producer = Producer(broker2)
    for i in range(10):
        producer.send("t", i)
    consumer = Consumer(broker2, "g", ["t"])
    assert len(consumer.poll()) == 10
    consumer.seek("t", 0, 5)
    assert [m.value for m in consumer.poll()] == [5, 6, 7, 8, 9]


def test_seek_unassigned_partition_rejected(broker):
    consumer = Consumer(broker, "g", ["events"])
    with pytest.raises(InvalidOffsetError):
        consumer.seek("events", 99, 0)


def test_per_key_order_preserved(broker):
    producer = Producer(broker)
    for i in range(50):
        producer.send("events", i, key=f"key-{i % 7}")
    consumer = Consumer(broker, "g", ["events"])
    per_key: dict[str, list[int]] = {}
    for message in consumer.poll():
        per_key.setdefault(message.key, []).append(message.value)
    for values in per_key.values():
        assert values == sorted(values)


def test_consumer_group_covers_all_partitions(broker):
    fill(broker, 30)
    group = ConsumerGroup(broker, "g", "events", members=2)
    seen = []
    for member in group.members:
        seen.extend(m.value["i"] for m in member.poll())
    assert sorted(seen) == list(range(30))
    # partitions split disjointly
    assignments = [set(m.assignment) for m in group.members]
    assert assignments[0].isdisjoint(assignments[1])


def test_retention_fallback_to_earliest():
    broker = Broker()
    broker.create_topic("t", partitions=1, retention=5)
    producer = Producer(broker)
    consumer = Consumer(broker, "g", ["t"])
    for i in range(20):
        producer.send("t", i)
    # first poll: position 0 was trimmed; consumer falls forward to start
    values = [m.value for m in consumer.poll()]
    assert values == [15, 16, 17, 18, 19]


def test_iterator_drains(broker):
    fill(broker, 12)
    consumer = Consumer(broker, "g", ["events"])
    assert len(list(consumer)) == 12


def test_invalid_reset_policy(broker):
    with pytest.raises(ValueError):
        Consumer(broker, "g", ["events"], auto_offset_reset="whenever")


# -- per-partition commit (checkpoint offset pinning) ------------------------


def test_committed_none_before_any_commit(broker):
    consumer = Consumer(broker, "g", ["events"], auto_commit=False)
    assert consumer.committed("events", 0) is None


def test_per_partition_commit_explicit_offset(broker):
    fill(broker, 30)
    consumer = Consumer(broker, "g", ["events"], auto_commit=False)
    consumer.poll()
    consumer.commit("events", 1, 4)
    assert consumer.committed("events", 1) == 4
    # the other partitions stay uncommitted
    assert consumer.committed("events", 0) is None
    assert consumer.committed("events", 2) is None


def test_per_partition_commit_defaults_to_position(broker):
    fill(broker, 30)
    consumer = Consumer(broker, "g", ["events"], auto_commit=False)
    consumer.poll()
    consumer.commit("events", 0)
    assert consumer.committed("events", 0) == consumer.position("events", 0)


def test_per_partition_commit_independent_of_read_position(broker):
    """A checkpoint pins the barrier offset, not how far we read since."""
    fill(broker, 30)
    consumer = Consumer(broker, "g", ["events"], auto_commit=False)
    consumer.poll()  # read everything
    consumer.commit("events", 0, 2)  # ... but pin an earlier cut
    resumed = Consumer(broker, "g", ["events"])
    assert resumed.position("events", 0) == 2


def test_commit_partition_without_topic_rejected(broker):
    consumer = Consumer(broker, "g", ["events"], auto_commit=False)
    with pytest.raises(ValueError):
        consumer.commit(partition=0)
    with pytest.raises(ValueError):
        consumer.commit(offset=3)


def test_commit_without_partition_rejected(broker):
    consumer = Consumer(broker, "g", ["events"], auto_commit=False)
    with pytest.raises(ValueError):
        consumer.commit("events")


def test_commit_negative_offset_rejected(broker):
    consumer = Consumer(broker, "g", ["events"], auto_commit=False)
    with pytest.raises(InvalidOffsetError):
        consumer.commit("events", 0, -1)


def test_commit_unknown_position_rejected(broker):
    consumer = Consumer(broker, "g", ["events"], auto_commit=False)
    with pytest.raises(InvalidOffsetError):
        consumer.commit("events", 99)


def test_commit_then_rebalance_resumes_at_commit(broker):
    """Offsets committed per partition survive a group rebalance."""
    fill(broker, 30)
    first = Consumer(broker, "g", ["events"], auto_commit=False)
    first.poll()
    for partition in range(3):
        first.commit("events", partition, 3)
    # rebalance: two fresh members split the same partitions
    group = ConsumerGroup(broker, "g", "events", members=2)
    seen = []
    for member in group.members:
        seen.extend(m.offset for m in member.poll())
    # every partition resumed at offset 3 -> offsets 0..2 never re-read
    assert min(seen) == 3
    assert len(seen) == 30 - 3 * 3


def test_rebalance_mixed_commit_state(broker):
    """Partitions without a commit fall back to the reset policy."""
    fill(broker, 30)
    consumer = Consumer(broker, "g", ["events"], auto_commit=False)
    consumer.poll()
    consumer.commit("events", 0, 5)  # only partition 0 has a cut
    resumed = Consumer(broker, "g", ["events"])
    assert resumed.position("events", 0) == 5
    assert resumed.position("events", 1) == 0  # earliest
    assert resumed.position("events", 2) == 0
