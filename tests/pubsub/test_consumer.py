"""Consumers: offsets, groups, replay, rebalancing."""

import pytest

from repro.pubsub import Broker, Consumer, ConsumerGroup, InvalidOffsetError, Producer


@pytest.fixture()
def broker():
    b = Broker()
    b.create_topic("events", partitions=3)
    return b


def fill(broker, n=30, topic="events"):
    producer = Producer(broker)
    for i in range(n):
        producer.send(topic, {"i": i}, key=f"k{i % 5}")
    return producer


def test_earliest_reads_everything(broker):
    fill(broker)
    consumer = Consumer(broker, "g", ["events"])
    values = sorted(m.value["i"] for m in consumer.poll())
    assert values == list(range(30))


def test_latest_skips_history(broker):
    fill(broker)
    consumer = Consumer(broker, "g", ["events"], auto_offset_reset="latest")
    assert consumer.poll() == []
    fill(broker, 5)
    assert len(consumer.poll()) == 5


def test_group_resume_after_restart(broker):
    fill(broker, 10)
    consumer = Consumer(broker, "g", ["events"])
    assert len(consumer.poll()) == 10
    fill(broker, 7)
    # a new consumer with the same group id picks up where the group left off
    resumed = Consumer(broker, "g", ["events"])
    assert len(resumed.poll()) == 7


def test_distinct_groups_independent(broker):
    fill(broker, 10)
    a = Consumer(broker, "ga", ["events"])
    b = Consumer(broker, "gb", ["events"])
    assert len(a.poll()) == 10
    assert len(b.poll()) == 10


def test_manual_commit(broker):
    fill(broker, 10)
    consumer = Consumer(broker, "g", ["events"], auto_commit=False)
    assert len(consumer.poll()) == 10
    # nothing committed -> a sibling starts from scratch
    sibling = Consumer(broker, "g", ["events"])
    assert len(sibling.poll()) == 10
    sibling.commit()
    third = Consumer(broker, "g", ["events"])
    assert third.poll() == []


def test_seek_replays(broker):
    broker2 = Broker()
    broker2.create_topic("t", partitions=1)
    producer = Producer(broker2)
    for i in range(10):
        producer.send("t", i)
    consumer = Consumer(broker2, "g", ["t"])
    assert len(consumer.poll()) == 10
    consumer.seek("t", 0, 5)
    assert [m.value for m in consumer.poll()] == [5, 6, 7, 8, 9]


def test_seek_unassigned_partition_rejected(broker):
    consumer = Consumer(broker, "g", ["events"])
    with pytest.raises(InvalidOffsetError):
        consumer.seek("events", 99, 0)


def test_per_key_order_preserved(broker):
    producer = Producer(broker)
    for i in range(50):
        producer.send("events", i, key=f"key-{i % 7}")
    consumer = Consumer(broker, "g", ["events"])
    per_key: dict[str, list[int]] = {}
    for message in consumer.poll():
        per_key.setdefault(message.key, []).append(message.value)
    for values in per_key.values():
        assert values == sorted(values)


def test_consumer_group_covers_all_partitions(broker):
    fill(broker, 30)
    group = ConsumerGroup(broker, "g", "events", members=2)
    seen = []
    for member in group.members:
        seen.extend(m.value["i"] for m in member.poll())
    assert sorted(seen) == list(range(30))
    # partitions split disjointly
    assignments = [set(m.assignment) for m in group.members]
    assert assignments[0].isdisjoint(assignments[1])


def test_retention_fallback_to_earliest():
    broker = Broker()
    broker.create_topic("t", partitions=1, retention=5)
    producer = Producer(broker)
    consumer = Consumer(broker, "g", ["t"])
    for i in range(20):
        producer.send("t", i)
    # first poll: position 0 was trimmed; consumer falls forward to start
    values = [m.value for m in consumer.poll()]
    assert values == [15, 16, 17, 18, 19]


def test_iterator_drains(broker):
    fill(broker, 12)
    consumer = Consumer(broker, "g", ["events"])
    assert len(list(consumer)) == 12


def test_invalid_reset_policy(broker):
    with pytest.raises(ValueError):
        Consumer(broker, "g", ["events"], auto_offset_reset="whenever")
