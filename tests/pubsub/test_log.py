"""Partition log: offsets, retention, blocking reads."""

import threading
import time

import pytest

from repro.pubsub.errors import InvalidOffsetError
from repro.pubsub.log import PartitionLog


def test_offsets_monotonic():
    log = PartitionLog("t", 0)
    offsets = [log.append(None, i) for i in range(10)]
    assert offsets == list(range(10))
    assert log.start_offset == 0
    assert log.end_offset == 10


def test_read_from_offset():
    log = PartitionLog("t", 0)
    for i in range(10):
        log.append(None, i)
    records = log.read(4, max_records=3)
    assert [m.value for m in records] == [4, 5, 6]
    assert [m.offset for m in records] == [4, 5, 6]


def test_read_past_end_returns_empty():
    log = PartitionLog("t", 0)
    log.append(None, "x")
    assert log.read(1) == []
    assert log.read(5) == []


def test_read_before_retention_raises():
    log = PartitionLog("t", 0, retention=3)
    for i in range(10):
        log.append(None, i)
    assert log.start_offset == 7
    with pytest.raises(InvalidOffsetError):
        log.read(0)
    assert [m.value for m in log.read(7)] == [7, 8, 9]


def test_retention_preserves_offset_numbering():
    log = PartitionLog("t", 0, retention=2)
    for i in range(5):
        log.append(None, i)
    records = log.read(log.start_offset)
    assert [m.offset for m in records] == [3, 4]


def test_message_metadata():
    log = PartitionLog("topic-x", 3)
    log.append("key1", {"v": 1}, timestamp=123.0, headers={"h": 1})
    message = log.read(0)[0]
    assert message.topic == "topic-x"
    assert message.partition == 3
    assert message.key == "key1"
    assert message.timestamp == 123.0
    assert message.headers == {"h": 1}


def test_read_blocking_wakes_on_append():
    log = PartitionLog("t", 0)
    got = []

    def reader():
        got.extend(log.read_blocking(0, timeout=5.0))

    thread = threading.Thread(target=reader)
    thread.start()
    time.sleep(0.05)
    log.append(None, "wake")
    thread.join(timeout=5.0)
    assert [m.value for m in got] == ["wake"]


def test_read_blocking_times_out():
    log = PartitionLog("t", 0)
    started = time.monotonic()
    assert log.read_blocking(0, timeout=0.05) == []
    assert time.monotonic() - started < 1.0
