"""Topic partitioning semantics."""

import pytest

from repro.pubsub.topic import Topic


def test_same_key_same_partition():
    topic = Topic("t", partitions=4)
    partitions = {topic.partition_for("job-1/layer-5") for _ in range(20)}
    assert len(partitions) == 1


def test_keys_spread_over_partitions():
    topic = Topic("t", partitions=4)
    used = {topic.partition_for(f"key-{i}") for i in range(200)}
    assert used == {0, 1, 2, 3}


def test_keyless_round_robin():
    topic = Topic("t", partitions=3)
    assigned = [topic.partition_for(None) for _ in range(6)]
    assert assigned == [0, 1, 2, 0, 1, 2]


def test_append_returns_partition_offset():
    topic = Topic("t", partitions=2)
    partition, offset = topic.append("k", "v")
    assert offset == 0
    partition2, offset2 = topic.append("k", "v2")
    assert partition2 == partition
    assert offset2 == 1


def test_explicit_partition():
    topic = Topic("t", partitions=3)
    partition, _ = topic.append("k", "v", partition=2)
    assert partition == 2
    assert topic.log(2).end_offset == 1


def test_end_offsets():
    topic = Topic("t", partitions=2)
    topic.append(None, "a", partition=0)
    topic.append(None, "b", partition=0)
    topic.append(None, "c", partition=1)
    assert topic.end_offsets() == {0: 2, 1: 1}


def test_zero_partitions_rejected():
    with pytest.raises(ValueError):
        Topic("t", partitions=0)
