"""Offset edge cases: commits past the end, closed brokers, retention."""

import pytest

from repro.pubsub import (
    Broker,
    BrokerClosedError,
    Consumer,
    InvalidOffsetError,
    Producer,
)


def filled_broker(records=3, retention=None):
    broker = Broker()
    broker.create_topic("t", retention=retention)
    producer = Producer(broker)
    for i in range(records):
        producer.send("t", {"i": i})
    return broker


def test_commit_beyond_log_end_is_stored_and_polls_empty():
    broker = filled_broker(records=3)
    broker.commit("g", "t", 0, 10)  # Kafka allows committing ahead
    assert broker.committed("g", "t", 0) == 10
    consumer = Consumer(broker, "g", ["t"])
    assert consumer.position("t", 0) == 10
    assert consumer.poll() == []  # past-the-end read is empty, not an error


def test_committed_beyond_end_catches_up_when_records_arrive():
    broker = filled_broker(records=3)
    broker.commit("g", "t", 0, 5)
    consumer = Consumer(broker, "g", ["t"])
    producer = Producer(broker)
    for i in range(3, 7):  # offsets 3..6: the group resumes at 5
        producer.send("t", {"i": i})
    assert [m.value["i"] for m in consumer.poll()] == [5, 6]


def test_seek_unassigned_partition_raises():
    broker = filled_broker()
    consumer = Consumer(broker, "g", ["t"])
    with pytest.raises(InvalidOffsetError, match="not assigned"):
        consumer.seek("t", 7, 0)
    with pytest.raises(InvalidOffsetError, match="not assigned"):
        consumer.seek("other", 0, 0)


def test_committed_offsets_survive_broker_close():
    broker = filled_broker()
    consumer = Consumer(broker, "g", ["t"])
    consumer.poll()
    broker.close()
    # offset state stays readable after close; data-plane calls are refused
    assert broker.committed("g", "t", 0) == 3
    with pytest.raises(BrokerClosedError):
        Consumer(broker, "g2", ["t"])
    with pytest.raises(BrokerClosedError):
        broker.commit("g", "t", 0, 4)


def test_reopened_client_resumes_from_committed():
    broker = filled_broker(records=5)
    first = Consumer(broker, "g", ["t"], auto_commit=False)
    batch = first.poll(max_records=2)
    assert [m.value["i"] for m in batch] == [0, 1]
    first.commit()  # position 2
    del first  # client goes away; the group's offsets are broker state
    second = Consumer(broker, "g", ["t"])
    assert second.position("t", 0) == 2
    assert [m.value["i"] for m in second.poll()] == [2, 3, 4]


def test_retention_truncation_below_committed_resets_to_earliest():
    broker = Broker()
    broker.create_topic("t", retention=4)
    producer = Producer(broker)
    for i in range(3):
        producer.send("t", {"i": i})
    broker.commit("g", "t", 0, 1)
    for i in range(3, 10):  # retention=4 trims the head to offset 6
        producer.send("t", {"i": i})
    log = broker.topic("t").log(0)
    assert log.start_offset == 6
    with pytest.raises(InvalidOffsetError):
        log.read(1)
    consumer = Consumer(broker, "g", ["t"])
    assert consumer.position("t", 0) == 1  # resolved from the stale commit
    got = [m.value["i"] for m in consumer.poll()]
    assert got == [6, 7, 8, 9]  # reset to oldest retained, like Kafka
    assert consumer.position("t", 0) == 10


def test_seek_then_commit_explicit_offset_roundtrip():
    broker = filled_broker(records=5)
    consumer = Consumer(broker, "g", ["t"], auto_commit=False)
    consumer.seek("t", 0, 4)
    assert [m.value["i"] for m in consumer.poll()] == [4]
    consumer.commit("t", 0, 2)  # pin an offset unrelated to the position
    assert consumer.committed("t", 0) == 2
    replay = Consumer(broker, "g", ["t"])
    assert [m.value["i"] for m in replay.poll()] == [2, 3, 4]
