"""Query graph declaration and materialization."""

import pytest

from repro.spe import (
    CollectingSink,
    JoinOperator,
    ListSource,
    MapOperator,
    Query,
    QueryValidationError,
    StreamTuple,
)


def tuples(n=3):
    return [StreamTuple(tau=float(i), job="j", layer=i, payload={"x": i}) for i in range(n)]


def identity(name="m"):
    return MapOperator(name, lambda t: t)


def test_minimal_query_builds():
    q = Query()
    q.add_source("src", ListSource("src", tuples()))
    q.add_operator("m", identity(), "src")
    q.add_sink("out", CollectingSink(), "m")
    nodes = q.build()
    assert [n.name for n in nodes] == ["src", "m", "out"]
    assert len(nodes[0].outputs) == 1
    assert nodes[1].inputs[0] is nodes[0].outputs[0]


def test_duplicate_name_rejected():
    q = Query()
    q.add_source("x", ListSource("x", []))
    with pytest.raises(QueryValidationError):
        q.add_source("x", ListSource("x", []))


def test_unknown_upstream_rejected():
    q = Query()
    with pytest.raises(QueryValidationError):
        q.add_operator("m", identity(), "ghost")


def test_missing_sink_rejected():
    q = Query()
    q.add_source("src", ListSource("src", []))
    with pytest.raises(QueryValidationError, match="no sinks"):
        q.build()


def test_missing_source_rejected():
    q = Query()
    with pytest.raises(QueryValidationError):
        q.build()


def test_unconsumed_node_rejected():
    q = Query()
    q.add_source("src", ListSource("src", []))
    q.add_source("orphan", ListSource("orphan", []))
    q.add_sink("out", CollectingSink(), "src")
    with pytest.raises(QueryValidationError, match="no consumer"):
        q.build()


def test_join_arity_checked():
    q = Query()
    q.add_source("a", ListSource("a", []))
    q.add_operator("join", JoinOperator("join"), ["a"])
    q.add_sink("out", CollectingSink(), "join")
    with pytest.raises(QueryValidationError, match="expects 2 inputs"):
        q.build()


def test_parallel_operator_needs_factory():
    q = Query()
    q.add_source("src", ListSource("src", []))
    with pytest.raises(QueryValidationError, match="factory"):
        q.add_operator("m", identity(), "src", parallelism=2)


def test_parallel_build_creates_router_and_replicas():
    q = Query()
    q.add_source("src", ListSource("src", tuples()))
    q.add_operator("m", lambda: identity(), "src", parallelism=3)
    q.add_sink("out", CollectingSink(), "m")
    nodes = q.build()
    names = [n.name for n in nodes]
    assert "m::router" in names
    assert {"m::0", "m::1", "m::2"} <= set(names)
    assert "m::merge" in names
    merge = next(n for n in nodes if n.name == "m::merge")
    # every replica feeds the merge through its own single-producer stream,
    # so barrier alignment downstream of the replicas stays exact
    assert len(merge.inputs) == 3
    assert all(s._num_producers == 1 for s in merge.inputs)
    sink_node = nodes[-1]
    assert sink_node.inputs[0]._num_producers == 1
    for replica in nodes:
        if replica.name.startswith("m::") and replica.name[3:].isdigit():
            assert replica.base_name == "m"


def test_parallel_multi_input_rejected():
    q = Query()
    q.add_source("a", ListSource("a", []))
    q.add_operator("j", lambda: JoinOperator("j"), ["a"], parallelism=2)
    q.add_sink("out", CollectingSink(), "j")
    with pytest.raises(QueryValidationError):
        q.build()


def test_fanout_broadcasts_to_all_consumers():
    q = Query()
    q.add_source("src", ListSource("src", tuples()))
    q.add_operator("m1", identity("m1"), "src")
    q.add_operator("m2", identity("m2"), "src")
    q.add_sink("o1", CollectingSink("o1"), "m1")
    q.add_sink("o2", CollectingSink("o2"), "m2")
    nodes = q.build()
    src = nodes[0]
    assert len(src.outputs) == 2
