"""StreamTuple metadata/payload semantics."""

import numpy as np
import pytest

from repro.spe import WHOLE_SPECIMEN, StreamTuple


def make(tau=1.0, job="j", layer=1, payload=None, **kwargs):
    return StreamTuple(tau=tau, job=job, layer=layer, payload=payload or {}, **kwargs)


def test_basic_fields():
    t = make(payload={"x": 1})
    assert t.tau == 1.0
    assert t.job == "j"
    assert t.layer == 1
    assert t.specimen is None
    assert t.portion is None
    assert t.payload == {"x": 1}


def test_derive_inherits_and_overrides():
    t = make(payload={"a": 1}, ingest_time=100.0)
    d = t.derive(payload={"b": 2}, specimen="S1")
    assert d.job == "j"
    assert d.layer == 1
    assert d.specimen == "S1"
    assert d.payload == {"b": 2}
    assert d.ingest_time == 100.0  # lineage preserved for latency


def test_derive_without_payload_shares_content():
    t = make(payload={"a": 1})
    d = t.derive(specimen="S")
    assert d.payload == {"a": 1}


def test_fused_concatenates_payloads():
    left = make(payload={"a": 1}, ingest_time=10.0)
    right = make(payload={"b": 2}, ingest_time=20.0)
    fused = StreamTuple.fused(left, right)
    assert fused.payload == {"a": 1, "b": 2}
    assert fused.ingest_time == 20.0  # latest input: paper's latency basis


def test_fused_rejects_duplicate_keys():
    left = make(payload={"x": 1})
    right = make(payload={"x": 2})
    with pytest.raises(ValueError, match="unique payload keys"):
        StreamTuple.fused(left, right)


def test_fused_inherits_specimen_from_either_side():
    left = make(specimen="S1")
    right = make(payload={"b": 1})
    assert StreamTuple.fused(left, right).specimen == "S1"
    assert StreamTuple.fused(right.derive(payload={}), left.derive(payload={"c": 1})).specimen == "S1"


def test_latency_from():
    t = make(ingest_time=50.0)
    assert t.latency_from(now=53.5) == pytest.approx(3.5)


def test_equality_with_numpy_payload():
    image = np.arange(9).reshape(3, 3)
    a = make(payload={"image": image})
    b = make(payload={"image": image.copy()})
    c = make(payload={"image": image + 1})
    assert a == b
    assert a != c


def test_equality_ignores_ingest_time():
    a = make(ingest_time=1.0)
    b = make(ingest_time=999.0)
    assert a == b


def test_whole_specimen_constants():
    t = make(specimen=WHOLE_SPECIMEN)
    assert t.specimen == WHOLE_SPECIMEN
