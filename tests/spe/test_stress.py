"""Stress and failure injection for the threaded engine.

These tests target the failure modes thread-per-operator engines actually
exhibit: back-pressure deadlocks under tiny queue capacities, fan-out
expansion bursts, mid-stream operator crashes, and join memory growth.
"""

import threading
import time

import pytest

from repro.spe import (
    AggregateOperator,
    CollectingSink,
    FilterOperator,
    IterableSource,
    JoinOperator,
    ListSource,
    MapOperator,
    NullSink,
    OperatorError,
    Query,
    StreamEngine,
    StreamTuple,
)


def tuples(n, job="j"):
    return [StreamTuple(tau=float(i), job=job, layer=i, payload={"x": i}) for i in range(n)]


def test_tiny_capacity_does_not_deadlock():
    """Capacity 2 queues + 1->50 expansion: back-pressure must not wedge."""
    q = Query("tiny", default_capacity=2)
    q.add_source("src", ListSource("src", tuples(40)))
    q.add_operator(
        "expand",
        MapOperator("expand", lambda t: [t.derive(payload={"i": i}) for i in range(50)]),
        "src",
    )
    sink = CollectingSink()
    q.add_sink("out", sink, "expand")
    report = StreamEngine(mode="threaded", capacity=2).run(q)
    assert len(sink.results) == 40 * 50
    assert report.operator_stats["expand"].tuples_out == 2000


def test_deep_chain_under_pressure():
    q = Query("deep", default_capacity=4)
    q.add_source("src", ListSource("src", tuples(200)))
    upstream = "src"
    for depth in range(12):
        name = f"hop{depth}"
        q.add_operator(
            name,
            MapOperator(name, lambda t: t.derive(payload={"x": t.payload["x"] + 1})),
            upstream,
        )
        upstream = name
    sink = CollectingSink()
    q.add_sink("out", sink, upstream)
    StreamEngine(mode="threaded", capacity=4).run(q)
    assert sorted(t.payload["x"] for t in sink.results) == [x + 12 for x in range(200)]


def test_crash_in_middle_operator_stops_whole_query():
    def bomb(t):
        if t.payload["x"] == 137:
            raise ValueError("injected fault")
        return t

    q = Query("crash")
    q.add_source("src", ListSource("src", tuples(1000)))
    q.add_operator("pre", MapOperator("pre", lambda t: t), "src")
    q.add_operator("bomb", MapOperator("bomb", bomb), "pre")
    q.add_operator("post", MapOperator("post", lambda t: t), "bomb")
    q.add_sink("out", NullSink(), "post")
    engine = StreamEngine(mode="threaded")
    started = time.monotonic()
    with pytest.raises(OperatorError, match="bomb"):
        engine.run(q)
    assert time.monotonic() - started < 30  # fails fast, no hang


def test_crash_in_sink_callback_propagates():
    from repro.spe import CallbackSink

    def bad_consumer(t):
        raise RuntimeError("sink exploded")

    q = Query("sinkcrash")
    q.add_source("src", ListSource("src", tuples(5)))
    q.add_sink("out", CallbackSink("out", bad_consumer), "src")
    with pytest.raises(RuntimeError):
        StreamEngine(mode="threaded").run(q)


def test_join_buffers_bounded_by_watermark():
    """A long in-order run must not accumulate unbounded join state."""
    n = 3000
    join = JoinOperator(
        "join", ws=2.0, group_by=lambda t: t.job,
        combiner=lambda l, r: l.derive(payload={"x": l.payload["x"] + r.payload["y"]}),
    )
    q = Query("joinmem", default_capacity=256)
    q.add_source("L", ListSource("L", tuples(n)))
    q.add_source(
        "R",
        ListSource(
            "R",
            [StreamTuple(tau=float(i), job="j", layer=i, payload={"y": i}) for i in range(n)],
        ),
    )
    q.add_operator("join", join, ["L", "R"])
    q.add_sink("out", NullSink(), "join")
    StreamEngine(mode="threaded").run(q)
    # watermark eviction: only the trailing window may remain
    assert join.buffered < 200


def test_many_group_by_keys_in_aggregate():
    n = 2000
    data = [
        StreamTuple(tau=float(i), job=f"job-{i % 100}", layer=i, payload={"x": 1})
        for i in range(n)
    ]
    q = Query("groups")
    q.add_source("src", ListSource("src", data))
    q.add_operator(
        "agg",
        AggregateOperator(
            "agg", ws=100.0, wa=100.0,
            fn=lambda k, s, e, ts: {"n": len(ts)},
            group_by=lambda t: t.job,
        ),
        "src",
    )
    sink = CollectingSink()
    q.add_sink("out", sink, "agg")
    StreamEngine(mode="threaded").run(q)
    assert sum(t.payload["n"] for t in sink.results) == n


def test_slow_consumer_throttles_fast_source():
    """End-to-end back-pressure: a slow sink must pace the source."""
    consumed = []

    def slow(t):
        time.sleep(0.002)
        consumed.append(t)

    from repro.spe import CallbackSink

    q = Query("slow", default_capacity=8)
    q.add_source("src", ListSource("src", tuples(100)))
    q.add_sink("out", CallbackSink("out", slow), "src")
    StreamEngine(mode="threaded", capacity=8).run(q)
    assert len(consumed) == 100


def test_concurrent_engines_do_not_interfere():
    results = {}

    def run_one(name):
        q = Query(name)
        q.add_source("src", ListSource("src", tuples(300, job=name)))
        q.add_operator(
            "m", MapOperator("m", lambda t: t.derive(payload={"x": t.payload["x"] * 2})),
            "src",
        )
        sink = CollectingSink()
        q.add_sink("out", sink, "m")
        StreamEngine(mode="threaded").run(q)
        results[name] = sorted(t.payload["x"] for t in sink.results)

    threads = [threading.Thread(target=run_one, args=(f"q{i}",)) for i in range(4)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=60)
    expected = [x * 2 for x in range(300)]
    assert all(results[f"q{i}"] == expected for i in range(4))


def test_stop_releases_blocked_source():
    """stop() must unblock a source stuck on a full queue."""

    def infinite():
        i = 0
        while True:
            yield StreamTuple(tau=float(i), job="j", layer=i, payload={})
            i += 1

    q = Query("blocked", default_capacity=2)
    q.add_source("src", IterableSource("src", infinite()))
    q.add_operator(
        "slow", MapOperator("slow", lambda t: (time.sleep(0.01), t)[1]), "src"
    )
    q.add_sink("out", NullSink(), "slow")
    engine = StreamEngine(mode="threaded", capacity=2)
    engine.start(q)
    time.sleep(0.2)
    started = time.monotonic()
    engine.stop(timeout=10)
    assert time.monotonic() - started < 10


def test_filter_heavy_selectivity():
    q = Query("selective")
    q.add_source("src", ListSource("src", tuples(5000)))
    fil = FilterOperator("f", lambda t: t.payload["x"] % 1000 == 0)
    q.add_operator("f", fil, "src")
    sink = CollectingSink()
    q.add_sink("out", sink, "f")
    StreamEngine(mode="threaded").run(q)
    assert len(sink.results) == 5
    assert fil.dropped == 4995
