"""RunReport accessors and formatting."""

import pytest

from repro.spe import (
    CollectingSink,
    ListSource,
    MapOperator,
    Query,
    StreamEngine,
    StreamTuple,
)


@pytest.fixture()
def report_and_sink():
    q = Query("fmt")
    data = [StreamTuple(tau=float(i), job="j", layer=i, payload={"x": i}) for i in range(10)]
    q.add_source("src", ListSource("src", data))
    q.add_operator("m", MapOperator("m", lambda t: t), "src")
    sink = CollectingSink()
    q.add_sink("out", sink, "m")
    return StreamEngine(mode="sync").run(q), sink


def test_results_delivered(report_and_sink):
    report, sink = report_and_sink
    assert report.results_delivered() == 10


def test_latency_requires_unique_sink_or_name(report_and_sink):
    report, _ = report_and_sink
    assert report.latency_summary().count == 10
    assert report.latency_summary("out").count == 10
    with pytest.raises(KeyError):
        report.latency_summary("nope")


def test_format_contains_all_nodes(report_and_sink):
    report, _ = report_and_sink
    text = report.format()
    for fragment in ("query 'fmt'", "src", "m", "out", "10 results", "median"):
        assert fragment in text, fragment
    # stats columns present and parse as a table
    assert "busy_s" in text


def test_format_with_zero_results():
    q = Query("empty")
    q.add_source("src", ListSource("src", []))
    sink = CollectingSink()
    q.add_sink("out", sink, "src")
    report = StreamEngine(mode="sync").run(q)
    assert "0 results" in report.format()


def test_two_sinks_require_name():
    q = Query("two")
    data = [StreamTuple(tau=0.0, job="j", layer=0, payload={})]
    q.add_source("src", ListSource("src", data))
    q.add_sink("a", CollectingSink("a"), "src")
    q.add_sink("b", CollectingSink("b"), "src")
    report = StreamEngine(mode="sync").run(q)
    with pytest.raises(ValueError, match="specify a sink name"):
        report.latency_summary()
    assert report.latency_summary("a").count == 1
