"""Aggregate operator: window algebra and emission rules."""

import pytest

from repro.spe import AggregateOperator, StreamTuple, window_indices


def make(tau, x=1, job="j"):
    return StreamTuple(tau=tau, job=job, layer=int(tau), payload={"x": x})


def sum_agg(key, start, end, tuples):
    return {"sum": sum(t.payload["x"] for t in tuples), "start": start, "end": end}


class TestWindowIndices:
    def test_tumbling(self):
        assert window_indices(0.0, ws=5, wa=5) == [0]
        assert window_indices(4.99, ws=5, wa=5) == [0]
        assert window_indices(5.0, ws=5, wa=5) == [1]

    def test_sliding_membership(self):
        # WS=10, WA=5: tau=7 belongs to windows [0,10) and [5,15)
        assert window_indices(7.0, ws=10, wa=5) == [0, 1]

    def test_boundary_exclusive(self):
        # tau=10 is not in [0,10)
        assert 0 not in window_indices(10.0, ws=10, wa=5)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            window_indices(-1.0, ws=5, wa=5)

    def test_coverage_every_tau_in_some_window(self):
        for tau in [0.0, 0.1, 3.7, 9.999, 42.0]:
            assert window_indices(tau, ws=4, wa=2), tau


def test_tumbling_window_emission_on_watermark():
    op = AggregateOperator("a", ws=5.0, wa=5.0, fn=sum_agg)
    assert op.process(0, make(0.0)) == []
    assert op.process(0, make(2.0)) == []
    out = op.process(0, make(5.0))  # watermark 5.0 closes window [0,5)
    assert len(out) == 1
    assert out[0].payload["sum"] == 2
    assert out[0].tau == 5.0  # output stamped with the window end


def test_flush_on_close():
    op = AggregateOperator("a", ws=5.0, wa=5.0, fn=sum_agg)
    op.process(0, make(1.0, x=10))
    out = op.on_close()
    assert len(out) == 1
    assert out[0].payload["sum"] == 10
    assert op.open_windows == 0


def test_sliding_windows_overlap():
    op = AggregateOperator("a", ws=10.0, wa=5.0, fn=sum_agg)
    for tau in (0.0, 3.0, 7.0):
        op.process(0, make(tau, x=1))
    emitted = op.on_close()
    sums = {(t.payload["start"], t.payload["end"]): t.payload["sum"] for t in emitted}
    assert sums[(0.0, 10.0)] == 3
    assert sums[(5.0, 15.0)] == 1


def test_group_by_separates_keys():
    op = AggregateOperator(
        "a", ws=10.0, wa=10.0, fn=sum_agg, group_by=lambda t: t.job
    )
    op.process(0, make(0.0, x=1, job="A"))
    op.process(0, make(1.0, x=2, job="B"))
    op.process(0, make(2.0, x=3, job="A"))
    emitted = op.on_close()
    sums = sorted(t.payload["sum"] for t in emitted)
    assert sums == [2, 4]


def test_slack_delays_emission():
    op = AggregateOperator("a", ws=5.0, wa=5.0, fn=sum_agg, slack=2.0)
    op.process(0, make(0.0))
    assert op.process(0, make(5.0)) == []  # watermark 5-2=3 < window end
    out = op.process(0, make(8.0))  # watermark 6 >= 5
    assert len(out) == 1


def test_out_of_order_within_slack_is_counted():
    op = AggregateOperator("a", ws=10.0, wa=10.0, fn=sum_agg, slack=5.0)
    op.process(0, make(8.0, x=1))
    op.process(0, make(3.0, x=1))  # late but within slack
    out = op.on_close()
    assert out[0].payload["sum"] == 2


def test_ingest_time_is_latest_contributor():
    op = AggregateOperator("a", ws=10.0, wa=10.0, fn=sum_agg)
    early = make(0.0)
    early.ingest_time = 1.0
    late = make(1.0)
    late.ingest_time = 99.0
    op.process(0, early)
    op.process(0, late)
    out = op.on_close()
    assert out[0].ingest_time == 99.0


def test_invalid_parameters():
    with pytest.raises(ValueError):
        AggregateOperator("a", ws=0, wa=1, fn=sum_agg)
    with pytest.raises(ValueError):
        AggregateOperator("a", ws=5, wa=6, fn=sum_agg)
