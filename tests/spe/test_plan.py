"""Plan compiler units: PlanConfig, FusedOperator, fusion/replication passes,
batched stream transport, and the reservoir latency recorder."""

import pytest

from repro.spe import (
    END_OF_STREAM,
    CheckpointBarrier,
    CollectingSink,
    FilterOperator,
    FusedOperator,
    JoinOperator,
    LatencyRecorder,
    ListSource,
    MapOperator,
    MetricsError,
    Operator,
    PlanConfig,
    Query,
    Stream,
    StreamEngine,
    StreamTuple,
    TupleBatch,
    VectorizedFusedOperator,
    compile_plan,
    fuse_linear_chains,
    render_plan,
    replicate_keyed_stages,
)
from repro.spe.plan import _FusedPart
from repro.spe.stream import item_weight


def tuples(n=3):
    return [
        StreamTuple(tau=float(i), job="j", layer=i, payload={"x": i}) for i in range(n)
    ]


def bump(name="m", k=1):
    return MapOperator(name, lambda t: t.derive(payload={"x": t.payload["x"] + k}))


class HoldLast(Operator):
    """Keeps the newest tuple, releasing the previous one — state that only
    drains on close, which makes EOS flush *ordering* observable."""

    num_inputs = 1

    def __init__(self, name):
        super().__init__(name)
        self.held = None

    def process(self, input_index, t):
        previous, self.held = self.held, t
        return [previous] if previous is not None else []

    def on_close(self):
        return [self.held] if self.held is not None else []

    def snapshot_state(self):
        return {"held": None if self.held is None else self.held.payload["x"]}

    def restore_state(self, state):
        x = state["held"]
        self.held = (
            None
            if x is None
            else StreamTuple(tau=float(x), job="j", layer=x, payload={"x": x})
        )


# -- PlanConfig --------------------------------------------------------------


def test_resolve_off_forms_return_none():
    assert PlanConfig.resolve(None) is None
    assert PlanConfig.resolve(False) is None


def test_resolve_true_gives_defaults():
    plan = PlanConfig.resolve(True)
    assert plan == PlanConfig()
    assert plan.fusion and plan.edge_batch_size > 1 and plan.parallelism == 1


def test_resolve_passes_instances_through():
    plan = PlanConfig(fusion=False, edge_batch_size=4)
    assert PlanConfig.resolve(plan) is plan


def test_resolve_rejects_other_types():
    with pytest.raises(TypeError):
        PlanConfig.resolve("fast")


@pytest.mark.parametrize(
    "kwargs",
    [{"edge_batch_size": 0}, {"parallelism": 0}, {"linger_s": -0.1}],
)
def test_config_validation(kwargs):
    with pytest.raises(ValueError):
        PlanConfig(**kwargs)


# -- FusedOperator -----------------------------------------------------------


def fused_of(*ops):
    return FusedOperator(
        "fused[" + "+".join(op.name for op in ops) + "]",
        [_FusedPart(op.name, op.name, op) for op in ops],
    )


def test_fused_process_is_function_composition():
    op = fused_of(bump("a", 1), bump("b", 10))
    [out] = op.process(0, tuples(1)[0])
    assert out.payload["x"] == 11


def test_fused_filter_short_circuits_cascade():
    op = fused_of(FilterOperator("f", lambda t: t.payload["x"] % 2 == 0), bump("b"))
    assert op.process(0, tuples(2)[1]) == []
    [out] = op.process(0, tuples(1)[0])
    assert out.payload["x"] == 1


def test_fused_close_preserves_unfused_flush_order():
    """EOS drains stage by stage: what stage i releases on close still flows
    through stages i+1..n before stage i+1 itself closes."""
    op = fused_of(HoldLast("a"), HoldLast("b"))
    ts = tuples(3)
    seen = [out for t in ts for out in op.process(0, t)]
    seen.extend(op.on_input_closed(0))
    seen.extend(op.on_close())
    assert [t.payload["x"] for t in seen] == [0, 1, 2]


def test_fused_snapshot_keyed_by_original_names():
    a, b = HoldLast("a"), HoldLast("b")
    op = fused_of(a, b)
    for t in tuples(2):
        op.process(0, t)
    state = op.snapshot_parts()
    assert set(state) == {"a", "b"}
    assert state["a"] == {"held": 1}
    assert state["b"] == {"held": 0}


def test_fused_restore_part_matches_name_and_base_name():
    a, b = HoldLast("m::0"), HoldLast("other")
    op = FusedOperator(
        "fused", [_FusedPart("m::0", "m", a), _FusedPart("other", "other", b)]
    )
    assert op.restore_part("m", {"held": 7})  # by base_name (replica restore)
    assert a.held.payload["x"] == 7
    assert op.restore_part("other", {"held": 3})  # by exact name
    assert b.held.payload["x"] == 3
    assert not op.restore_part("ghost", {"held": 1})


def test_fused_restore_state_rejects_unknown_constituent():
    op = fused_of(HoldLast("a"), HoldLast("b"))
    with pytest.raises(KeyError):
        op.restore_state({"ghost": {"held": 1}})


def test_fused_needs_two_single_input_parts():
    with pytest.raises(ValueError):
        fused_of(bump("only"))
    with pytest.raises(ValueError):
        fused_of(bump("a"), JoinOperator("j"))


# -- fusion pass -------------------------------------------------------------


def build_chain(n_ops=3):
    q = Query()
    q.add_source("src", ListSource("src", tuples()))
    upstream = "src"
    for i in range(n_ops):
        q.add_operator(f"m{i}", bump(f"m{i}"), upstream)
        upstream = f"m{i}"
    q.add_sink("out", CollectingSink(), upstream)
    return q


def test_fuse_collapses_linear_chain():
    nodes = build_chain(3).build()
    fused = fuse_linear_chains(nodes)
    assert [n.name for n in fused] == ["src", "fused[m0+m1+m2]", "out"]
    middle = fused[1]
    assert middle.inputs[0] is nodes[0].outputs[0]
    assert middle.outputs[0] is fused[2].inputs[0]
    assert middle.checkpoint_names() == ["m0", "m1", "m2"]


def test_fused_node_restores_constituent_state():
    nodes = fuse_linear_chains(build_chain(2).build())
    holder = HoldLast("probe")
    node = nodes[1]
    node.operator._parts[0].operator = holder  # swap in a stateful part
    assert node.restore_state_for("ghost", {"held": 5}) is False
    assert node.restore_state_for("m0", {"held": 5})
    assert holder.held.payload["x"] == 5


def test_fanout_breaks_chains():
    q = Query()
    q.add_source("src", ListSource("src", tuples()))
    q.add_operator("a", bump("a"), "src")
    q.add_operator("b1", bump("b1"), "a")
    q.add_operator("b2", bump("b2"), "a")
    q.add_sink("o1", CollectingSink("o1"), "b1")
    q.add_sink("o2", CollectingSink("o2"), "b2")
    fused = fuse_linear_chains(q.build())
    # "a" broadcasts to two streams, so nothing upstream of the fork fuses
    assert {n.name for n in fused} == {"src", "a", "b1", "b2", "o1", "o2"}


def test_multi_input_operator_can_terminate_but_not_join_a_chain():
    q = Query()
    q.add_source("s1", ListSource("s1", tuples()))
    q.add_source("s2", ListSource("s2", tuples()))
    q.add_operator("join", JoinOperator("join"), ["s1", "s2"])
    q.add_operator("m1", bump("m1"), "join")
    q.add_operator("m2", bump("m2"), "m1")
    q.add_sink("out", CollectingSink(), "m2")
    names = [n.name for n in fuse_linear_chains(q.build())]
    assert names == ["s1", "s2", "join", "fused[m1+m2]", "out"]


def test_compile_plan_none_is_identity():
    nodes = build_chain().build()
    assert compile_plan(nodes, None) is nodes


def test_compile_plan_can_disable_fusion():
    nodes = build_chain().build()
    compiled = compile_plan(nodes, PlanConfig(fusion=False))
    assert [n.name for n in compiled] == [n.name for n in nodes]


# -- replication pass --------------------------------------------------------


def by_layer(t):
    return t.layer


def keyed_query(n=12, stages=2):
    q = Query()
    q.add_source("src", ListSource("src", tuples(n)))
    upstream = "src"
    for i in range(stages):
        q.add_operator(
            f"k{i}",
            lambda i=i: bump(f"k{i}", 10**i),
            upstream,
            key_fn=by_layer,
            replicable=True,
        )
        upstream = f"k{i}"
    q.add_sink("out", CollectingSink(), upstream)
    return q


def test_replication_builds_router_clones_and_merge():
    nodes = replicate_keyed_stages(keyed_query().build(), 3)
    names = [n.name for n in nodes]
    assert "k0::router" in names
    assert "k1::merge" in names
    assert {"k0::0", "k0::1", "k0::2", "k1::0", "k1::1", "k1::2"} <= set(names)
    # the adjacent keyed run replicated as ONE group: a single router/merge
    assert "k1::router" not in names and "k0::merge" not in names
    merge = next(n for n in nodes if n.name == "k1::merge")
    assert len(merge.inputs) == 3
    assert all(s.num_producers == 1 for s in merge.inputs)
    router = next(n for n in nodes if n.name == "k0::router")
    assert router.router.num_shards == 3
    for node in nodes:
        if node.name.startswith("k0::") and node.name[4:].isdigit():
            assert node.base_name == "k0"


def test_replication_requires_shared_key_fn():
    q = Query()
    q.add_source("src", ListSource("src", tuples(6)))
    q.add_operator("a", lambda: bump("a"), "src", key_fn=by_layer, replicable=True)
    q.add_operator(
        "b", lambda: bump("b", 10), "a", key_fn=lambda t: t.job, replicable=True
    )
    q.add_sink("out", CollectingSink(), "b")
    names = [n.name for n in replicate_keyed_stages(q.build(), 2)]
    # different key functions -> two independent groups, each with its own cut
    assert "a::router" in names and "a::merge" in names
    assert "b::router" in names and "b::merge" in names


def test_replication_parallelism_one_is_identity():
    nodes = keyed_query().build()
    assert replicate_keyed_stages(nodes, 1) is nodes


def test_replicated_plan_output_matches_baseline():
    baseline = StreamEngine(mode="sync").run(keyed_query())
    sink = baseline.sinks["out"]
    expected = sorted(t.payload["x"] for t in sink.results)
    optimized = StreamEngine(mode="sync").run(
        keyed_query(), plan=PlanConfig(parallelism=3)
    )
    got = sorted(t.payload["x"] for t in optimized.sinks["out"].results)
    assert got == expected


# -- render_plan / explain ---------------------------------------------------


def test_render_plan_shows_fusion_and_replication():
    config = PlanConfig(parallelism=2)
    nodes = compile_plan(keyed_query().build(), config)
    text = render_plan(nodes, title="q", config=config)
    assert "fused(" in text
    assert "x2 by key-hash" in text
    assert "parallelism=2" in text


def test_render_plan_reports_optimizer_off():
    assert "optimizer: off" in render_plan(build_chain().build())


def test_engine_explain_does_not_execute():
    q = build_chain()
    text = StreamEngine(mode="threaded").explain(q, plan=True)
    assert "fused[m0+m1+m2]" in text
    # the query is still deployable afterwards: explain only built a copy
    report = StreamEngine(mode="sync").run(q)
    assert len(report.sinks["out"].results) == 3


# -- vectorized fusion -------------------------------------------------------


class BlockBump(Operator):
    """Map with a columnar twin: +k on the ``x`` column, array-at-a-time."""

    num_inputs = 1
    supports_block = True

    def __init__(self, name, k=1):
        super().__init__(name)
        self.k = k

    def process(self, input_index, t):
        return [t.derive(payload={"x": t.payload["x"] + self.k})]

    def process_block(self, block):
        return block.with_columns(x=block.columns["x"] + self.k)


def build_block_chain(scalar_tail=True):
    q = Query()
    q.add_source("src", ListSource("src", tuples(7)))
    q.add_operator("b0", BlockBump("b0", 1), "src")
    q.add_operator("b1", BlockBump("b1", 10), "b0")
    tail = "b1"
    if scalar_tail:
        q.add_operator("m2", bump("m2", 100), "b1")
        tail = "m2"
    q.add_sink("out", CollectingSink(), tail)
    return q


def test_vectorize_selects_vectorized_operator_and_records_fallback():
    fused = fuse_linear_chains(build_block_chain().build(), vectorize=True)
    node = fused[1]
    assert isinstance(node.operator, VectorizedFusedOperator)
    assert node.operator.execution_mode == "vectorized"
    # the scalar-only member is named as the reason the chain is mixed
    assert node.mode_reason == "scalar members: m2"
    assert node.operator.member_modes() == {
        "b0": "block",
        "b1": "block",
        "m2": "scalar",
    }


def test_fully_block_capable_chain_has_no_fallback_reason():
    fused = fuse_linear_chains(
        build_block_chain(scalar_tail=False).build(), vectorize=True
    )
    node = fused[1]
    assert isinstance(node.operator, VectorizedFusedOperator)
    assert node.mode_reason is None


def test_vectorize_off_emits_scalar_fusion_with_reason():
    fused = fuse_linear_chains(build_block_chain().build(), vectorize=False)
    node = fused[1]
    assert type(node.operator) is FusedOperator
    assert node.operator.execution_mode == "scalar"
    assert node.mode_reason == "vectorize=off"


def test_all_scalar_chain_falls_back_with_reason():
    fused = fuse_linear_chains(build_chain(3).build(), vectorize=True)
    node = fused[1]
    assert type(node.operator) is FusedOperator
    assert node.mode_reason == "no member provides a block variant"


def test_render_plan_names_every_chain_mode():
    config = PlanConfig(vectorize=True)
    nodes = compile_plan(build_block_chain().build(), config)
    text = render_plan(nodes, title="q", config=config)
    assert "mode=vectorized (scalar members: m2)" in text
    assert "1 fused chain, 1 vectorized" in text
    assert "vectorize=on" in text  # config.describe() line

    off = PlanConfig(vectorize=False)
    text_off = render_plan(compile_plan(build_block_chain().build(), off), config=off)
    assert "mode=scalar (vectorize=off)" in text_off
    assert "vectorized" not in text_off.replace("vectorize=off", "")


def test_describe_reports_vectorize_knob():
    assert "vectorize=on" in PlanConfig().describe()
    assert "vectorize=off" in PlanConfig(vectorize=False).describe()


def test_vectorized_chain_matches_scalar_chain_output():
    baseline = StreamEngine(mode="sync").run(build_block_chain())
    expected = [t.payload["x"] for t in baseline.sinks["out"].results]
    optimized = StreamEngine(mode="threaded").run(
        build_block_chain(), plan=PlanConfig(edge_batch_size=4, vectorize=True)
    )
    assert [t.payload["x"] for t in optimized.sinks["out"].results] == expected


def test_vectorized_operator_counts_blocks_and_rows():
    fused = fuse_linear_chains(
        build_block_chain(scalar_tail=False).build(), vectorize=True
    )
    op = fused[1].operator
    out = op.process_many(tuples(5))
    assert [t.payload["x"] for t in out] == [x + 11 for x in range(5)]
    assert op.blocks_in == 1
    assert op.block_rows_in == 5


# -- batched transport -------------------------------------------------------


def test_item_weight_counts_batch_tuples():
    ts = tuples(3)
    assert item_weight(ts[0]) == 1
    assert item_weight(TupleBatch(ts)) == 3


def test_stream_accounts_batches_by_tuple_count():
    s = Stream("s", capacity=10)
    s.set_num_producers(1)
    s.put(TupleBatch(tuples(3)))
    assert len(s) == 3
    got = s.get()
    assert isinstance(got, TupleBatch) and len(got) == 3
    assert len(s) == 0


def test_full_stream_rejects_batch_put_with_timeout():
    s = Stream("s", capacity=2)
    s.set_num_producers(1)
    # batches are admitted whenever ANY capacity remains (bounded overshoot
    # beats deadlock), so one oversized batch goes through...
    assert s.put(TupleBatch(tuples(3)), timeout=0.05)
    # ...but the stream is now over capacity and refuses more until drained
    assert not s.put(tuples(1)[0], timeout=0.05)
    s.get()
    assert s.put(tuples(1)[0], timeout=0.05)


def test_drain_stops_at_barriers_and_eos():
    s = Stream("s", capacity=100)
    s.set_num_producers(1)
    ts = tuples(4)
    s.put(ts[0])
    s.put(ts[1])
    s.put(CheckpointBarrier(epoch=0))
    s.put(ts[2])
    assert s.drain() == [ts[0], ts[1]]  # bulk drain must not cross the barrier
    assert isinstance(s.get(), CheckpointBarrier)
    s.put(END_OF_STREAM)
    assert s.drain() == [ts[2]]
    assert s.get() is END_OF_STREAM


def test_threaded_batched_run_preserves_order_and_results():
    report = StreamEngine(mode="threaded").run(
        build_chain(3), plan=PlanConfig(fusion=False, edge_batch_size=2)
    )
    xs = [t.payload["x"] for t in report.sinks["out"].results]
    assert xs == [3, 4, 5]


# -- reservoir latency sampling ----------------------------------------------


def test_unbounded_recorder_keeps_everything():
    rec = LatencyRecorder()
    for i in range(50):
        rec.record(float(i))
    assert len(rec) == 50 and len(rec.samples()) == 50
    assert rec.snapshot() == rec.samples()  # legacy list form


def test_bounded_recorder_caps_memory_but_counts_all():
    rec = LatencyRecorder(capacity=16)
    for i in range(1000):
        rec.record(float(i))
    assert len(rec) == 1000
    kept = rec.samples()
    assert len(kept) == 16
    assert all(0.0 <= v < 1000.0 for v in kept)
    summary = rec.summary()
    assert summary.count == 1000  # reports observations, not reservoir size
    snap = rec.snapshot()
    assert snap["count"] == 1000 and len(snap["samples"]) == 16


def test_recorder_restore_accepts_both_snapshot_forms():
    rec = LatencyRecorder(capacity=4)
    rec.restore([1.0, 2.0, 3.0])
    assert len(rec) == 3 and sorted(rec.samples()) == [1.0, 2.0, 3.0]
    rec.restore({"count": 90, "samples": [1.0] * 8})
    assert len(rec) == 90
    assert len(rec.samples()) == 4  # truncated to this recorder's capacity


def test_recorder_capacity_must_be_positive():
    with pytest.raises(MetricsError):
        LatencyRecorder(capacity=0)
