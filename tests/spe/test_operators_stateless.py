"""Map, Filter, Union behaviour."""

import pytest

from repro.spe import FilterOperator, MapOperator, StreamTuple, UnionOperator


def make(x, tau=0.0):
    return StreamTuple(tau=tau, job="j", layer=0, payload={"x": x})


def test_map_one_to_one():
    op = MapOperator("m", lambda t: t.derive(payload={"x": t.payload["x"] * 2}))
    out = op.process(0, make(3))
    assert len(out) == 1
    assert out[0].payload["x"] == 6


def test_map_one_to_many():
    op = MapOperator("m", lambda t: [t, t.derive(payload={"x": 0})])
    assert len(op.process(0, make(1))) == 2


def test_map_one_to_none():
    op = MapOperator("m", lambda t: None)
    assert op.process(0, make(1)) == []


def test_map_generator_result():
    op = MapOperator("m", lambda t: (t.derive(payload={"x": i}) for i in range(3)))
    assert [o.payload["x"] for o in op.process(0, make(9))] == [0, 1, 2]


def test_filter_pass_and_drop():
    op = FilterOperator("f", lambda t: t.payload["x"] > 0)
    assert op.process(0, make(5)) != []
    assert op.process(0, make(-5)) == []
    assert op.passed == 1
    assert op.dropped == 1


def test_union_forwards_all_inputs():
    op = UnionOperator("u", num_inputs=3)
    for index in range(3):
        out = op.process(index, make(index))
        assert out[0].payload["x"] == index


def test_union_invalid_inputs():
    with pytest.raises(ValueError):
        UnionOperator("u", num_inputs=0)
