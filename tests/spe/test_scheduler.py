"""Scheduler semantics: sync/threaded equivalence, errors, shutdown."""

import time

import pytest

from repro.spe import (
    AggregateOperator,
    CollectingSink,
    FilterOperator,
    IterableSource,
    JoinOperator,
    ListSource,
    MapOperator,
    OperatorError,
    Query,
    StreamEngine,
    StreamTuple,
)


def tuples(n):
    return [StreamTuple(tau=float(i), job="j", layer=i, payload={"x": i}) for i in range(n)]


def build_chain_query(sink, n=50):
    q = Query("chain")
    q.add_source("src", ListSource("src", tuples(n)))
    q.add_operator(
        "double", MapOperator("double", lambda t: t.derive(payload={"x": t.payload["x"] * 2})), "src"
    )
    q.add_operator("pos", FilterOperator("pos", lambda t: t.payload["x"] % 3 == 0), "double")
    q.add_sink("out", sink, "pos")
    return q


@pytest.mark.parametrize("mode", ["sync", "threaded"])
def test_chain_results_identical_across_modes(mode):
    sink = CollectingSink()
    report = StreamEngine(mode=mode).run(build_chain_query(sink))
    values = sorted(t.payload["x"] for t in sink.results)
    assert values == [x * 2 for x in range(50) if (x * 2) % 3 == 0]
    assert report.operator_stats["double"].tuples_in == 50


@pytest.mark.parametrize("mode", ["sync", "threaded"])
def test_join_and_aggregate_pipeline(mode):
    q = Query("jq")
    q.add_source("L", ListSource("L", tuples(20)))
    q.add_source("R", ListSource("R", tuples(20)))
    q.add_operator(
        "join",
        JoinOperator(
            "join",
            ws=0.0,
            group_by=lambda t: (t.job, t.layer),
            combiner=lambda l, r: l.derive(payload={"x": l.payload["x"] + r.payload["x"]}),
        ),
        ["L", "R"],
    )
    q.add_operator(
        "agg",
        AggregateOperator(
            "agg", ws=10.0, wa=10.0,
            fn=lambda k, s, e, ts: {"sum": sum(t.payload["x"] for t in ts)},
        ),
        "join",
    )
    sink = CollectingSink()
    q.add_sink("out", sink, "agg")
    StreamEngine(mode=mode).run(q)
    sums = sorted(t.payload["sum"] for t in sink.results)
    # joined payload x doubles each value; windows [0,10) and [10,20)
    assert sums == [sum(2 * x for x in range(10)), sum(2 * x for x in range(10, 20))]


@pytest.mark.parametrize("mode", ["sync", "threaded"])
def test_operator_error_propagates(mode):
    def boom(t):
        raise RuntimeError("user function failed")

    q = Query("err")
    q.add_source("src", ListSource("src", tuples(3)))
    q.add_operator("bad", MapOperator("bad", boom), "src")
    q.add_sink("out", CollectingSink(), "bad")
    with pytest.raises(OperatorError, match="bad"):
        StreamEngine(mode=mode).run(q)


def test_parallel_results_match_serial():
    def build(parallelism):
        q = Query("par")
        data = [
            StreamTuple(
                tau=float(i), job="j", layer=i, specimen=f"S{i % 5}", portion="p",
                payload={"x": i},
            )
            for i in range(100)
        ]
        q.add_source("src", ListSource("src", data))
        q.add_operator(
            "m",
            lambda: MapOperator("m", lambda t: t.derive(payload={"x": t.payload["x"] + 1})),
            "src",
            parallelism=parallelism,
        )
        sink = CollectingSink()
        q.add_sink("out", sink, "m")
        return q, sink

    q1, s1 = build(1)
    q4, s4 = build(4)
    StreamEngine(mode="threaded").run(q1)
    StreamEngine(mode="threaded").run(q4)
    assert sorted(t.payload["x"] for t in s1.results) == sorted(
        t.payload["x"] for t in s4.results
    )


def test_parallel_preserves_per_key_order():
    data = [
        StreamTuple(tau=float(i), job="j", layer=i, specimen=f"S{i % 3}", portion="p",
                    payload={"seq": i})
        for i in range(60)
    ]
    q = Query("order")
    q.add_source("src", ListSource("src", data))
    q.add_operator("m", lambda: MapOperator("m", lambda t: t), "src", parallelism=3)
    sink = CollectingSink()
    q.add_sink("out", sink, "m")
    StreamEngine(mode="threaded").run(q)
    per_key: dict[str, list[int]] = {}
    for t in sink.results:
        per_key.setdefault(t.specimen, []).append(t.payload["seq"])
    for seqs in per_key.values():
        assert seqs == sorted(seqs)


def test_background_start_and_stop():
    def slow_source():
        for i in range(10_000):
            time.sleep(0.001)
            yield StreamTuple(tau=float(i), job="j", layer=i, payload={})

    q = Query("bg")
    q.add_source("src", IterableSource("src", slow_source()))
    sink = CollectingSink()
    q.add_sink("out", sink, "src")
    engine = StreamEngine(mode="threaded")
    engine.start(q)
    time.sleep(0.2)
    engine.stop(timeout=5.0)
    assert 0 < len(sink.results) < 10_000  # stopped mid-stream


def test_background_wait_for_natural_end():
    q = Query("bg2")
    q.add_source("src", ListSource("src", tuples(5)))
    sink = CollectingSink()
    q.add_sink("out", sink, "src")
    engine = StreamEngine(mode="threaded")
    engine.start(q)
    engine.wait(timeout=10.0)
    assert len(sink.results) == 5


def test_sync_mode_cannot_background():
    from repro.spe import EngineStateError

    engine = StreamEngine(mode="sync")
    q = Query("x")
    q.add_source("src", ListSource("src", tuples(1)))
    q.add_sink("out", CollectingSink(), "src")
    with pytest.raises(EngineStateError):
        engine.start(q)


def test_sink_latency_recorded():
    sink = CollectingSink()
    report = StreamEngine(mode="threaded").run(build_chain_query(sink, n=30))
    samples = report.latency_samples()
    assert len(samples) == len(sink.results)
    assert all(s >= 0 for s in samples)
    summary = report.latency_summary()
    assert summary.minimum <= summary.median <= summary.maximum


def test_sync_scheduler_survives_emission_beyond_stream_capacity():
    """One join step can emit more pairs than a bounded stream holds.

    The sync scheduler is single-threaded: nothing drains a full output
    stream while an operator is still emitting into it, so a blocking put
    would deadlock the whole run. Capacity 4 with a 30x30 cross join
    (900 pairs through one step) deadlocked before puts went unbounded.
    """
    n = 30
    q = Query("tightjoin", default_capacity=4)
    q.add_source("L", ListSource("L", tuples(n)))
    q.add_source(
        "R",
        ListSource(
            "R",
            [
                StreamTuple(tau=float(i), job="j", layer=i, payload={"y": i})
                for i in range(n)
            ],
        ),
    )
    q.add_operator(
        "join",
        JoinOperator(
            "join", ws=float(n),  # every L matches every R
            combiner=lambda l, r: l.derive(
                payload={"x": l.payload["x"], "y": r.payload["y"]}
            ),
        ),
        ["L", "R"],
    )
    sink = CollectingSink()
    q.add_sink("out", sink, "join")
    from repro.spe.scheduler import SynchronousScheduler

    nodes = q.build()
    SynchronousScheduler().run(nodes)
    assert len(sink.results) == n * n
    out_stream = next(node for node in nodes if node.kind == "sink").inputs[0]
    assert out_stream.high_watermark > out_stream.capacity  # overshoot happened
