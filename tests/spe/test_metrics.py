"""Latency/throughput metric helpers."""

import pytest

from repro.spe.metrics import (
    LatencyRecorder,
    ThroughputMeter,
    summarize,
)


def test_summary_five_numbers():
    s = summarize([1.0, 2.0, 3.0, 4.0, 5.0])
    assert s.minimum == 1.0
    assert s.median == 3.0
    assert s.maximum == 5.0
    assert s.q1 == 2.0
    assert s.q3 == 4.0
    assert s.mean == 3.0
    assert s.count == 5


def test_summary_interpolated_quantiles():
    s = summarize([0.0, 10.0])
    assert s.q1 == pytest.approx(2.5)
    assert s.median == pytest.approx(5.0)
    assert s.q3 == pytest.approx(7.5)


def test_summary_single_sample():
    s = summarize([7.0])
    assert s.minimum == s.q1 == s.median == s.q3 == s.maximum == 7.0


def test_summary_empty_rejected():
    with pytest.raises(ValueError):
        summarize([])


def test_summary_unsorted_input():
    s = summarize([5.0, 1.0, 3.0])
    assert s.minimum == 1.0
    assert s.maximum == 5.0


def test_as_row_scaling():
    s = summarize([0.001, 0.002, 0.003])
    row = s.as_row(scale=1000.0)
    assert row["median"] == pytest.approx(2.0)
    assert row["count"] == 3


def test_latency_recorder():
    rec = LatencyRecorder()
    for value in (0.1, 0.2, 0.3):
        rec.record(value)
    assert len(rec) == 3
    assert rec.summary().median == pytest.approx(0.2)
    rec.clear()
    assert len(rec) == 0


def test_throughput_meter():
    meter = ThroughputMeter()
    meter.start()
    meter.add(100)
    meter.stop()
    assert meter.count == 100
    assert meter.per_second() > 0
    assert meter.elapsed() > 0


def test_throughput_meter_auto_start():
    meter = ThroughputMeter()
    meter.add(5)
    assert meter.count == 5
    assert meter.elapsed() > 0


def test_throughput_meter_never_started_reads_zero():
    meter = ThroughputMeter()
    assert meter.elapsed() == 0.0
    assert meter.per_second() == 0.0  # must not raise ZeroDivisionError


def test_throughput_meter_live_read_without_stop():
    meter = ThroughputMeter()
    meter.start()
    meter.add(50)
    live = meter.per_second()
    assert live > 0
    assert meter.elapsed() > 0
    # still live: a later read covers a longer interval, so the rate drops
    import time

    time.sleep(0.01)
    assert meter.elapsed() >= 0.01
    assert meter.per_second() < live


def test_throughput_meter_stop_freezes_interval():
    import time

    meter = ThroughputMeter()
    meter.start()
    meter.add(10)
    meter.stop()
    frozen = meter.elapsed()
    time.sleep(0.01)
    assert meter.elapsed() == frozen
    assert meter.per_second() == pytest.approx(10 / frozen)


def test_operator_stats_timing_histogram():
    from repro.spe.metrics import OperatorStats

    stats = OperatorStats(name="op")
    assert stats.timing_counts is None  # off by default: zero-overhead path
    stats.enable_timing((0.001, 0.1))
    stats.record_time(0.0005)
    stats.record_time(0.05)
    stats.record_time(5.0)
    assert stats.timing_counts == [1, 1, 1]
    assert stats.timing_total == 3
    # idempotent for the same bounds; conflicting bounds rejected
    stats.enable_timing((0.001, 0.1))
    assert stats.timing_total == 3
    with pytest.raises(Exception):
        stats.enable_timing(())
