"""Join operator: matching, predicates, group-by, eviction."""

from repro.spe import JoinOperator, StreamTuple


def make(tau, side, layer=None, job="j", **payload):
    return StreamTuple(
        tau=tau, job=job, layer=int(tau) if layer is None else layer, payload=payload
    )


def test_exact_tau_match():
    join = JoinOperator("j", ws=0.0)
    assert join.process(0, make(1.0, "L", a=1)) == []
    out = join.process(1, make(1.0, "R", b=2))
    assert len(out) == 1
    assert out[0].payload == {"a": 1, "b": 2}


def test_exact_tau_mismatch():
    join = JoinOperator("j", ws=0.0)
    join.process(0, make(1.0, "L", a=1))
    assert join.process(1, make(2.0, "R", b=2)) == []


def test_window_distance_match():
    join = JoinOperator("j", ws=5.0)
    join.process(0, make(0.0, "L", a=1))
    assert len(join.process(1, make(4.0, "R", b=1))) == 1
    assert join.process(1, make(6.0, "R", b=2)) == []  # |6-0| > 5


def test_predicate_filters_pairs():
    join = JoinOperator(
        "j", ws=10.0, predicate=lambda l, r: l.payload["a"] == r.payload["b"]
    )
    join.process(0, make(0.0, "L", a=1))
    join.process(0, make(1.0, "L", a=2))
    out = join.process(1, make(2.0, "R", b=2))
    assert len(out) == 1
    assert out[0].payload["a"] == 2


def test_group_by_restricts_candidates():
    join = JoinOperator("j", ws=10.0, group_by=lambda t: t.job)
    join.process(0, make(0.0, "L", job="A", a=1))
    assert join.process(1, make(0.0, "R", job="B", b=1)) == []
    assert len(join.process(1, make(0.0, "R", job="A", b=1))) == 1


def test_symmetric_one_to_many():
    join = JoinOperator("j", ws=10.0)
    for i in range(3):
        join.process(0, make(float(i), "L", a=i))
    out = join.process(1, make(1.0, "R", b=9))
    assert len(out) == 3  # matches all buffered left tuples


def test_left_right_roles_in_combiner():
    seen = []

    def combiner(left, right):
        seen.append((left.payload.get("a"), right.payload.get("b")))
        return StreamTuple.fused(left, right)

    join = JoinOperator("j", ws=10.0, combiner=combiner)
    join.process(1, make(0.0, "R", b=2))  # right arrives first
    join.process(0, make(0.0, "L", a=1))
    assert seen == [(1, 2)]


def test_eviction_by_watermark():
    join = JoinOperator("j", ws=1.0)
    join.process(0, make(0.0, "L", a=1))
    # advance both inputs far past 0 + ws
    join.process(0, make(10.0, "L", a=2))
    join.process(1, make(10.0, "R", b=1))
    assert join.buffered == 2  # the tau=0 left tuple was evicted
    # late right at tau=0 can no longer match
    assert join.process(1, make(0.2, "R", b=9)) == []


def test_slow_input_prevents_eviction():
    join = JoinOperator("j", ws=1.0)
    join.process(0, make(0.0, "L", a=1))
    join.process(0, make(100.0, "L", a=2))  # left races ahead
    # right has not advanced: watermark stays low, tau=0 left must survive
    out = join.process(1, make(0.5, "R", b=1))
    assert len(out) == 1


def test_matches_counter():
    join = JoinOperator("j", ws=0.0)
    join.process(0, make(1.0, "L", a=1))
    join.process(1, make(1.0, "R", b=1))
    assert join.matches == 1


def test_on_close_clears_state():
    join = JoinOperator("j", ws=5.0)
    join.process(0, make(0.0, "L", a=1))
    assert join.on_close() == []
    assert join.buffered == 0
