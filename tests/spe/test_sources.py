"""Source adapters: restamping and pacing."""

import time

import pytest

from repro.spe import (
    CallbackSource,
    IterableSource,
    ListSource,
    RateLimitedSource,
    StreamTuple,
)


def make(n):
    return [
        StreamTuple(tau=float(i), job="j", layer=i, payload={}, ingest_time=1.0)
        for i in range(n)
    ]


def test_list_source_restamps_by_default():
    source = ListSource("s", make(3))
    before = time.monotonic()
    out = list(source)
    assert all(t.ingest_time >= before for t in out)


def test_list_source_restamp_off_preserves_stamp():
    source = ListSource("s", make(3), restamp=False)
    assert all(t.ingest_time == 1.0 for t in source)


def test_list_source_len_and_replayable():
    source = ListSource("s", make(4))
    assert len(source) == 4
    assert len(list(source)) == 4
    assert len(list(source)) == 4  # list sources replay


def test_callback_source_stops_on_none():
    items = make(3)

    def poll():
        return items.pop(0) if items else None

    out = list(CallbackSource("s", poll))
    assert len(out) == 3


def test_iterable_source_single_pass():
    source = IterableSource("s", iter(make(2)))
    assert len(list(source)) == 2
    assert list(source) == []  # generator exhausted


def test_rate_limited_source_paces():
    inner = ListSource("s", make(6))
    source = RateLimitedSource(inner, rate=50.0)  # 20 ms apart
    started = time.monotonic()
    out = list(source)
    elapsed = time.monotonic() - started
    assert len(out) == 6
    assert elapsed >= 5 / 50.0 * 0.8  # ~5 inter-arrival gaps


def test_rate_limited_source_restamps_at_emission():
    inner = ListSource("s", make(3), restamp=False)
    source = RateLimitedSource(inner, rate=100.0)
    stamps = [t.ingest_time for t in source]
    assert stamps == sorted(stamps)
    assert stamps[0] > 1.0  # replaced the dataset-age stamp


def test_rate_limited_invalid_rate():
    with pytest.raises(ValueError):
        RateLimitedSource(ListSource("s", []), rate=0.0)
