"""QoS deadline tracking at the sink."""

import time

import pytest

from repro.spe import CollectingSink, DeadlineSink, StreamTuple


def tuple_with_age(age_seconds):
    return StreamTuple(
        tau=0.0, job="j", layer=0, payload={},
        ingest_time=time.monotonic() - age_seconds,
    )


def test_fresh_results_pass():
    inner = CollectingSink()
    sink = DeadlineSink(inner, qos_seconds=3.0)
    sink.accept(tuple_with_age(0.001))
    assert sink.violations == 0
    assert sink.delivered == 1
    assert len(inner.results) == 1  # still forwarded


def test_late_results_counted_and_reported():
    violations = []
    inner = CollectingSink()
    sink = DeadlineSink(
        inner, qos_seconds=0.5,
        on_violation=lambda t, latency: violations.append((t.layer, latency)),
    )
    sink.accept(tuple_with_age(2.0))
    sink.accept(tuple_with_age(0.1))
    assert sink.violations == 1
    assert sink.violation_rate == pytest.approx(0.5)
    assert len(violations) == 1
    assert violations[0][1] >= 2.0
    assert len(inner.results) == 2  # late results are delivered anyway


def test_violation_rate_empty():
    sink = DeadlineSink(CollectingSink(), qos_seconds=1.0)
    assert sink.violation_rate == 0.0


def test_close_propagates_to_inner():
    inner = CollectingSink()
    sink = DeadlineSink(inner, qos_seconds=1.0)
    sink.on_close()  # must not raise; inner throughput stopped


def test_invalid_qos():
    with pytest.raises(ValueError):
        DeadlineSink(CollectingSink(), qos_seconds=0.0)


def test_in_pipeline():
    from repro.spe import ListSource, Query, StreamEngine

    data = [StreamTuple(tau=float(i), job="j", layer=i, payload={}) for i in range(10)]
    inner = CollectingSink()
    sink = DeadlineSink(inner, qos_seconds=5.0)
    q = Query("qos")
    q.add_source("src", ListSource("src", data))
    q.add_sink("out", sink, "src")
    StreamEngine(mode="sync").run(q)
    assert sink.delivered == 10
    assert sink.violations == 0
    assert len(inner.results) == 10
