"""Property-based SPE invariants: window algebra and join semantics."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.spe import (
    AggregateOperator,
    JoinOperator,
    StreamTuple,
    window_indices,
)

# Dyadic rationals keep l*WA and l*WA+WS exact in binary floating point,
# so the properties test window *logic* rather than float rounding at the
# exact boundary (which real event times never hit exactly anyway).
dyadic = st.integers(min_value=0, max_value=8000).map(lambda n: n / 8.0)
dyadic_pos = st.integers(min_value=1, max_value=400).map(lambda n: n / 8.0)


@given(tau=dyadic, ws=dyadic_pos, wa_num=st.integers(min_value=1, max_value=8))
@settings(max_examples=200, deadline=None)
def test_window_indices_cover_and_contain(tau, ws, wa_num):
    wa = ws * wa_num / 8.0
    indices = window_indices(tau, ws, wa)
    # containment: tau falls inside every reported window
    for index in indices:
        assert index * wa <= tau < index * wa + ws
    # coverage: at least one window holds every tau
    assert indices
    # completeness: windows adjacent to the reported range do NOT contain tau
    if indices[0] > 0:
        below = indices[0] - 1
        assert not (below * wa <= tau < below * wa + ws)
    above = indices[-1] + 1
    assert not (above * wa <= tau < above * wa + ws)


@given(
    taus_list=st.lists(st.integers(min_value=0, max_value=50), min_size=1, max_size=60),
    ws=st.integers(min_value=1, max_value=10),
)
@settings(max_examples=100, deadline=None)
def test_aggregate_counts_every_tuple_once_in_tumbling_windows(taus_list, ws):
    """With WS == WA every tuple lands in exactly one emitted window."""
    taus_list = sorted(taus_list)
    op = AggregateOperator(
        "a", ws=float(ws), wa=float(ws),
        fn=lambda k, s, e, ts: {"n": len(ts)},
    )
    emitted = []
    for tau in taus_list:
        emitted.extend(op.process(0, StreamTuple(tau=float(tau), job="j", layer=0, payload={})))
    emitted.extend(op.on_close())
    assert sum(t.payload["n"] for t in emitted) == len(taus_list)


@given(
    left=st.lists(st.integers(min_value=0, max_value=30), max_size=30),
    right=st.lists(st.integers(min_value=0, max_value=30), max_size=30),
    ws=st.integers(min_value=0, max_value=10),
)
@settings(max_examples=100, deadline=None)
def test_join_matches_exactly_the_cartesian_pairs_within_ws(left, right, ws):
    """Streaming join output == brute-force |tl - tr| <= WS pair count.

    Inputs are fed in sorted order (our sources are in-order); eviction
    must never drop a pair that is still matchable.
    """
    left = sorted(left)
    right = sorted(right)
    join = JoinOperator(
        "j", ws=float(ws),
        combiner=lambda l, r: StreamTuple(tau=l.tau, job="j", layer=0, payload={}),
    )
    matched = 0
    li = ri = 0
    # interleave by tau to mimic arrival order
    while li < len(left) or ri < len(right):
        take_left = ri >= len(right) or (li < len(left) and left[li] <= right[ri])
        if take_left:
            matched += len(join.process(0, StreamTuple(tau=float(left[li]), job="j", layer=0, payload={"side": "L"})))
            li += 1
        else:
            matched += len(join.process(1, StreamTuple(tau=float(right[ri]), job="j", layer=0, payload={"side": "R"})))
            ri += 1
    expected = sum(1 for tl in left for tr in right if abs(tl - tr) <= ws)
    assert matched == expected


@given(values=st.lists(st.floats(min_value=0, max_value=1e6, allow_nan=False), min_size=1, max_size=100))
@settings(max_examples=100, deadline=None)
def test_summary_ordering_invariant(values):
    from repro.spe import summarize

    s = summarize(values)
    assert s.minimum <= s.q1 <= s.median <= s.q3 <= s.maximum
    # mean is subject to float-summation rounding: allow a few ulps
    import math

    slack = 8 * math.ulp(max(abs(s.minimum), abs(s.maximum), 1.0))
    assert s.minimum - slack <= s.mean <= s.maximum + slack
