"""Bounded streams: FIFO, back-pressure, end-of-stream protocol."""

import threading
import time

import pytest

from repro.spe.stream import END_OF_STREAM, Stream


def test_fifo_order():
    stream = Stream("s")
    for i in range(5):
        stream.put(i)
    assert [stream.try_get() for _ in range(5)] == [0, 1, 2, 3, 4]
    assert stream.try_get() is None


def test_len_and_counters():
    stream = Stream("s")
    stream.put("a")
    stream.put("b")
    assert len(stream) == 2
    stream.try_get()
    assert stream.produced == 2
    assert stream.consumed == 1


def test_capacity_blocks_and_backpressure_releases():
    stream = Stream("s", capacity=2)
    stream.put(1)
    stream.put(2)
    assert stream.put(3, timeout=0.05) is False  # full: producer blocked

    def consume_later():
        time.sleep(0.05)
        stream.try_get()

    thread = threading.Thread(target=consume_later)
    thread.start()
    assert stream.put(3, timeout=2.0) is True  # unblocked by the consumer
    thread.join()


def test_eos_single_producer():
    stream = Stream("s")
    stream.put("data")
    stream.put(END_OF_STREAM)
    assert stream.try_get() == "data"
    assert stream.try_get() is END_OF_STREAM
    # EOS stays visible for repeated polls
    assert stream.try_get() is END_OF_STREAM


def test_eos_waits_for_all_producers():
    stream = Stream("s")
    stream.set_num_producers(3)
    stream.put(END_OF_STREAM)
    stream.put(END_OF_STREAM)
    assert stream.try_get() is None
    assert not stream.at_eos()
    stream.put(END_OF_STREAM)
    assert stream.try_get() is END_OF_STREAM
    assert stream.at_eos()


def test_data_before_eos_is_delivered_first():
    stream = Stream("s")
    stream.put(1)
    stream.put(END_OF_STREAM)
    assert stream.try_get() == 1
    assert stream.try_get() is END_OF_STREAM


def test_eos_bypasses_capacity():
    stream = Stream("s", capacity=1)
    stream.put("fill")
    assert stream.put(END_OF_STREAM, timeout=0.01) is True


def test_drain():
    stream = Stream("s")
    for i in range(10):
        stream.put(i)
    stream.put(END_OF_STREAM)
    assert stream.drain(max_items=4) == [0, 1, 2, 3]
    assert stream.drain() == [4, 5, 6, 7, 8, 9]
    assert stream.drain() == []  # EOS is not drained
    assert stream.try_get() is END_OF_STREAM


def test_blocking_get_wakes_on_put():
    stream = Stream("s")
    result = []

    def reader():
        result.append(stream.get(timeout=5.0))

    thread = threading.Thread(target=reader)
    thread.start()
    time.sleep(0.02)
    stream.put("hello")
    thread.join(timeout=5.0)
    assert result == ["hello"]


def test_invalid_capacity():
    with pytest.raises(ValueError):
        Stream("s", capacity=0)


def test_invalid_producer_count():
    stream = Stream("s")
    with pytest.raises(ValueError):
        stream.set_num_producers(0)
