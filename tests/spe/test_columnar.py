"""ColumnarBlock: lossless tuple<->column conversion and row selection.

The columnar transport contract (ISSUE 7): ``from_tuples`` then
``to_tuples`` reproduces the original run field-for-field, with payload
value *types* preserved — the serde layer and checkpoint manifests must
never see a numpy scalar where a Python float used to be.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.spe import ColumnarBlock, StreamTuple
from repro.spe.stream import TupleBatch, item_weight

# Payload values across the packable (float, int) and unpackable (str,
# bool, None, dict, mixed) cases. bool is an int subclass — the column
# packer must not let it coerce to int64.
_values = st.one_of(
    st.floats(allow_nan=False, allow_infinity=False),
    st.integers(min_value=-(2**70), max_value=2**70),  # incl. beyond int64
    st.booleans(),
    st.text(max_size=8),
    st.none(),
)


def _tuples_strategy():
    return st.integers(min_value=1, max_value=4).flatmap(
        lambda width: st.lists(
            st.lists(_values, min_size=width, max_size=width),
            min_size=1,
            max_size=12,
        ).map(
            lambda rows: [
                _make_tuple(i, {f"k{j}": v for j, v in enumerate(row)})
                for i, row in enumerate(rows)
            ]
        )
    )


def _make_tuple(i, payload):
    t = StreamTuple(
        tau=float(i),
        job=f"J{i % 2}",
        layer=i,
        payload=payload,
        specimen=f"S{i % 3}",
        portion="p0",
        ingest_time=100.0 + i,
    )
    t.trace_id = f"tr-{i}" if i % 2 else None
    return t


def _fields(t):
    return (
        t.tau,
        t.job,
        t.layer,
        t.specimen,
        t.portion,
        t.ingest_time,
        t.trace_id,
        t.payload,
    )


@given(tuples=_tuples_strategy())
@settings(max_examples=200, deadline=None)
def test_round_trip_is_lossless_including_value_types(tuples):
    back = ColumnarBlock.from_tuples(tuples).to_tuples()
    assert isinstance(back, TupleBatch)
    assert len(back) == len(tuples)
    for original, restored in zip(tuples, back):
        assert _fields(restored) == _fields(original)
        for key, value in original.payload.items():
            assert type(restored.payload[key]) is type(value), (
                f"{key}: {value!r} came back as {restored.payload[key]!r}"
            )


def test_uniform_float_and_int_columns_become_arrays():
    block = ColumnarBlock.from_tuples(
        [_make_tuple(i, {"f": float(i), "n": i, "s": str(i)}) for i in range(4)]
    )
    assert isinstance(block.columns["f"], np.ndarray)
    assert block.columns["f"].dtype == np.float64
    assert isinstance(block.columns["n"], np.ndarray)
    assert block.columns["n"].dtype == np.int64
    assert isinstance(block.columns["s"], list)  # strings never coerce


def test_mixed_type_and_oversized_int_columns_stay_lists():
    block = ColumnarBlock.from_tuples(
        [
            _make_tuple(0, {"m": 1, "big": 2**80, "b": True}),
            _make_tuple(1, {"m": 2.0, "big": 3, "b": False}),
        ]
    )
    assert isinstance(block.columns["m"], list)  # int then float: no coercion
    assert isinstance(block.columns["big"], list)  # beyond int64: no overflow
    assert isinstance(block.columns["b"], list)  # bool must stay bool
    restored = block.to_tuples()
    assert restored[0].payload == {"m": 1, "big": 2**80, "b": True}
    assert type(restored[0].payload["b"]) is bool


def test_mixed_payload_schema_is_rejected():
    tuples = [_make_tuple(0, {"a": 1.0}), _make_tuple(1, {"b": 1.0})]
    with pytest.raises(ValueError, match="uniform payload schema"):
        ColumnarBlock.from_tuples(tuples)


def test_empty_run_is_rejected():
    with pytest.raises(ValueError, match="zero tuples"):
        ColumnarBlock.from_tuples([])


@given(tuples=_tuples_strategy(), data=st.data())
@settings(max_examples=100, deadline=None)
def test_take_and_select_pick_rows_in_order(tuples, data):
    block = ColumnarBlock.from_tuples(tuples)
    indices = data.draw(
        st.lists(
            st.integers(min_value=0, max_value=len(tuples) - 1),
            max_size=2 * len(tuples),
        )
    )
    taken = block.take(indices).to_tuples()
    assert [_fields(t) for t in taken] == [_fields(tuples[i]) for i in indices]

    mask = data.draw(
        st.lists(st.booleans(), min_size=len(tuples), max_size=len(tuples))
    )
    selected = block.select(np.array(mask)).to_tuples()
    assert [_fields(t) for t in selected] == [
        _fields(t) for t, keep in zip(tuples, mask) if keep
    ]


def test_with_columns_adds_without_mutating_original():
    block = ColumnarBlock.from_tuples(
        [_make_tuple(i, {"x": float(i)}) for i in range(3)]
    )
    extended = block.with_columns(y=np.array([1.0, 2.0, 3.0]))
    assert "y" not in block.columns
    assert extended.to_tuples()[1].payload == {"x": 1.0, "y": 2.0}


def test_blocks_weigh_their_row_count_in_stream_accounting():
    tuples = [_make_tuple(i, {"x": float(i)}) for i in range(5)]
    block = ColumnarBlock.from_tuples(tuples)
    assert item_weight(block) == 5 == item_weight(block.to_tuples())
    assert item_weight(tuples[0]) == 1
