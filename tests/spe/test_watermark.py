"""Watermark tracking across inputs."""

import math

import pytest

from repro.spe import WatermarkTracker


def test_single_input_tracks_max():
    tracker = WatermarkTracker(1)
    assert tracker.observe(0, 5.0) == 5.0
    assert tracker.observe(0, 3.0) == 5.0  # out-of-order does not regress
    assert tracker.observe(0, 9.0) == 9.0


def test_min_across_inputs():
    tracker = WatermarkTracker(2)
    tracker.observe(0, 10.0)
    assert tracker.watermark == -math.inf  # input 1 never seen
    tracker.observe(1, 4.0)
    assert tracker.watermark == 4.0


def test_slack_subtracted():
    tracker = WatermarkTracker(1, slack=2.5)
    tracker.observe(0, 10.0)
    assert tracker.watermark == 7.5


def test_closed_input_released():
    tracker = WatermarkTracker(2)
    tracker.observe(0, 10.0)
    tracker.close_input(1)
    assert tracker.watermark == 10.0
    tracker.close_input(0)
    assert tracker.watermark == math.inf


def test_invalid_arguments():
    with pytest.raises(ValueError):
        WatermarkTracker(0)
    with pytest.raises(ValueError):
        WatermarkTracker(1, slack=-1.0)
