"""Cell-grid extraction."""

import numpy as np
import pytest

from repro.analysis import Cell, cell_grid_shape, cell_means, extract_cells


def test_cell_means_exact():
    image = np.array(
        [
            [0, 0, 10, 10],
            [0, 0, 10, 10],
            [20, 20, 30, 30],
            [20, 20, 30, 30],
        ]
    )
    means = cell_means(image, 2)
    assert means.tolist() == [[0.0, 10.0], [20.0, 30.0]]


def test_cell_means_crops_remainder():
    image = np.arange(25).reshape(5, 5)
    means = cell_means(image, 2)
    assert means.shape == (2, 2)  # 5//2 = 2; last row/col dropped


def test_cell_means_whole_image_single_cell():
    image = np.full((8, 8), 7.0)
    means = cell_means(image, 8)
    assert means.shape == (1, 1)
    assert means[0, 0] == 7.0


def test_cell_means_edge_one_is_identity():
    image = np.arange(9).reshape(3, 3).astype(float)
    assert np.array_equal(cell_means(image, 1), image)


def test_cell_means_invalid_edge():
    with pytest.raises(ValueError):
        cell_means(np.zeros((4, 4)), 0)


def test_cell_means_tiny_image():
    means = cell_means(np.zeros((3, 3)), 4)
    assert means.shape == (0, 0)


def test_extract_cells_centers_in_global_coordinates():
    image = np.zeros((4, 6))
    cells = extract_cells(image, 2, origin_row=100, origin_col=200)
    assert len(cells) == 2 * 3
    first = cells[0]
    assert isinstance(first, Cell)
    assert first.center_y_px == 101.0
    assert first.center_x_px == 201.0
    last = cells[-1]
    assert last.center_y_px == 103.0
    assert last.center_x_px == 205.0


def test_extract_cells_means_match_grid():
    rng = np.random.default_rng(0)
    image = rng.uniform(0, 255, size=(6, 6))
    cells = extract_cells(image, 3)
    means = cell_means(image, 3)
    for cell in cells:
        assert cell.mean_intensity == pytest.approx(means[cell.row, cell.col])


def test_cell_grid_shape():
    assert cell_grid_shape((400, 200), 20) == (20, 10)
    assert cell_grid_shape((401, 219), 20) == (20, 10)
