"""Property tests: thermal/melt-pool kernels == their scalar twins.

The thermal workloads' divergence-0 guarantee across scalar and
vectorized plans rests on these kernels being bit-identical to the
per-cell arithmetic the scalar operator path runs — including NaN
(dropped-out) measurements, cells exactly on the melt threshold, and
non-contiguous views. Each property pits a grid kernel against its
scalar twin over randomized inputs.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    kalman_predict,
    kalman_predict_scalar,
    kalman_update,
    kalman_update_scalar,
    laser_feature_vector,
    meltpool_cell_stats,
    meltpool_cell_stats_scalar,
    top_k_mean,
)

_temps = st.floats(min_value=-50.0, max_value=400.0, allow_nan=False)
_covs = st.floats(min_value=1e-6, max_value=100.0, allow_nan=False)
_energies = st.floats(min_value=0.0, max_value=50.0, allow_nan=False)
_measurements = st.one_of(st.just(float("nan")), _temps)


def _grid(values, rows, cols):
    return np.array(values, dtype=np.float64).reshape(rows, cols)


_shapes = st.tuples(
    st.integers(min_value=1, max_value=5), st.integers(min_value=1, max_value=5)
)


@st.composite
def _kalman_inputs(draw):
    rows, cols = draw(_shapes)
    n = rows * cols
    state = _grid(draw(st.lists(_temps, min_size=n, max_size=n)), rows, cols)
    cov = _grid(draw(st.lists(_covs, min_size=n, max_size=n)), rows, cols)
    energy = _grid(draw(st.lists(_energies, min_size=n, max_size=n)), rows, cols)
    measured = _grid(
        draw(st.lists(_measurements, min_size=n, max_size=n)), rows, cols
    )
    return state, cov, energy, measured


PARAMS = dict(ambient=80.0, retention=0.62, coupling=55.0, process_var=0.25)


class TestKalmanKernelParity:
    @given(inputs=_kalman_inputs())
    @settings(max_examples=200, deadline=None)
    def test_predict_bit_identical_to_scalar(self, inputs):
        state, cov, energy, _ = inputs
        k_state, k_cov = kalman_predict(state, cov, energy, **PARAMS)
        for idx in np.ndindex(state.shape):
            s_state, s_cov = kalman_predict_scalar(
                float(state[idx]), float(cov[idx]), float(energy[idx]), **PARAMS
            )
            assert k_state[idx] == s_state  # bit-identical, not allclose
            assert k_cov[idx] == s_cov

    @given(inputs=_kalman_inputs())
    @settings(max_examples=200, deadline=None)
    def test_update_bit_identical_to_scalar_incl_nan(self, inputs):
        state, cov, _, measured = inputs
        k_state, k_cov, k_innov, k_valid = kalman_update(
            state, cov, measured, sensor_var=2.25
        )
        for idx in np.ndindex(state.shape):
            s_state, s_cov, s_innov, s_valid = kalman_update_scalar(
                float(state[idx]), float(cov[idx]), float(measured[idx]),
                sensor_var=2.25,
            )
            assert k_state[idx] == s_state
            assert k_cov[idx] == s_cov
            assert k_innov[idx] == s_innov
            assert bool(k_valid[idx]) == s_valid

    @given(inputs=_kalman_inputs())
    @settings(max_examples=100, deadline=None)
    def test_nan_measurement_coasts(self, inputs):
        """A dropped-out cell keeps its prediction and covariance."""
        state, cov, _, measured = inputs
        k_state, k_cov, k_innov, k_valid = kalman_update(
            state, cov, measured, sensor_var=2.25
        )
        dropped = np.isnan(measured)
        assert np.array_equal(k_state[dropped], state[dropped])
        assert np.array_equal(k_cov[dropped], cov[dropped])
        assert not k_innov[dropped].any()
        assert not k_valid[dropped].any()

    @given(inputs=_kalman_inputs())
    @settings(max_examples=100, deadline=None)
    def test_update_contracts_covariance(self, inputs):
        """A valid measurement never increases uncertainty."""
        state, cov, _, measured = inputs
        _, k_cov, _, k_valid = kalman_update(state, cov, measured, sensor_var=2.25)
        assert np.all(k_cov[k_valid] <= cov[k_valid])
        assert np.all(k_cov > 0)


_images = st.tuples(
    st.integers(min_value=1, max_value=4),  # cell rows
    st.integers(min_value=1, max_value=4),  # cell cols
    st.integers(min_value=1, max_value=4),  # cell edge px
).flatmap(
    lambda dims: st.lists(
        st.floats(min_value=0.0, max_value=200.0, allow_nan=False),
        min_size=dims[0] * dims[2] * dims[1] * dims[2],
        max_size=dims[0] * dims[2] * dims[1] * dims[2],
    ).map(
        lambda vals: (
            np.array(vals, dtype=np.float64).reshape(
                dims[0] * dims[2], dims[1] * dims[2]
            ),
            dims[2],
        )
    )
)


class TestMeltPoolStatsParity:
    @given(image_edge=_images,
           threshold=st.floats(min_value=0.0, max_value=200.0, allow_nan=False))
    @settings(max_examples=150, deadline=None)
    def test_kernel_matches_scalar(self, image_edge, threshold):
        image, edge = image_edge
        k_total, k_peak, k_melt = meltpool_cell_stats(image, edge, threshold)
        s_total, s_peak, s_melt = meltpool_cell_stats_scalar(image, edge, threshold)
        # peak and melt-fraction are exact (max / counting); totals are
        # float sums whose order differs between the strided reshape and
        # the python loop, so allclose with a tight tolerance
        assert np.array_equal(k_peak, s_peak)
        assert np.array_equal(k_melt, s_melt)
        np.testing.assert_allclose(k_total, s_total, rtol=1e-12, atol=1e-9)

    def test_rejects_non_dividing_edge(self):
        with pytest.raises(ValueError):
            meltpool_cell_stats(np.zeros((7, 7)), 3, 10.0)

    @given(image_edge=_images)
    @settings(max_examples=50, deadline=None)
    def test_threshold_boundary_is_strict(self, image_edge):
        """Cells exactly at the threshold do not count as melted."""
        image, edge = image_edge
        threshold = float(image.max())
        _, _, melt = meltpool_cell_stats(image, edge, threshold)
        _, _, s_melt = meltpool_cell_stats_scalar(image, edge, threshold)
        assert np.array_equal(melt, s_melt)
        assert float(melt.max()) == 0.0  # > threshold, not >=


class TestLaserFeatures:
    @given(
        values=st.lists(
            st.floats(min_value=0.1, max_value=300.0, allow_nan=False),
            min_size=4, max_size=64,
        ),
        k=st.integers(min_value=1, max_value=16),
    )
    @settings(max_examples=100, deadline=None)
    def test_top_k_mean_matches_sort_oracle(self, values, k):
        image = np.array(values, dtype=np.float64).reshape(1, -1)
        k = min(k, len(values))  # k > pixel count is rejected by contract
        expected = float(np.mean(np.sort(np.asarray(values))[-k:]))
        assert math.isclose(top_k_mean(image, k), expected, rel_tol=1e-12)

    def test_top_k_mean_rejects_out_of_range_k(self):
        with pytest.raises(ValueError):
            top_k_mean(np.ones((2, 2)), 5)
        with pytest.raises(ValueError):
            top_k_mean(np.ones((2, 2)), 0)

    def test_feature_vector_is_log_linear_in_amplitude(self):
        """Scaling the image by c shifts log_peak and log_dose by log c."""
        rng = np.random.default_rng(5)
        image = rng.uniform(1.0, 50.0, size=(24, 24))
        lp1, ld1 = laser_feature_vector(image, 40.0, top_k=16)
        lp2, ld2 = laser_feature_vector(image * 3.0, 40.0, top_k=16)
        assert math.isclose(lp2 - lp1, math.log(3.0), rel_tol=1e-9)
        assert math.isclose(ld2 - ld1, math.log(3.0), rel_tol=1e-9)

    def test_feature_vector_rejects_dark_image(self):
        with pytest.raises(ValueError):
            laser_feature_vector(np.zeros((8, 8)), 10.0, top_k=4)
