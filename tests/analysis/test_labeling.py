"""Five-class thermal labeling."""

import numpy as np

from repro.analysis import (
    ALL_LABELS,
    COLD,
    REGULAR,
    ThermalThresholds,
    VERY_COLD,
    VERY_WARM,
    WARM,
    event_mask,
    is_event,
    label_cell,
    label_grid,
)

TH = ThermalThresholds(100, 110, 150, 160)


def test_label_cell_all_classes():
    assert label_cell(90, TH) == VERY_COLD
    assert label_cell(105, TH) == COLD
    assert label_cell(130, TH) == REGULAR
    assert label_cell(155, TH) == WARM
    assert label_cell(170, TH) == VERY_WARM


def test_label_cell_boundaries():
    # boundaries are exclusive: exactly-at-threshold is the milder class
    assert label_cell(100, TH) == COLD
    assert label_cell(110, TH) == REGULAR
    assert label_cell(150, TH) == REGULAR
    assert label_cell(160, TH) == WARM


def test_is_event_only_extremes():
    assert is_event(VERY_COLD)
    assert is_event(VERY_WARM)
    assert not is_event(COLD)
    assert not is_event(WARM)
    assert not is_event(REGULAR)


def test_label_grid_matches_scalar():
    rng = np.random.default_rng(0)
    means = rng.uniform(80, 180, size=(20, 20))
    grid = label_grid(means, TH)
    for row in range(20):
        for col in range(20):
            assert ALL_LABELS[grid[row, col]] == label_cell(means[row, col], TH)


def test_event_mask_matches_is_event():
    means = np.array([[90.0, 105.0, 130.0], [155.0, 170.0, 99.9]])
    mask = event_mask(label_grid(means, TH))
    assert mask.tolist() == [[True, False, False], [False, True, True]]


def test_label_grid_empty():
    grid = label_grid(np.empty((0, 0)), TH)
    assert grid.shape == (0, 0)
