"""Property tests: columnar kernels == scalar functions, element-wise.

The vectorized operator mode (ISSUE 7) only holds if every whole-image
kernel in :mod:`repro.analysis` is *bit-identical* to the per-cell
function it replaces — including values exactly on a threshold, NaN
cells, and grids that don't divide evenly into cells. Each property here
pits a kernel against its scalar twin (or a brute-force oracle) over
randomized inputs.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    ALL_LABELS,
    AdaptiveThresholdLearner,
    ThermalThresholds,
    cell_centers,
    cell_means,
    connected_defects,
    count_defect_regions,
    event_mask,
    extract_cells,
    is_event,
    label_cell,
    label_grid,
    masked_cell_means,
)

TH = ThermalThresholds(100, 110, 150, 160)

# Intensities biased toward the decision boundaries: every threshold value
# itself, one ulp around it, NaN, and ordinary in-band values.
_BOUNDARY = [100.0, 110.0, 150.0, 160.0]
_intensities = st.one_of(
    st.sampled_from(
        _BOUNDARY
        + [np.nextafter(b, -np.inf) for b in _BOUNDARY]
        + [np.nextafter(b, np.inf) for b in _BOUNDARY]
        + [float("nan")]
    ),
    st.floats(min_value=0.0, max_value=260.0, allow_nan=False),
)

_grids = st.integers(min_value=1, max_value=6).flatmap(
    lambda rows: st.integers(min_value=1, max_value=6).flatmap(
        lambda cols: st.lists(
            _intensities, min_size=rows * cols, max_size=rows * cols
        ).map(lambda vals: np.array(vals, dtype=float).reshape(rows, cols))
    )
)

_masks = st.integers(min_value=1, max_value=8).flatmap(
    lambda rows: st.integers(min_value=1, max_value=8).flatmap(
        lambda cols: st.lists(
            st.booleans(), min_size=rows * cols, max_size=rows * cols
        ).map(lambda vals: np.array(vals, dtype=bool).reshape(rows, cols))
    )
)


@given(means=_grids)
@settings(max_examples=200, deadline=None)
def test_label_grid_matches_label_cell_elementwise(means):
    indices = label_grid(means, TH)
    assert indices.shape == means.shape
    for row in range(means.shape[0]):
        for col in range(means.shape[1]):
            expected = label_cell(float(means[row, col]), TH)
            assert ALL_LABELS[indices[row, col]] == expected, (
                f"value {means[row, col]!r} labeled "
                f"{ALL_LABELS[indices[row, col]]}, scalar path says {expected}"
            )


def test_label_grid_boundary_values_are_exclusive():
    # values exactly on a threshold take the milder class, like label_cell
    values = np.array([_BOUNDARY])
    got = [ALL_LABELS[i] for i in label_grid(values, TH)[0]]
    assert got == ["cold", "regular", "regular", "warm"]


def test_label_grid_nan_is_regular():
    grid = np.array([[float("nan"), 50.0], [250.0, float("nan")]])
    indices = label_grid(grid, TH)
    assert ALL_LABELS[indices[0, 0]] == "regular" == label_cell(float("nan"), TH)
    assert ALL_LABELS[indices[1, 1]] == "regular"


@given(means=_grids)
@settings(max_examples=100, deadline=None)
def test_event_mask_matches_is_event(means):
    indices = label_grid(means, TH)
    mask = event_mask(indices)
    for row in range(means.shape[0]):
        for col in range(means.shape[1]):
            assert mask[row, col] == is_event(ALL_LABELS[indices[row, col]])


def _bfs_components(mask: np.ndarray) -> np.ndarray:
    """Brute-force 4-connected labeling oracle (explicit BFS per region)."""
    out = np.zeros(mask.shape, dtype=np.int64)
    next_label = 0
    for seed in zip(*np.nonzero(mask)):
        if out[seed]:
            continue
        next_label += 1
        frontier = [seed]
        out[seed] = next_label
        while frontier:
            r, c = frontier.pop()
            for nr, nc in ((r - 1, c), (r + 1, c), (r, c - 1), (r, c + 1)):
                if (
                    0 <= nr < mask.shape[0]
                    and 0 <= nc < mask.shape[1]
                    and mask[nr, nc]
                    and not out[nr, nc]
                ):
                    out[nr, nc] = next_label
                    frontier.append((nr, nc))
    return out


@given(mask=_masks)
@settings(max_examples=200, deadline=None)
def test_connected_defects_matches_bfs_oracle(mask):
    got = connected_defects(mask)
    oracle = _bfs_components(mask)
    # same partition into regions (label *numbers* may differ): every
    # kernel region maps to exactly one oracle region and vice versa
    assert (got > 0).tolist() == mask.tolist()
    assert got.max() == oracle.max()
    pairs = {
        (int(a), int(b)) for a, b in zip(got[mask].ravel(), oracle[mask].ravel())
    }
    assert len(pairs) == got.max(), "kernel merged or split a region"


@given(mask=_masks)
@settings(max_examples=100, deadline=None)
def test_count_defect_regions_matches_oracle(mask):
    assert count_defect_regions(mask) == int(_bfs_components(mask).max())


def test_count_defect_regions_empty_mask():
    assert count_defect_regions(np.zeros((0, 0), dtype=bool)) == 0
    assert count_defect_regions(np.zeros((4, 4), dtype=bool)) == 0


@given(
    rows=st.integers(min_value=1, max_value=5),
    cols=st.integers(min_value=1, max_value=5),
    edge=st.integers(min_value=1, max_value=7),
    oy=st.integers(min_value=0, max_value=300),
    ox=st.integers(min_value=0, max_value=300),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
)
@settings(max_examples=100, deadline=None)
def test_cell_centers_bit_identical_to_extract_cells(rows, cols, edge, oy, ox, seed):
    rng = np.random.default_rng(seed)
    image = rng.uniform(0, 255, size=(rows * edge, cols * edge))
    cells = extract_cells(image, edge, origin_row=oy, origin_col=ox)
    ys, xs = cell_centers((rows, cols), edge, oy, ox)
    assert ys.tolist() == [c.center_y_px for c in cells]
    assert xs.tolist() == [c.center_x_px for c in cells]


@given(
    height=st.integers(min_value=1, max_value=20),
    width=st.integers(min_value=1, max_value=20),
    edge=st.integers(min_value=1, max_value=9),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
)
@settings(max_examples=100, deadline=None)
def test_cell_means_crops_non_divisible_grids(height, width, edge, seed):
    rng = np.random.default_rng(seed)
    image = rng.uniform(0, 255, size=(height, width))
    means = cell_means(image, edge)
    if height < edge or width < edge:
        assert means.shape == (0, 0)  # degenerate grid: no whole cell fits
        return
    assert means.shape == (height // edge, width // edge)
    for row in range(means.shape[0]):
        for col in range(means.shape[1]):
            patch = image[
                row * edge : (row + 1) * edge, col * edge : (col + 1) * edge
            ]
            # approx: the strided reduction may sum in a different order
            assert means[row, col] == pytest.approx(patch.mean(), rel=1e-12)


def test_masked_cell_means_part_only_average():
    image = np.array([[200.0, 10.0], [200.0, 10.0]])
    mask = np.array([[1.0, 0.0], [1.0, 0.0]])  # right half is powder
    assert masked_cell_means(image, mask, 2)[0, 0] == 200.0
    # a fully-masked-out cell reports 0, not NaN
    assert masked_cell_means(image, np.zeros_like(mask), 2)[0, 0] == 0.0


@given(
    layer_count=st.integers(min_value=0, max_value=6),
    alpha=st.sampled_from([0.0, 0.15, 0.5, 1.0]),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
)
@settings(max_examples=100, deadline=None)
def test_update_batch_bit_identical_to_sequential_updates(layer_count, alpha, seed):
    rng = np.random.default_rng(seed)
    layers = [
        rng.uniform(80, 180, size=rng.integers(1, 40)) for _ in range(layer_count)
    ]
    # one layer with NaN holes: batched sorting must not let them into the
    # healthy band (update()'s boolean filter drops them as compare-false)
    if layer_count:
        layers[0] = np.where(rng.uniform(size=layers[0].shape) < 0.2, np.nan, layers[0])

    sequential = AdaptiveThresholdLearner(TH, alpha=alpha)
    for means in layers:
        sequential.update(means)
    batched = AdaptiveThresholdLearner(TH, alpha=alpha)
    batched.update_batch(layers)

    assert batched.center == sequential.center  # bit-identical, not approx
    assert batched.updates == sequential.updates
    assert batched.current == sequential.current
