"""Threshold calibration and persistence."""

import numpy as np
import pytest

from repro.analysis import (
    ThermalThresholds,
    calibrate_thresholds,
    load_thresholds,
    store_thresholds,
    threshold_key,
)


def uniform_image(level, size=100, noise=3.0, seed=0):
    rng = np.random.default_rng(seed)
    return np.clip(rng.normal(level, noise, (size, size)), 0, 255)


def test_boundaries_must_increase():
    with pytest.raises(ValueError):
        ThermalThresholds(100, 90, 150, 160)
    ThermalThresholds(80, 90, 150, 160)  # valid


def test_calibration_centered_on_reference_mean():
    images = [uniform_image(140, seed=i) for i in range(3)]
    th = calibrate_thresholds(images, cell_edge_px=5)
    assert th.very_cold_below < th.cold_below < 140 < th.warm_above < th.very_warm_above
    # symmetric by construction
    assert (140 - th.cold_below) == pytest.approx(th.warm_above - 140, rel=0.2)


def test_calibration_excludes_powder():
    image = uniform_image(140)
    image[:50, :] = 5.0  # powder region must not drag the mean down
    th = calibrate_thresholds([image], cell_edge_px=5)
    mid = (th.cold_below + th.warm_above) / 2
    assert 130 < mid < 150


def test_calibration_sigma_floor():
    # zero-noise reference: the band must still have finite width
    image = np.full((100, 100), 140.0)
    th = calibrate_thresholds([image], cell_edge_px=5, min_sigma_fraction=0.02)
    assert th.warm_above - th.cold_below >= 2 * 1.5 * 0.02 * 140 * 0.99


def test_calibration_regions_restrict_sampling():
    image = np.full((100, 100), 140.0)
    image[:, 50:] = 40.0  # second half would contaminate sigma
    th_all = calibrate_thresholds([image], cell_edge_px=10)
    th_region = calibrate_thresholds(
        [image], cell_edge_px=10, regions=[(0, 100, 0, 50)]
    )
    assert (th_all.warm_above - th_all.cold_below) > (
        th_region.warm_above - th_region.cold_below
    )


def test_calibration_no_melt_raises():
    with pytest.raises(ValueError, match="no melted cells"):
        calibrate_thresholds([np.zeros((50, 50))], cell_edge_px=5)


def test_store_roundtrip(kv_store):
    th = ThermalThresholds(100, 110, 150, 160)
    store_thresholds(kv_store, "JOB-1", th)
    assert load_thresholds(kv_store, "JOB-1") == th
    assert threshold_key("JOB-1") == "thresholds/JOB-1"


def test_load_missing_raises(kv_store):
    with pytest.raises(KeyError):
        load_thresholds(kv_store, "ghost-job")


def test_payload_roundtrip():
    th = ThermalThresholds(1.0, 2.0, 3.0, 4.0)
    assert ThermalThresholds.from_payload(th.as_payload()) == th
