"""Adaptive threshold learner."""

import numpy as np
import pytest

from repro.analysis import AdaptiveThresholdLearner, ThermalThresholds

TH = ThermalThresholds(100, 110, 150, 160)  # center 130, offsets -30/-20/+20/+30


def test_initial_state_matches_seed():
    learner = AdaptiveThresholdLearner(TH)
    assert learner.current == TH
    assert learner.center == 130.0
    assert learner.updates == 0


def test_update_recenters_but_keeps_widths():
    learner = AdaptiveThresholdLearner(TH, alpha=1.0)
    updated = learner.update(np.full(100, 120.0))
    assert learner.center == pytest.approx(120.0)
    assert updated.cold_below == pytest.approx(100.0)
    assert updated.warm_above == pytest.approx(140.0)
    assert updated.warm_above - updated.cold_below == pytest.approx(
        TH.warm_above - TH.cold_below
    )


def test_alpha_zero_freezes():
    learner = AdaptiveThresholdLearner(TH, alpha=0.0)
    learner.update(np.full(50, 115.0))
    assert learner.current == TH


def test_ewma_blending():
    learner = AdaptiveThresholdLearner(TH, alpha=0.5)
    learner.update(np.full(50, 120.0))
    assert learner.center == pytest.approx(125.0)


def test_outliers_do_not_steer_baseline():
    learner = AdaptiveThresholdLearner(TH, alpha=1.0)
    # defect cells at 60 gray are outside the cold..warm band: excluded
    means = np.concatenate([np.full(90, 130.0), np.full(10, 60.0)])
    learner.update(means)
    assert learner.center == pytest.approx(130.0)


def test_all_outlier_layer_is_skipped():
    learner = AdaptiveThresholdLearner(TH, alpha=1.0)
    learner.update(np.full(20, 50.0))  # everything outside the band
    assert learner.center == 130.0
    assert learner.updates == 0


def test_tracks_slow_drift():
    learner = AdaptiveThresholdLearner(TH, alpha=0.3)
    level = 130.0
    for _ in range(60):
        level -= 0.5  # slow drift, well within the band per step
        learner.update(np.random.default_rng(0).normal(level, 1.0, 200))
    assert learner.center == pytest.approx(level, abs=2.0)
    # a healthy cell at the drifted level is not an event
    assert learner.current.cold_below < level < learner.current.warm_above


def test_invalid_alpha():
    with pytest.raises(ValueError):
        AdaptiveThresholdLearner(TH, alpha=1.5)


def test_masked_cell_means():
    from repro.analysis import masked_cell_means

    image = np.array(
        [
            [100.0, 100.0, 0.0, 0.0],
            [100.0, 100.0, 0.0, 0.0],
            [50.0, 50.0, 80.0, 0.0],
            [50.0, 50.0, 80.0, 0.0],
        ]
    )
    mask = image > 0
    means = masked_cell_means(image, mask, 2)
    assert means[0, 0] == pytest.approx(100.0)  # fully covered
    assert means[0, 1] == 0.0  # no part pixels
    assert means[1, 1] == pytest.approx(80.0)  # half-covered: part-only mean


def test_masked_cell_means_shape_mismatch():
    from repro.analysis import masked_cell_means

    with pytest.raises(ValueError):
        masked_cell_means(np.zeros((4, 4)), np.zeros((2, 2), dtype=bool), 2)
