"""Use-case configuration and pipeline assembly."""

import pytest

from repro.core import Strata, UseCaseConfig, build_use_case
from repro.core.functions import LabelCell, LabelSpecimenCells


class TestUseCaseConfig:
    def test_paper_defaults(self):
        config = UseCaseConfig()
        assert config.image_px == 2000
        assert config.px_per_mm == 8.0  # 2000 px / 250 mm, the paper's sensor
        assert config.layer_thickness_mm == 0.04

    def test_cell_edge_mm(self):
        config = UseCaseConfig(image_px=2000, cell_edge_px=20)
        assert config.cell_edge_mm == pytest.approx(2.5)
        # paper: 40x40 px = 5 mm^2 ... 2x2 px = 0.25 mm^2 cells
        assert UseCaseConfig(cell_edge_px=40).cell_edge_mm == pytest.approx(5.0)
        assert UseCaseConfig(cell_edge_px=2).cell_edge_mm == pytest.approx(0.25)

    def test_eps_default_scales_with_cell(self):
        small = UseCaseConfig(cell_edge_px=10)
        large = UseCaseConfig(cell_edge_px=40)
        assert small.resolved_eps_mm < large.resolved_eps_mm
        assert small.resolved_eps_mm == pytest.approx(1.6 * small.cell_edge_mm)

    def test_eps_override(self):
        config = UseCaseConfig(eps_mm=3.3)
        assert config.resolved_eps_mm == 3.3

    def test_cell_volume(self):
        config = UseCaseConfig(image_px=2000, cell_edge_px=20)
        assert config.cell_volume_mm3 == pytest.approx(2.5 * 2.5 * 0.04)


class TestBuildUseCase:
    def test_scalar_path_structure(self, layer_records):
        config = UseCaseConfig(image_px=250, cell_edge_px=5, vectorized=False)
        pipeline = build_use_case(
            iter(layer_records), iter(layer_records), config,
            strata=Strata(engine_mode="sync"),
        )
        assert isinstance(pipeline.detect_fn, LabelCell)
        assert pipeline.cells_evaluated == 0  # nothing deployed yet

    def test_vectorized_path_structure(self, layer_records):
        config = UseCaseConfig(image_px=250, cell_edge_px=5, vectorized=True)
        pipeline = build_use_case(
            iter(layer_records), iter(layer_records), config,
            strata=Strata(engine_mode="sync"),
        )
        assert isinstance(pipeline.detect_fn, LabelSpecimenCells)

    def test_streams_registered(self, layer_records):
        config = UseCaseConfig(image_px=250, cell_edge_px=5)
        pipeline = build_use_case(
            iter(layer_records), iter(layer_records), config,
            strata=Strata(engine_mode="sync"),
        )
        streams = pipeline.strata._streams
        for name in ("pp", "OT", "OT&pp", "spec", "cellLabel", "out"):
            assert name in streams
