"""StreamHandle: str compatibility, fluent chaining, aliases, metrics."""

import pickle
import warnings

import pytest

from repro.core import PipelineDefinitionError, Strata, StreamHandle
from repro.core.handles import install_snake_case_aliases, snake_name
from repro.spe import CollectingSink
from repro.spe.source import ListSource
from repro.spe.tuples import StreamTuple


def _tuples(n=4, key="v"):
    return [
        StreamTuple(tau=float(i), job="j", layer=i, payload={key: i})
        for i in range(n)
    ]


def _source(name="src", n=4, key="v"):
    return ListSource(name, _tuples(n, key))


class TestStringCompatibility:
    def test_handle_is_the_stream_name(self):
        strata = Strata()
        h = strata.addSource(_source(), "raw")
        assert isinstance(h, StreamHandle)
        assert isinstance(h, str)
        assert h == "raw"
        assert h.name == "raw"
        assert str(h) == "raw"
        assert hash(h) == hash("raw")
        assert {h: 1}["raw"] == 1

    def test_handle_accepted_where_string_expected(self):
        strata = Strata()
        h = strata.addSource(_source(), "raw")
        strata.detectEvent(h, "events", lambda t: [t])  # handle as s_in
        strata.deliver("events")  # plain string still fine

    def test_pickle_round_trips_as_plain_text(self):
        h = StreamHandle("raw")
        assert pickle.loads(pickle.dumps(str(h))) == "raw"

    def test_repr_shows_context(self):
        strata = Strata()
        h = strata.addSource(_source(), "raw")
        assert "raw" in repr(h)
        assert h.node in repr(h)


class TestContext:
    def test_handle_carries_node_module_schema(self):
        strata = Strata()
        h = strata.addSource(_source(), "raw")
        assert h.node == "source:raw"
        assert h.module is not None
        assert h.schema is not None and "tau" in h.schema
        assert h.strata is strata

    def test_each_verb_returns_a_bound_handle(self):
        strata = Strata()
        raw = strata.addSource(_source("a"), "rawA")
        other = strata.addSource(_source("b", key="w"), "rawB")
        fused = strata.fuse(raw, other, "fused")
        events = strata.detectEvent(fused, "events", lambda t: [t])
        corr = strata.correlateEvents(events, "reports", 2, lambda w, t: [])
        for handle in (fused, events, corr):
            assert isinstance(handle, StreamHandle)
            assert handle.strata is strata
            assert handle.node is not None

    def test_detached_handle_refuses_verbs(self):
        h = StreamHandle("loose")
        with pytest.raises(PipelineDefinitionError):
            h.detectEvent("out", lambda t: [t])
        with pytest.raises(PipelineDefinitionError):
            h.metrics()


class TestFluentChaining:
    def test_chain_builds_the_same_pipeline(self):
        strata = Strata()
        sink = CollectingSink("out")
        (
            strata.addSource(_source(), "raw")
            .detectEvent("events", lambda t: [t.derive()])
            .deliver(sink)
        )
        strata.deploy()
        assert len(sink.results) == 4

    def test_fuse_through_handle(self):
        strata = Strata()
        a = strata.addSource(_source("a"), "rawA")
        b = strata.addSource(_source("b", key="w"), "rawB")
        fused = a.fuse(b, "fused")
        assert fused == "fused"
        sink = fused.deliver()
        strata.deploy()
        assert len(sink.results) == 4

    def test_then_dispatches_by_verb_name(self):
        strata = Strata()
        h = strata.addSource(_source(), "raw")
        events = h.then("detectEvent", "events", lambda t: [t])
        assert events == "events"
        with pytest.raises(PipelineDefinitionError):
            h.then("noSuchVerb", "x")


class TestSnakeCaseAliases:
    def test_snake_name(self):
        assert snake_name("addSource") == "add_source"
        assert snake_name("detectEvent") == "detect_event"
        assert snake_name("correlateEvents") == "correlate_events"
        assert snake_name("fuse") == "fuse"

    def test_aliases_wrap_the_canonical_function(self):
        strata = Strata()
        assert strata.addSource.__func__.__wrapped__ is strata.add_source.__func__
        assert strata.detectEvent.__func__.__wrapped__ is strata.detect_event.__func__
        assert (
            strata.correlateEvents.__func__.__wrapped__
            is strata.correlate_events.__func__
        )

    def test_canonical_spellings_no_deprecation_warning(self, recwarn):
        strata = Strata()
        strata.add_source(_source(), "raw")
        strata.detect_event("raw", "events", lambda t: [t])
        assert not [w for w in recwarn if issubclass(w.category, DeprecationWarning)]

    def test_camelcase_alias_warns_once(self):
        from repro.core.handles import _warned_aliases

        _warned_aliases.discard("Strata.detectEvent")
        strata = Strata()
        strata.add_source(_source(), "raw")
        with pytest.warns(DeprecationWarning, match="Strata.detect_event"):
            strata.detectEvent("raw", "events", lambda t: [t])
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            strata.detectEvent("events", "events2", lambda t: [t])  # no rewarn

    def test_handle_aliases_work(self):
        strata = Strata()
        h = strata.add_source(_source(), "raw")
        events = h.detect_event("events", lambda t: [t])
        assert isinstance(events, StreamHandle)
        assert h.detectEvent.__func__.__wrapped__ is h.detect_event.__func__

    def test_install_snake_case_aliases_is_deprecated(self):
        from repro.core.handles import _warned_aliases

        class Thing:
            def fuse(self):
                return "ok"

        _warned_aliases.discard("install_snake_case_aliases:Thing")
        with pytest.warns(DeprecationWarning, match="install_snake_case_aliases"):
            install_snake_case_aliases(Thing, ("fuse",))
        assert Thing.fuse is Thing.__dict__["fuse"]


class TestHandleMetrics:
    def test_metrics_filtered_to_producing_operator(self):
        strata = Strata(obs=True)
        h = strata.addSource(_source(), "raw")
        events = h.detectEvent("events", lambda t: [t.derive()])
        events.deliver()
        strata.deploy(optimize=None)
        snap = events.metrics()
        operators = {s.label("operator") for s in snap}
        assert operators == {events.node}
        assert snap.value("spe_tuples_in_total", operator=events.node) == 4.0

    def test_metrics_without_obs_is_empty(self):
        strata = Strata()
        h = strata.addSource(_source(), "raw")
        h.deliver()
        strata.deploy()
        assert len(h.metrics()) == 0
