"""Recoater-streak use case: detection and correlation."""

import numpy as np
import pytest

from repro.am import BuildDataset, OTImageRenderer, make_job
from repro.am.defects import RecoaterStreak
from repro.core import Strata
from repro.core.streaks import (
    DetectStreakRows,
    StreakCorrelator,
    _contiguous_bands,
    build_streak_use_case,
)
from repro.spe import StreamTuple

PX = 250


def test_contiguous_bands():
    mask = np.array([False, True, True, False, True, False])
    assert _contiguous_bands(mask) == [(1, 3), (4, 5)]
    assert _contiguous_bands(np.array([True, True])) == [(0, 2)]
    assert _contiguous_bands(np.array([False])) == []


class TestDetectStreakRows:
    def make_tuple(self, image):
        return StreamTuple(tau=0.0, job="J", layer=0, payload={"image": image})

    def synthetic_image(self, streak_rows=(), depth=60):
        rng = np.random.default_rng(0)
        image = rng.normal(140, 5, size=(100, 100))
        image[:10] = 8.0  # powder margin
        for row in streak_rows:
            image[row] -= depth
        return image

    def test_detects_streak_band(self):
        detect = DetectStreakRows()
        events = detect(self.make_tuple(self.synthetic_image(streak_rows=(50, 51))))
        assert len(events) == 1
        assert events[0].payload["y_px"] == pytest.approx(50.5)
        assert events[0].payload["band_rows"] == 2
        assert events[0].payload["depression_gray"] > 30

    def test_clean_image_quiet(self):
        detect = DetectStreakRows()
        assert detect(self.make_tuple(self.synthetic_image())) == []

    def test_powder_rows_ignored(self):
        detect = DetectStreakRows()
        image = self.synthetic_image()
        image[:10] = 0.0  # fully dark powder rows must not look depressed
        assert detect(self.make_tuple(image)) == []

    def test_two_separate_streaks(self):
        detect = DetectStreakRows()
        events = detect(self.make_tuple(self.synthetic_image(streak_rows=(30, 70))))
        assert len(events) == 2
        ys = sorted(e.payload["y_px"] for e in events)
        assert ys == [30.0, 70.0]

    def test_depression_threshold_respected(self):
        detect = DetectStreakRows(depression_gray=50.0)
        events = detect(self.make_tuple(self.synthetic_image(streak_rows=(50,), depth=30)))
        assert events == []


class TestStreakCorrelator:
    def event(self, layer, y_px, depression=40.0):
        return StreamTuple(
            tau=float(layer), job="J", layer=layer, specimen="__whole__",
            portion="rows", payload={
                "y_px": y_px, "band_rows": 2, "depression_gray": depression,
                "melted_px": 500,
            },
        )

    def test_persistent_band_becomes_streak(self):
        correlator = StreakCorrelator(px_per_mm=1.0, min_layers=2)
        events = [self.event(layer, 100.0) for layer in range(3)]
        payload = correlator("J", 2, "__whole__", events)
        assert len(payload["streaks"]) == 1
        streak = payload["streaks"][0]
        assert streak["y_mm"] == pytest.approx(100.0)
        assert (streak["first_layer"], streak["last_layer"]) == (0, 2)

    def test_single_layer_band_suppressed(self):
        correlator = StreakCorrelator(px_per_mm=1.0, min_layers=2)
        payload = correlator("J", 0, "__whole__", [self.event(0, 100.0)])
        assert payload["streaks"] == []
        assert payload["num_band_events"] == 1

    def test_distinct_y_positions_separate(self):
        correlator = StreakCorrelator(px_per_mm=1.0, min_layers=2)
        events = [self.event(layer, 50.0) for layer in range(2)]
        events += [self.event(layer, 200.0) for layer in range(2)]
        payload = correlator("J", 1, "__whole__", events)
        ys = [s["y_mm"] for s in payload["streaks"]]
        assert ys == [50.0, 200.0]

    def test_empty_window(self):
        correlator = StreakCorrelator(px_per_mm=1.0)
        assert correlator("J", 0, "__whole__", []) == {
            "num_band_events": 0, "streaks": [],
        }


class TestEndToEnd:
    def test_detects_seeded_streaks_and_only_them(self):
        job = make_job("streaky", seed=11, defect_rate_per_stack=0.0)
        job.streaks = [
            RecoaterStreak("R0", 60.0, 0.0, 250.0, 1.0, 2, 8, -0.25),
            RecoaterStreak("R1", 190.0, 0.0, 250.0, 1.0, 5, 12, -0.3),
        ]
        dataset = BuildDataset(job, OTImageRenderer(image_px=PX, seed=11))
        records = [dataset.layer_record(i) for i in range(15)]
        pipeline = build_streak_use_case(
            iter(records), iter(records), image_px=PX,
            strata=Strata(engine_mode="sync"),
        )
        pipeline.strata.deploy()
        reported = {
            round(s["y_mm"] / 10)
            for t in pipeline.sink.results
            for s in t.payload["streaks"]
        }
        assert reported == {6, 19}

    def test_clean_build_no_streaks(self, clean_job, renderer):
        records = [BuildDataset(clean_job, renderer).layer_record(i) for i in range(8)]
        pipeline = build_streak_use_case(
            iter(records), iter(records), image_px=PX,
            strata=Strata(engine_mode="sync"),
        )
        pipeline.strata.deploy()
        assert all(t.payload["streaks"] == [] for t in pipeline.sink.results)

    def test_one_report_per_layer(self, clean_job, renderer):
        records = [BuildDataset(clean_job, renderer).layer_record(i) for i in range(5)]
        pipeline = build_streak_use_case(
            iter(records), iter(records), image_px=PX,
            strata=Strata(engine_mode="sync"),
        )
        pipeline.strata.deploy()
        # whole-plate analysis: exactly one aggregator report per layer
        assert len(pipeline.sink.results) == 5
