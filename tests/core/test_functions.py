"""Use-case user functions: isolation, labeling, correlation."""

import numpy as np
import pytest

from repro.analysis import ThermalThresholds, store_thresholds
from repro.core.functions import (
    DBSCANCorrelator,
    IsolateCells,
    IsolateSpecimens,
    LabelCell,
    LabelSpecimenCells,
)
from repro.spe import StreamTuple

TH = ThermalThresholds(100, 110, 150, 160)


def fused_tuple(image, spec_map, layer=0):
    return StreamTuple(
        tau=float(layer), job="J", layer=layer,
        payload={"image": image, "specimen_map": spec_map},
    )


@pytest.fixture()
def store_with_thresholds(kv_store):
    store_thresholds(kv_store, "J", TH)
    return kv_store


class TestIsolateSpecimens:
    def test_crops_each_specimen(self):
        image = np.zeros((100, 100), dtype=np.uint8)
        image[20:40, 10:30] = 100  # S-a
        image[60:80, 50:90] = 200  # S-b
        # plate 250mm over 100px -> 2.5 mm/px
        spec_map = {
            "S-a": (25.0, 50.0, 75.0, 100.0),
            "S-b": (125.0, 150.0, 225.0, 200.0),
        }
        outputs = IsolateSpecimens(image_px=100)(fused_tuple(image, spec_map))
        assert [t.specimen for t in outputs] == ["S-a", "S-b"]
        a, b = outputs
        assert a.payload["image"].shape == (20, 20)
        assert (a.payload["image"] == 100).all()
        assert a.payload["origin_row"] == 20
        assert a.payload["origin_col"] == 10
        assert (b.payload["image"] == 200).all()

    def test_skips_degenerate_footprints(self):
        image = np.zeros((100, 100), dtype=np.uint8)
        outputs = IsolateSpecimens(100)(fused_tuple(image, {"tiny": (0.0, 0.0, 0.1, 0.1)}))
        assert outputs == []

    def test_deterministic_specimen_order(self):
        image = np.zeros((100, 100), dtype=np.uint8)
        spec_map = {"B": (0, 0, 25, 25), "A": (50, 50, 75, 75)}
        outputs = IsolateSpecimens(100)(fused_tuple(image, spec_map))
        assert [t.specimen for t in outputs] == ["A", "B"]


class TestIsolateCells:
    def test_emits_cell_grid(self):
        t = StreamTuple(
            tau=0.0, job="J", layer=0, specimen="S",
            payload={"image": np.arange(16).reshape(4, 4), "origin_row": 8, "origin_col": 4},
        )
        iso = IsolateCells(2)
        cells = iso(t)
        assert len(cells) == 4
        assert iso.cells_emitted == 4
        assert cells[0].portion == "0:0"
        assert cells[0].payload["mean_intensity"] == pytest.approx(2.5)
        assert cells[0].payload["center_y_px"] == 9.0
        assert cells[0].payload["center_x_px"] == 5.0
        assert all(c.specimen == "S" for c in cells)

    def test_invalid_edge(self):
        with pytest.raises(ValueError):
            IsolateCells(0)


class TestLabelCell:
    def make_cell(self, mean):
        return StreamTuple(
            tau=0.0, job="J", layer=0, specimen="S", portion="0:0",
            payload={"mean_intensity": mean, "center_x_px": 1.0, "center_y_px": 1.0},
        )

    def test_forwards_only_events(self, store_with_thresholds):
        label = LabelCell(store_with_thresholds)
        assert label(self.make_cell(90))[0].payload["label"] == "very_cold"
        assert label(self.make_cell(170))[0].payload["label"] == "very_warm"
        assert label(self.make_cell(130)) == []
        assert label(self.make_cell(105)) == []  # cold but not very cold
        assert label.cells_evaluated == 4

    def test_missing_thresholds_raise(self, kv_store):
        label = LabelCell(kv_store)
        with pytest.raises(KeyError):
            label(self.make_cell(90))

    def test_threshold_cache_hits_store_once(self, store_with_thresholds):
        label = LabelCell(store_with_thresholds)
        label(self.make_cell(90))
        store_with_thresholds.delete("thresholds/J")
        label(self.make_cell(90))  # cached: no KeyError


class TestLabelSpecimenCells:
    def make_specimen_tuple(self, image):
        return StreamTuple(
            tau=0.0, job="J", layer=0, specimen="S",
            payload={"image": image, "origin_row": 10, "origin_col": 20},
        )

    def test_vectorized_equals_scalar_path(self, store_with_thresholds):
        rng = np.random.default_rng(3)
        image = rng.uniform(80, 180, size=(20, 20))
        vec = LabelSpecimenCells(store_with_thresholds, 5)
        scalar_iso = IsolateCells(5)
        scalar_label = LabelCell(store_with_thresholds)
        vec_events = vec(self.make_specimen_tuple(image))
        scalar_events = []
        for cell in scalar_iso(self.make_specimen_tuple(image)):
            scalar_events.extend(scalar_label(cell))
        assert len(vec_events) == len(scalar_events)
        key = lambda t: (t.portion, t.payload["label"])  # noqa: E731
        assert sorted(map(key, vec_events)) == sorted(map(key, scalar_events))
        assert vec.cells_evaluated == scalar_label.cells_evaluated

    def test_event_payload_fields(self, store_with_thresholds):
        image = np.full((10, 10), 170.0)  # everything very warm
        events = LabelSpecimenCells(store_with_thresholds, 5)(self.make_specimen_tuple(image))
        assert len(events) == 4
        for e in events:
            assert e.payload["label"] == "very_warm"
            assert e.payload["center_y_px"] >= 10
            assert e.payload["center_x_px"] >= 20


class TestDBSCANCorrelator:
    def make_events(self, positions, layer=0):
        return [
            StreamTuple(
                tau=float(layer), job="J", layer=layer, specimen="S", portion=f"{i}",
                payload={"center_x_px": x, "center_y_px": y, "mean_intensity": 90.0,
                         "label": "very_cold"},
            )
            for i, (x, y) in enumerate(positions)
        ]

    def correlator(self, **kwargs):
        defaults = dict(
            eps_mm=2.0, min_samples=3, px_per_mm=2.0, layer_thickness_mm=0.04,
            cell_volume_mm3=1.0,
        )
        defaults.update(kwargs)
        return DBSCANCorrelator(**defaults)

    def test_empty_events(self):
        payload = self.correlator()("J", 0, "S", [])
        assert payload == {"num_events": 0, "num_clusters": 0, "clusters": []}

    def test_close_events_cluster(self):
        events = self.make_events([(0, 0), (2, 0), (0, 2), (40, 40)])
        payload = self.correlator()("J", 0, "S", events)
        assert payload["num_events"] == 4
        assert payload["num_clusters"] == 1
        assert payload["clusters"][0]["size"] == 3

    def test_min_volume_filters(self):
        events = self.make_events([(0, 0), (2, 0), (0, 2)])
        payload = self.correlator(min_volume_mm3=100.0)("J", 0, "S", events)
        assert payload["num_clusters"] == 0

    def test_cross_layer_clustering(self):
        a = self.make_events([(0, 0), (2, 0), (0, 2)], layer=0)
        b = self.make_events([(1, 1), (3, 1)], layer=1)
        payload = self.correlator()("J", 1, "S", a + b)
        assert payload["num_clusters"] == 1
        assert payload["clusters"][0]["layers"] == (0, 1)

    def test_render_cluster_image(self):
        # px spacing of 8 = two render pixels apart (render scale 4)
        events = self.make_events([(0, 0), (8, 0), (0, 8)])
        payload = self.correlator(eps_mm=5.0, render_cluster_image=True)(
            "J", 0, "S", events
        )
        image = payload["cluster_image"]
        assert image.dtype == np.uint8
        assert (image >= 2).sum() == 3  # three clustered cells, distinct pixels
