"""E5 — Table 1 API conformance.

Verifies the framework exposes exactly the API surface of the paper's
Table 1: method names, optional parameters, and the output tuple schemas
each method promises.
"""

import inspect

import pytest

from repro.core import Strata
from repro.spe import ListSource, StreamTuple
from repro.spe.sink import CollectingSink


def make_strata():
    return Strata(engine_mode="sync")


def source_tuples():
    return [
        StreamTuple(tau=float(i), job="J", layer=i, payload={"k1": i, "k2": -i})
        for i in range(4)
    ]


class TestAPISurface:
    def test_table1_methods_exist(self):
        strata = make_strata()
        for method in ("store", "get", "addSource", "fuse", "partition",
                       "detectEvent", "correlateEvents"):
            assert callable(getattr(strata, method)), method

    def test_fuse_optional_parameters(self):
        signature = inspect.signature(Strata.fuse)
        assert signature.parameters["ws"].default is None
        assert signature.parameters["wa"].default is None
        assert signature.parameters["gb"].default is None

    def test_partition_function_optional(self):
        signature = inspect.signature(Strata.partition)
        assert signature.parameters["f"].default is None

    def test_snake_case_aliases(self):
        strata = make_strata()
        assert strata.addSource.__func__.__wrapped__ is strata.add_source.__func__
        assert strata.detectEvent.__func__.__wrapped__ is strata.detect_event.__func__
        assert (
            strata.correlateEvents.__func__.__wrapped__
            is strata.correlate_events.__func__
        )


class TestStoreGet:
    def test_roundtrip(self):
        strata = make_strata()
        strata.store("k", {"v": 1})
        assert strata.get("k") == {"v": 1}
        assert strata.get("missing") is None
        assert strata.get("missing", 7) == 7

    def test_accessible_by_user_functions(self):
        """store/get 'can be invoked by all other API methods' (Table 1)."""
        strata = make_strata()
        strata.store("factor", 3)

        def scale(t):
            return [t.derive(payload={"x": t.payload["k1"] * strata.get("factor")})]

        strata.addSource(ListSource("src", source_tuples()), "s")
        strata.detectEvent("s", "out", scale)
        sink = strata.deliver("out")
        strata.deploy()
        assert sorted(t.payload["x"] for t in sink.results) == [0, 3, 6, 9]


class TestOutputSchemas:
    def test_addsource_schema(self):
        """<tau, job, layer, [k:v...]> out of a Source."""
        strata = make_strata()
        strata.addSource(ListSource("src", source_tuples()), "s")
        sink = strata.deliver("s")
        strata.deploy()
        t = sink.results[0]
        assert isinstance(t.tau, float)
        assert t.job == "J"
        assert isinstance(t.layer, int)
        assert set(t.payload) == {"k1", "k2"}

    def test_partition_schema_adds_specimen_portion(self):
        """<tau, job, layer, specimen, portion, [k:v...]> after partition."""
        strata = make_strata()
        strata.addSource(ListSource("src", source_tuples()), "s")
        strata.partition(
            "s", "p",
            lambda t: [t.derive(specimen="S1", portion="a"),
                       t.derive(specimen="S2", portion="b")],
        )
        sink = strata.deliver("p")
        strata.deploy()
        from repro.core import is_punctuation

        data = [t for t in sink.results if not is_punctuation(t)]
        assert all(t.specimen in ("S1", "S2") for t in data)
        assert all(t.portion in ("a", "b") for t in data)

    def test_partition_defaults_without_function(self):
        """Table 1: without F, the whole tuple is one specimen/portion."""
        from repro.spe import WHOLE_PORTION, WHOLE_SPECIMEN

        strata = make_strata()
        strata.addSource(ListSource("src", source_tuples()), "s")
        strata.partition("s", "p")
        sink = strata.deliver("p")
        strata.deploy()
        from repro.core import is_punctuation

        data = [t for t in sink.results if not is_punctuation(t)]
        assert len(data) == 4
        assert all(t.specimen == WHOLE_SPECIMEN for t in data)
        assert all(t.portion == WHOLE_PORTION for t in data)

    def test_fuse_concatenates_unique_keys(self):
        strata = make_strata()
        left = [StreamTuple(tau=float(i), job="J", layer=i, payload={"a": i}) for i in range(3)]
        right = [StreamTuple(tau=float(i), job="J", layer=i, payload={"b": 10 * i}) for i in range(3)]
        strata.addSource(ListSource("L", left), "l")
        strata.addSource(ListSource("R", right), "r")
        strata.fuse("l", "r", "f")
        sink = strata.deliver("f")
        strata.deploy()
        assert len(sink.results) == 3
        for t in sink.results:
            assert set(t.payload) == {"a", "b"}
            assert t.payload["b"] == 10 * t.payload["a"]

    def test_correlate_schema_drops_portion(self):
        """<tau, job, layer, specimen, [k:v...]> out of correlateEvents."""
        strata = make_strata()
        strata.addSource(ListSource("src", source_tuples()), "s")
        strata.partition("s", "p")
        strata.detectEvent("p", "e", lambda t: [t])
        strata.correlateEvents("e", "out", 2, lambda job, layer, spec, evs: {"n": len(evs)})
        sink = strata.deliver("out")
        strata.deploy()
        assert len(sink.results) == 4  # one trigger per layer (single specimen)
        for t in sink.results:
            assert t.portion is None
            assert t.specimen is not None
            assert "n" in t.payload


class TestPipelineValidation:
    def test_unknown_stream_rejected(self):
        from repro.core import UnknownStreamError

        strata = make_strata()
        with pytest.raises(UnknownStreamError):
            strata.partition("ghost", "p")

    def test_duplicate_stream_rejected(self):
        from repro.core import PipelineDefinitionError

        strata = make_strata()
        strata.addSource(ListSource("src", []), "s")
        with pytest.raises(PipelineDefinitionError):
            strata.addSource(ListSource("src2", []), "s")

    def test_ws_without_wa_rejected(self):
        from repro.core import PipelineDefinitionError

        strata = make_strata()
        strata.addSource(ListSource("a", []), "a")
        strata.addSource(ListSource("b", []), "b")
        with pytest.raises(PipelineDefinitionError):
            strata.fuse("a", "b", "f", ws=5.0)

    def test_deploy_freezes_pipeline(self):
        from repro.core import DeploymentError

        strata = make_strata()
        strata.addSource(ListSource("src", source_tuples()), "s")
        strata.deliver("s", CollectingSink())
        strata.deploy()
        with pytest.raises(DeploymentError):
            strata.addSource(ListSource("x", []), "late")
