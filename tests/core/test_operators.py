"""STRATA operators: punctuation flow and correlate windowing."""

import pytest

from repro.core.operators import (
    CorrelateEventsOperator,
    DetectEventOperator,
    PartitionOperator,
)
from repro.core.punctuation import is_punctuation, make_punctuation
from repro.spe import WHOLE_SPECIMEN, StreamTuple


def layer_tuple(layer, job="J", specimen=None, portion=None, **payload):
    return StreamTuple(
        tau=float(layer), job=job, layer=layer, specimen=specimen, portion=portion,
        payload=payload,
    )


class TestPartitionOperator:
    def test_assigning_stage_emits_punctuation_per_specimen(self):
        op = PartitionOperator(
            "p",
            lambda t: [t.derive(specimen="S1", portion="a"),
                       t.derive(specimen="S1", portion="b"),
                       t.derive(specimen="S2", portion="a")],
        )
        out = op.process(0, layer_tuple(0, x=1))
        data = [t for t in out if not is_punctuation(t)]
        puncts = [t for t in out if is_punctuation(t)]
        assert len(data) == 3
        assert [p.specimen for p in puncts] == ["S1", "S2"]
        # punctuation comes after all data of its specimen
        assert out.index(puncts[0]) > max(out.index(d) for d in data if d.specimen == "S1")

    def test_non_assigning_stage_does_not_duplicate_punctuation(self):
        op = PartitionOperator("p", lambda t: [t.derive(portion=f"{t.portion}/x")])
        already_assigned = layer_tuple(0, specimen="S1", portion="a", x=1)
        out = op.process(0, already_assigned)
        assert all(not is_punctuation(t) for t in out)

    def test_punctuation_forwarded_unchanged(self):
        op = PartitionOperator("p", lambda t: [])
        punct = make_punctuation(layer_tuple(0), "S1")
        assert op.process(0, punct) == [punct]

    def test_empty_output_still_emits_whole_punctuation(self):
        op = PartitionOperator("p", lambda t: [])
        out = op.process(0, layer_tuple(0))
        assert len(out) == 1
        assert is_punctuation(out[0])
        assert out[0].specimen == WHOLE_SPECIMEN

    def test_defaults_fill_missing_specimen(self):
        op = PartitionOperator("p", lambda t: [t.derive(payload={})])
        out = op.process(0, layer_tuple(0))
        data = [t for t in out if not is_punctuation(t)]
        assert data[0].specimen == WHOLE_SPECIMEN


class TestDetectEventOperator:
    def test_transforms_and_counts(self):
        op = DetectEventOperator("d", lambda t: [t] if t.payload["x"] > 0 else [])
        assert op.process(0, layer_tuple(0, specimen="S", portion="p", x=1))
        assert op.process(0, layer_tuple(0, specimen="S", portion="p", x=-1))[:0] == []
        assert op.events_out == 1

    def test_forwards_punctuation(self):
        op = DetectEventOperator("d", lambda t: [t])
        punct = make_punctuation(layer_tuple(0), "S1")
        assert op.process(0, punct) == [punct]

    def test_assigns_defaults_and_punctuates_when_fed_from_source(self):
        op = DetectEventOperator("d", lambda t: [t])
        out = op.process(0, layer_tuple(0, x=1))
        data = [t for t in out if not is_punctuation(t)]
        puncts = [t for t in out if is_punctuation(t)]
        assert len(data) == 1
        assert data[0].specimen == WHOLE_SPECIMEN
        assert len(puncts) == 1

    def test_inherits_specimen_onto_outputs(self):
        op = DetectEventOperator(
            "d", lambda t: [StreamTuple(tau=t.tau, job=t.job, layer=t.layer, payload={})]
        )
        out = op.process(0, layer_tuple(0, specimen="S9", portion="q", x=1))
        assert out[0].specimen == "S9"
        assert out[0].portion == "q"


class TestCorrelateEventsOperator:
    @staticmethod
    def count_fn(job, layer, specimen, events):
        return {"n": len(events), "layers": sorted({e.layer for e in events})}

    def feed_layer(self, op, layer, specimen, num_events):
        out = []
        for i in range(num_events):
            out.extend(op.process(0, layer_tuple(layer, specimen=specimen, portion=f"c{i}", x=i)))
        out.extend(op.process(0, make_punctuation(layer_tuple(layer), specimen)))
        return out

    def test_triggers_once_per_punctuation(self):
        op = CorrelateEventsOperator("c", window_layers=3, fn=self.count_fn)
        out = self.feed_layer(op, 0, "S1", 2)
        assert len(out) == 1
        assert out[0].payload["n"] == 2
        assert op.triggers == 1

    def test_window_accumulates_l_layers(self):
        op = CorrelateEventsOperator("c", window_layers=3, fn=self.count_fn)
        results = []
        for layer in range(6):
            results.extend(self.feed_layer(op, layer, "S1", 1))
        counts = [r.payload["n"] for r in results]
        assert counts == [1, 2, 3, 3, 3, 3]  # grows, then slides at L=3
        assert results[-1].payload["layers"] == [3, 4, 5]

    def test_specimens_grouped_independently(self):
        op = CorrelateEventsOperator("c", window_layers=5, fn=self.count_fn)
        self.feed_layer(op, 0, "S1", 3)
        out = self.feed_layer(op, 0, "S2", 1)
        assert out[0].payload["n"] == 1  # S2 sees only its own events

    def test_jobs_grouped_independently(self):
        op = CorrelateEventsOperator("c", window_layers=5, fn=self.count_fn)
        op.process(0, layer_tuple(0, job="A", specimen="S", portion="p", x=1))
        out = op.process(0, make_punctuation(layer_tuple(0, job="B"), "S"))
        assert out[0].payload["n"] == 0

    def test_empty_window_still_reports(self):
        op = CorrelateEventsOperator("c", window_layers=2, fn=self.count_fn)
        out = self.feed_layer(op, 0, "S1", 0)
        assert out[0].payload["n"] == 0

    def test_fn_returning_none_suppresses_output(self):
        op = CorrelateEventsOperator("c", window_layers=2, fn=lambda *a: None)
        assert self.feed_layer(op, 0, "S1", 1) == []

    def test_fn_returning_list_emits_many(self):
        op = CorrelateEventsOperator(
            "c", window_layers=2, fn=lambda j, l, s, e: [{"i": 0}, {"i": 1}]
        )
        out = self.feed_layer(op, 0, "S1", 1)
        assert [t.payload["i"] for t in out] == [0, 1]

    def test_output_metadata(self):
        op = CorrelateEventsOperator("c", window_layers=2, fn=self.count_fn)
        out = self.feed_layer(op, 4, "S7", 1)
        t = out[0]
        assert t.layer == 4
        assert t.specimen == "S7"
        assert t.portion is None

    def test_ingest_time_spans_window_events(self):
        op = CorrelateEventsOperator("c", window_layers=5, fn=self.count_fn)
        event = layer_tuple(0, specimen="S", portion="p", x=0)
        event.ingest_time = 123.0
        op.process(0, event)
        punct = make_punctuation(layer_tuple(0), "S")
        punct.ingest_time = 1.0
        out = op.process(0, punct)
        assert out[0].ingest_time == 123.0

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            CorrelateEventsOperator("c", window_layers=0, fn=self.count_fn)

    def test_eviction_frees_old_layers(self):
        op = CorrelateEventsOperator("c", window_layers=2, fn=self.count_fn)
        for layer in range(10):
            self.feed_layer(op, layer, "S1", 1)
        per_layer = op._events[("J", "S1")]
        assert all(layer >= 8 for layer in per_layer)
