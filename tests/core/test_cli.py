"""CLI smoke tests: every subcommand runs and reports."""

import pytest

from repro.cli import build_parser, main

SMALL = ["--image-px", "250", "--layers", "6", "--cell-edge", "5", "--window", "4"]


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_quickstart(capsys):
    assert main(["quickstart", *SMALL]) == 0
    out = capsys.readouterr().out
    assert "reports=72" in out
    assert "latency" in out


def test_replay(capsys):
    assert main(["replay", *SMALL]) == 0
    out = capsys.readouterr().out
    assert "replayed 6 layers" in out
    assert "kcells/s" in out


def test_streaks(capsys):
    assert main(["streaks", *SMALL, "--layers", "12", "--streak-rate", "20"]) == 0
    out = capsys.readouterr().out
    assert "seeded" in out


def test_monitor_terminates_on_defect(capsys):
    code = main([
        "monitor", *SMALL, "--layers", "12",
        "--volume-budget", "0.5", "--time-scale", "0",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "TERMINATED" in out or "completed" in out


def test_monitor_clean_completes(capsys):
    code = main([
        "monitor", *SMALL, "--layers", "4", "--defect-rate", "0",
        "--volume-budget", "1.0", "--time-scale", "0",
    ])
    assert code == 0
    assert "completed 4/4" in capsys.readouterr().out


def test_explain_names_vectorized_chains(capsys):
    assert main(["replay", *SMALL, "--explain"]) == 0
    out = capsys.readouterr().out
    assert "vectorize=on" in out
    assert "mode=vectorized" in out


def test_no_vectorize_flag_keeps_scalar_chains(capsys):
    assert main(["replay", *SMALL, "--explain", "--no-vectorize"]) == 0
    out = capsys.readouterr().out
    assert "vectorize=off" in out
    assert "mode=scalar (vectorize=off)" in out
    assert "mode=vectorized" not in out


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["frobnicate"])


def test_quickstart_metrics_out(tmp_path, capsys):
    out = tmp_path / "m.jsonl"
    assert main(["quickstart", *SMALL, "--metrics-out", str(out)]) == 0
    from repro.obs import read_jsonl

    snapshots = read_jsonl(out)
    assert len(snapshots) == 1
    snap = snapshots[0]
    operators = {s.label("operator") for s in snap.filter("spe_tuples_in_total")}
    assert any(op and op.startswith("sink:") for op in operators)
    assert snap.filter("spe_queue_depth").samples


def test_top_prints_table_and_writes_metrics(tmp_path, capsys):
    out = tmp_path / "m.jsonl"
    code = main([
        "top", "--image-px", "120", "--layers", "4", "--cell-edge", "5",
        "--window", "4", "--refresh", "0.2", "--pace", "0",
        "--metrics-out", str(out),
    ])
    assert code == 0
    printed = capsys.readouterr().out
    assert "OPERATOR" in printed
    assert "QUEUE" in printed
    assert "MODE" in printed
    assert "vectorized" in printed  # the fused chain's live execution mode
    assert "-- final --" in printed
    assert "reports=" in printed
    from repro.obs import read_jsonl

    assert len(read_jsonl(out)) >= 1


def test_metrics_out_flag_on_every_verb():
    parser = build_parser()
    for verb in ("quickstart", "monitor", "replay", "streaks", "figures",
                 "recover", "top"):
        extra = ["--state-dir", "x"] if verb == "recover" else []
        args = parser.parse_args([verb, *extra, "--metrics-out", "m.jsonl"])
        assert args.metrics_out == "m.jsonl"
