"""CLI smoke tests: every subcommand runs and reports."""

import pytest

from repro.cli import build_parser, main

SMALL = ["--image-px", "250", "--layers", "6", "--cell-edge", "5", "--window", "4"]


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_quickstart(capsys):
    assert main(["quickstart", *SMALL]) == 0
    out = capsys.readouterr().out
    assert "reports=72" in out
    assert "latency" in out


def test_replay(capsys):
    assert main(["replay", *SMALL]) == 0
    out = capsys.readouterr().out
    assert "replayed 6 layers" in out
    assert "kcells/s" in out


def test_streaks(capsys):
    assert main(["streaks", *SMALL, "--layers", "12", "--streak-rate", "20"]) == 0
    out = capsys.readouterr().out
    assert "seeded" in out


def test_monitor_terminates_on_defect(capsys):
    code = main([
        "monitor", *SMALL, "--layers", "12",
        "--volume-budget", "0.5", "--time-scale", "0",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "TERMINATED" in out or "completed" in out


def test_monitor_clean_completes(capsys):
    code = main([
        "monitor", *SMALL, "--layers", "4", "--defect-rate", "0",
        "--volume-budget", "1.0", "--time-scale", "0",
    ])
    assert code == 0
    assert "completed 4/4" in capsys.readouterr().out


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["frobnicate"])
