"""DeployConfig: validation catalogue, dict/TOML round-trip, legacy kwargs,
and the snake_case/camelCase verb surface."""

import io
import tomllib

import pytest

from repro.core import (
    DeployConfig,
    DeployConfigError,
    RecoveryConfig,
    SinkHandle,
    Strata,
    StreamHandle,
)
from repro.core.errors import DeploymentError
from repro.core.handles import camel_name, install_camelcase_aliases
from repro.elastic import ElasticConfig
from repro.kvstore.memory import MemoryStore
from repro.recovery import CheckpointCoordinator
from repro.spe import CollectingSink, ListSource, PlanConfig
from repro.spe.tuples import StreamTuple


def records(n=6):
    return [
        StreamTuple(tau=float(i), job="j", layer=i, payload={"v": i})
        for i in range(n)
    ]


def simple_strata():
    strata = Strata(engine_mode="threaded")
    sink = CollectingSink("out")
    strata.add_source(ListSource("src", records()), "raw").deliver(sink)
    return strata, sink


# -- cross-field validation ---------------------------------------------------


class TestValidation:
    def test_plan_and_elastic_shorthands_resolve(self):
        config = DeployConfig(plan=True, elastic=True)
        assert isinstance(config.plan, PlanConfig)
        assert isinstance(config.elastic, ElasticConfig)

    def test_dist_false_normalizes_to_none(self):
        assert DeployConfig(dist=False).dist is None

    def test_elastic_requires_a_plan(self):
        with pytest.raises(DeployConfigError, match="set plan=True"):
            DeployConfig(elastic=True)

    def test_dist_excludes_recovery(self):
        with pytest.raises(DeployConfigError, match="its own crash recovery"):
            DeployConfig(dist=2, recovery=RecoveryConfig(interval_s=0.5))

    def test_dist_with_inactive_recovery_is_fine(self):
        config = DeployConfig(dist=2, recovery=RecoveryConfig())
        assert config.dist == 2

    def test_recovery_must_be_a_recovery_config(self):
        with pytest.raises(DeployConfigError, match="RecoveryConfig"):
            DeployConfig(recovery={"interval_s": 1.0})

    def test_bad_plan_shorthand_raises_deploy_config_error(self):
        with pytest.raises(DeployConfigError):
            DeployConfig(plan="yes please")

    def test_bad_elastic_shorthand_raises_deploy_config_error(self):
        with pytest.raises(DeployConfigError):
            DeployConfig(plan=True, elastic=3)

    def test_recovery_rejects_checkpointer_plus_knobs(self):
        coordinator = CheckpointCoordinator(MemoryStore())
        with pytest.raises(DeployConfigError, match="not both"):
            RecoveryConfig(checkpointer=coordinator, interval_s=0.5)

    def test_recovery_validates_knob_ranges(self):
        with pytest.raises(DeployConfigError):
            RecoveryConfig(interval_s=0.0)
        with pytest.raises(DeployConfigError):
            RecoveryConfig(retain=0)

    def test_every_violation_is_catchable_as_deployment_error(self):
        with pytest.raises(DeploymentError):
            DeployConfig(elastic=True)

    def test_start_refuses_distributed(self):
        strata, _ = simple_strata()
        with pytest.raises(DeployConfigError, match="deploy"):
            strata.start(DeployConfig(dist=2))

    def test_elastic_requires_threaded_engine(self):
        strata = Strata(engine_mode="sync")
        sink = CollectingSink("out")
        strata.add_source(ListSource("src", records()), "raw").deliver(sink)
        with pytest.raises(DeployConfigError, match="threaded"):
            strata.deploy(DeployConfig(plan=True, elastic=True))

    def test_describe_lists_configured_subsystems(self):
        config = DeployConfig(plan=True, elastic=ElasticConfig(max_parallelism=8))
        text = config.describe()
        assert "plan(" in text and "elastic(" in text
        assert DeployConfig().describe() == "defaults"


# -- dict / TOML round-trip ---------------------------------------------------


class TestRoundTrip:
    def test_from_dict_builds_sub_configs(self):
        config = DeployConfig.from_dict({
            "plan": {"parallelism": 2},
            "elastic": {"min_parallelism": 1, "max_parallelism": 8},
            "recovery": {"interval_s": 0.5, "retain": 3},
        })
        assert config.plan.parallelism == 2
        assert config.elastic.max_parallelism == 8
        assert config.recovery.retain == 3

    def test_round_trip_is_identity(self):
        config = DeployConfig.from_dict({
            "plan": {"parallelism": 2, "fusion": True},
            "elastic": {"max_parallelism": 8, "cooldown_s": 1.0},
        })
        assert DeployConfig.from_dict(config.to_dict()) == config

    def test_toml_text_round_trips(self):
        text = b"""
        [plan]
        parallelism = 2

        [elastic]
        max_parallelism = 8
        adaptive_batching = false
        """
        config = DeployConfig.from_dict(tomllib.load(io.BytesIO(text)))
        assert config.plan.parallelism == 2
        assert config.elastic.adaptive_batching is False
        assert DeployConfig.from_dict(config.to_dict()) == config

    def test_unknown_top_level_key_rejected(self):
        with pytest.raises(DeployConfigError, match="unknown deploy config key"):
            DeployConfig.from_dict({"plann": True})

    def test_unknown_nested_key_rejected(self):
        with pytest.raises(DeployConfigError, match=r"\[elastic\]"):
            DeployConfig.from_dict({
                "plan": True, "elastic": {"max_paralelism": 8},
            })

    def test_live_fields_rejected_in_tables(self):
        with pytest.raises(DeployConfigError, match="non-serializable"):
            DeployConfig.from_dict({"recovery": {"checkpointer": "x"}})

    def test_live_objects_refuse_serialization(self):
        coordinator = CheckpointCoordinator(MemoryStore())
        config = DeployConfig(recovery=RecoveryConfig(checkpointer=coordinator))
        with pytest.raises(DeployConfigError, match="live object"):
            config.to_dict()

    def test_boolean_shorthand_survives_round_trip(self):
        config = DeployConfig.from_dict({"plan": True, "elastic": True})
        data = config.to_dict()
        assert DeployConfig.from_dict(data) == config


# -- legacy keyword mapping ---------------------------------------------------


class TestLegacyKeywords:
    def test_optimize_kwarg_warns_but_works(self):
        strata, sink = simple_strata()
        with pytest.warns(DeprecationWarning, match="deprecated"):
            strata.deploy(optimize=PlanConfig(parallelism=1))
        assert len(sink.results) == len(records())

    def test_checkpointer_kwarg_maps_to_recovery_config(self):
        coordinator = CheckpointCoordinator(MemoryStore())
        strata = Strata(engine_mode="threaded")
        sink = CollectingSink("out")
        strata.add_source(
            ListSource("src", records()), "raw", checkpointable=True
        ).deliver(sink)
        with pytest.warns(DeprecationWarning):
            strata.deploy(checkpointer=coordinator)
        assert len(sink.results) == len(records())

    def test_config_plus_legacy_kwargs_rejected(self):
        strata, _ = simple_strata()
        with pytest.raises(DeployConfigError, match="not both"):
            strata.deploy(DeployConfig(), optimize=True)

    def test_unknown_kwarg_is_a_type_error(self):
        strata, _ = simple_strata()
        with pytest.raises(TypeError, match="unexpected keyword"):
            strata.deploy(paralelism=2)


# -- verb surface: snake_case canonical, camelCase alias ----------------------


class TestVerbAliases:
    def test_camel_name_mapping(self):
        assert camel_name("add_source") == "addSource"
        assert camel_name("correlate_events") == "correlateEvents"
        assert camel_name("deliver") == "deliver"

    def test_strata_aliases_wrap_canonical_functions(self):
        assert Strata.addSource.__wrapped__ is Strata.add_source
        assert Strata.detectEvent.__wrapped__ is Strata.detect_event
        assert Strata.correlateEvents.__wrapped__ is Strata.correlate_events

    def test_stream_handle_aliases_wrap_canonical_functions(self):
        assert StreamHandle.detectEvent.__wrapped__ is StreamHandle.detect_event
        assert StreamHandle.correlateEvents.__wrapped__ is StreamHandle.correlate_events

    def test_install_aliases_helper(self):
        class Thing:
            def do_work(self):
                return "done"

        install_camelcase_aliases(Thing, ("do_work",))
        assert Thing.doWork.__wrapped__ is Thing.do_work
        with pytest.warns(DeprecationWarning, match="Thing.do_work"):
            assert Thing().doWork() == "done"

    def test_both_spellings_build_the_same_pipeline(self):
        snake, snake_sink = simple_strata()
        snake.deploy()
        camel = Strata(engine_mode="threaded")
        camel_sink = CollectingSink("out")
        camel.addSource(ListSource("src", records()), "raw").deliver(camel_sink)
        camel.deploy()
        assert [t.payload for t in camel_sink.results] == [
            t.payload for t in snake_sink.results
        ]


class TestSinkHandle:
    def test_deliver_returns_sink_handle(self):
        strata = Strata(engine_mode="threaded")
        handle = (
            strata.add_source(ListSource("src", records()), "raw")
            .detect_event("events", lambda t: [t.derive()])
            .deliver()
        )
        assert isinstance(handle, SinkHandle)
        assert isinstance(handle, StreamHandle)  # still chains/str-compares
        strata.deploy()
        assert len(handle.results) == len(records())
        assert handle.latency is not None

    def test_sink_handle_wraps_explicit_sink(self):
        strata = Strata(engine_mode="threaded")
        sink = CollectingSink("mine")
        handle = strata.add_source(
            ListSource("src", records()), "raw"
        ).deliver(sink)
        strata.deploy()
        assert handle.sink is sink
        assert handle.results == sink.results


# -- the [fleet] section ------------------------------------------------------


class TestFleetSection:
    def test_from_dict_builds_fleet_config(self):
        from repro.fleet import FleetConfig

        config = DeployConfig.from_dict({
            "fleet": {"worker_budget": 12, "max_jobs_per_tenant": 3},
        })
        assert isinstance(config.fleet, FleetConfig)
        assert config.fleet.worker_budget == 12
        assert config.fleet.max_jobs_per_tenant == 3

    def test_fleet_boolean_shorthand_and_resolve(self):
        from repro.fleet import FleetConfig

        assert DeployConfig.from_dict({"fleet": True}).fleet == FleetConfig()
        assert DeployConfig.from_dict({"fleet": False}).fleet is None
        assert DeployConfig().fleet is None
        with pytest.raises(DeployConfigError):
            DeployConfig(fleet="yes")

    def test_fleet_round_trip_is_identity(self):
        data = {
            "fleet": {
                "worker_budget": 6, "max_jobs_per_tenant": 2,
                "max_parallelism_per_tenant": 4, "min_share": 1,
                "tick_s": 0.5, "host": "0.0.0.0", "port": 0,
                "default_tenant": "lab",
            },
            "plan": {"parallelism": 2},
        }
        config = DeployConfig.from_dict(data)
        assert config.to_dict()["fleet"] == data["fleet"]
        assert DeployConfig.from_dict(config.to_dict()) == config

    def test_toml_text_with_fleet_table(self):
        text = b"""
        [fleet]
        worker_budget = 16
        default_tenant = "shopfloor"

        [plan]
        parallelism = 2
        """
        config = DeployConfig.from_dict(tomllib.load(io.BytesIO(text)))
        assert config.fleet.worker_budget == 16
        assert config.fleet.default_tenant == "shopfloor"
        assert config.describe().startswith("plan(")
        assert "fleet(" in config.describe()

    def test_unknown_fleet_key_reports_dotted_path(self):
        with pytest.raises(DeployConfigError, match=r"fleet\.worker_budgt"):
            DeployConfig.from_dict({"fleet": {"worker_budgt": 8}})
        with pytest.raises(DeployConfigError, match=r"\[fleet\]"):
            DeployConfig.from_dict({"fleet": {"nope": 1}})

    def test_unknown_elastic_key_reports_dotted_path(self):
        with pytest.raises(DeployConfigError, match=r"elastic\.max_paralelism"):
            DeployConfig.from_dict({
                "plan": True, "elastic": {"max_paralelism": 8},
            })

    def test_invalid_fleet_values_raise_deploy_config_error(self):
        with pytest.raises(DeployConfigError, match="worker_budget"):
            DeployConfig.from_dict({"fleet": {"worker_budget": 0}})
