"""Raw Data Collectors and the live feed adapter."""

import threading

import numpy as np

from repro.core import LiveLayerFeed, OTImageCollector, PrintingParameterCollector


def test_ot_collector_schema(layer_records):
    tuples = list(OTImageCollector(iter(layer_records)))
    assert len(tuples) == len(layer_records)
    for t, record in zip(tuples, layer_records):
        assert t.tau == float(record.layer)  # event time = layer clock
        assert t.job == record.job_id
        assert t.layer == record.layer
        assert isinstance(t.payload["image"], np.ndarray)


def test_pp_collector_schema(layer_records):
    tuples = list(PrintingParameterCollector(iter(layer_records)))
    for t, record in zip(tuples, layer_records):
        assert t.tau == float(record.layer)
        assert "specimen_map" in t.payload
        assert t.payload["z_mm"] == record.parameters["z_mm"]


def test_collectors_agree_on_tau(layer_records):
    """fuse without WS/WA needs identical tau per layer on both sources."""
    ot = list(OTImageCollector(iter(layer_records)))
    pp = list(PrintingParameterCollector(iter(layer_records)))
    assert [t.tau for t in ot] == [t.tau for t in pp]


def test_live_feed_fanout(layer_records):
    feed = LiveLayerFeed()
    records_a = feed.records()
    records_b = feed.records()
    got_a, got_b = [], []

    thread_a = threading.Thread(target=lambda: got_a.extend(records_a))
    thread_b = threading.Thread(target=lambda: got_b.extend(records_b))
    thread_a.start()
    thread_b.start()
    for record in layer_records[:3]:
        feed.push(record)
    feed.close()
    thread_a.join(timeout=5)
    thread_b.join(timeout=5)
    assert [r.layer for r in got_a] == [0, 1, 2]
    assert [r.layer for r in got_b] == [0, 1, 2]


def test_collectors_use_machine_stamp(layer_records):
    import dataclasses

    stamped = [
        dataclasses.replace(r, completed_at=1000.0 + r.layer) for r in layer_records[:3]
    ]
    ot = list(OTImageCollector(iter(stamped)))
    pp = list(PrintingParameterCollector(iter(stamped)))
    assert [t.tau for t in ot] == [1000.0, 1001.0, 1002.0]
    assert [t.tau for t in ot] == [t.tau for t in pp]
