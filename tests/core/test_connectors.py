"""Pub/sub connectors bridging STRATA modules."""

import threading

from repro.core.connectors import (
    EOS_SENTINEL,
    PubSubReaderSource,
    PubSubWriterSink,
    topic_for_stream,
)
from repro.pubsub import Broker, Consumer, Producer
from repro.spe import StreamTuple


def make_tuple(i):
    return StreamTuple(tau=float(i), job="J", layer=i, payload={"x": i})


def test_topic_naming():
    assert topic_for_stream("OT&pp") == "strata.OT&pp"


def test_writer_publishes_tuples_and_sentinel():
    broker = Broker()
    writer = PubSubWriterSink("w", broker, "strata.s")
    for i in range(3):
        writer.accept(make_tuple(i))
    writer.on_close()
    consumer = Consumer(broker, "probe", ["strata.s"])
    values = [m.value for m in consumer.poll()]
    assert [v.layer for v in values[:3]] == [0, 1, 2]
    assert values[3] == EOS_SENTINEL


def test_reader_stops_at_sentinel():
    broker = Broker()
    writer = PubSubWriterSink("w", broker, "strata.s")
    for i in range(5):
        writer.accept(make_tuple(i))
    writer.on_close()
    reader = PubSubReaderSource("r", broker, "strata.s")
    got = list(reader)
    assert [t.layer for t in got] == [0, 1, 2, 3, 4]


def test_reader_blocks_until_data_arrives():
    broker = Broker()
    broker.ensure_topic("strata.s")
    reader = PubSubReaderSource("r", broker, "strata.s", poll_timeout=0.02)
    got = []

    def drain():
        got.extend(reader)

    thread = threading.Thread(target=drain)
    thread.start()
    writer = PubSubWriterSink("w", broker, "strata.s")
    writer.accept(make_tuple(0))
    writer.on_close()
    thread.join(timeout=5)
    assert not thread.is_alive()
    assert len(got) == 1


def test_ingest_time_preserved_across_hop():
    """Latency must span the connector hop (paper's latency definition)."""
    broker = Broker()
    writer = PubSubWriterSink("w", broker, "strata.s")
    t = make_tuple(0)
    t.ingest_time = 42.5
    writer.accept(t)
    writer.on_close()
    reader = PubSubReaderSource("r", broker, "strata.s")
    got = list(reader)
    assert got[0].ingest_time == 42.5


def test_two_readers_with_distinct_groups_both_replay():
    broker = Broker()
    writer = PubSubWriterSink("w", broker, "strata.s")
    writer.accept(make_tuple(0))
    writer.on_close()
    a = list(PubSubReaderSource("r1", broker, "strata.s"))
    b = list(PubSubReaderSource("r2", broker, "strata.s"))
    assert len(a) == len(b) == 1


def test_eos_broadcast_reaches_every_partition():
    broker = Broker()
    broker.create_topic("strata.s", partitions=3)
    writer = PubSubWriterSink("w", broker, "strata.s")
    for i in range(6):
        writer.accept(make_tuple(i))
    writer.on_close()
    for partition in range(3):
        log = broker.topic("strata.s").log(partition)
        values = [m.value for m in log.read(0)]
        assert values.count(EOS_SENTINEL) == 1  # one sentinel per partition
        assert values[-1] == EOS_SENTINEL


def test_reader_drains_multi_partition_topic():
    broker = Broker()
    broker.create_topic("strata.s", partitions=3)
    writer = PubSubWriterSink("w", broker, "strata.s")
    for i in range(9):
        writer.accept(make_tuple(i))
    writer.on_close()
    reader = PubSubReaderSource("r", broker, "strata.s")
    got = list(reader)  # would hang forever if any partition lacked its EOS
    assert sorted(t.layer for t in got) == list(range(9))


def test_reader_waits_for_eos_on_every_partition():
    broker = Broker()
    broker.create_topic("strata.s", partitions=2)
    producer = Producer(broker)
    producer.send("strata.s", make_tuple(0), partition=0)
    producer.send("strata.s", EOS_SENTINEL, partition=0)
    reader = PubSubReaderSource("r", broker, "strata.s", poll_timeout=0.01)
    got = []

    def drain():
        got.extend(reader)

    thread = threading.Thread(target=drain)
    thread.start()
    thread.join(timeout=0.3)
    assert thread.is_alive()  # partition 1 has no sentinel yet
    producer.send("strata.s", make_tuple(1), partition=1)
    producer.send("strata.s", EOS_SENTINEL, partition=1)
    thread.join(timeout=5)
    assert not thread.is_alive()
    assert sorted(t.layer for t in got) == [0, 1]


def test_dedup_reader_suppresses_replayed_content():
    broker = Broker()
    writer = PubSubWriterSink("w", broker, "strata.s")
    for _ in range(2):  # publish the same logical records twice
        for i in range(3):
            writer.accept(make_tuple(i))
    writer.on_close()
    reader = PubSubReaderSource("r", broker, "strata.s", dedup=True)
    got = list(reader)
    assert [t.layer for t in got] == [0, 1, 2]
    assert reader.duplicates_suppressed == 3
    plain = PubSubReaderSource("r2", broker, "strata.s")
    assert len(list(plain)) == 6  # without dedup, the replay is visible
    assert plain.duplicates_suppressed == 0


def test_reader_rebind_keeps_group_and_overrides_flags():
    first = Broker()
    reader = PubSubReaderSource("r", first, "strata.s", group="g")
    second = Broker()
    writer = PubSubWriterSink("w", second, "strata.s")
    writer.accept(make_tuple(0))
    writer.accept(make_tuple(0))  # duplicate content
    writer.on_close()
    reader.rebind(second, auto_commit=False, dedup=True)
    assert reader.group == "g"
    assert [t.layer for t in list(reader)] == [0]
    assert reader.duplicates_suppressed == 1
    # no commit happened: the group can replay from earliest on the broker
    assert second.committed("g", "strata.s", 0) is None
