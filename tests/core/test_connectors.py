"""Pub/sub connectors bridging STRATA modules."""

import threading

from repro.core.connectors import (
    EOS_SENTINEL,
    PubSubReaderSource,
    PubSubWriterSink,
    topic_for_stream,
)
from repro.pubsub import Broker, Consumer
from repro.spe import StreamTuple


def make_tuple(i):
    return StreamTuple(tau=float(i), job="J", layer=i, payload={"x": i})


def test_topic_naming():
    assert topic_for_stream("OT&pp") == "strata.OT&pp"


def test_writer_publishes_tuples_and_sentinel():
    broker = Broker()
    writer = PubSubWriterSink("w", broker, "strata.s")
    for i in range(3):
        writer.accept(make_tuple(i))
    writer.on_close()
    consumer = Consumer(broker, "probe", ["strata.s"])
    values = [m.value for m in consumer.poll()]
    assert [v.layer for v in values[:3]] == [0, 1, 2]
    assert values[3] == EOS_SENTINEL


def test_reader_stops_at_sentinel():
    broker = Broker()
    writer = PubSubWriterSink("w", broker, "strata.s")
    for i in range(5):
        writer.accept(make_tuple(i))
    writer.on_close()
    reader = PubSubReaderSource("r", broker, "strata.s")
    got = list(reader)
    assert [t.layer for t in got] == [0, 1, 2, 3, 4]


def test_reader_blocks_until_data_arrives():
    broker = Broker()
    broker.ensure_topic("strata.s")
    reader = PubSubReaderSource("r", broker, "strata.s", poll_timeout=0.02)
    got = []

    def drain():
        got.extend(reader)

    thread = threading.Thread(target=drain)
    thread.start()
    writer = PubSubWriterSink("w", broker, "strata.s")
    writer.accept(make_tuple(0))
    writer.on_close()
    thread.join(timeout=5)
    assert not thread.is_alive()
    assert len(got) == 1


def test_ingest_time_preserved_across_hop():
    """Latency must span the connector hop (paper's latency definition)."""
    broker = Broker()
    writer = PubSubWriterSink("w", broker, "strata.s")
    t = make_tuple(0)
    t.ingest_time = 42.5
    writer.accept(t)
    writer.on_close()
    reader = PubSubReaderSource("r", broker, "strata.s")
    got = list(reader)
    assert got[0].ingest_time == 42.5


def test_two_readers_with_distinct_groups_both_replay():
    broker = Broker()
    writer = PubSubWriterSink("w", broker, "strata.s")
    writer.accept(make_tuple(0))
    writer.on_close()
    a = list(PubSubReaderSource("r1", broker, "strata.s"))
    b = list(PubSubReaderSource("r2", broker, "strata.s"))
    assert len(a) == len(b) == 1
