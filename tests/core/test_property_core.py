"""Property-based invariants of the STRATA operator layer."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.core.operators import (
    CorrelateEventsOperator,
    DetectEventOperator,
    PartitionOperator,
)
from repro.core.punctuation import is_punctuation, make_punctuation
from repro.spe import StreamTuple

specimen_names = st.sampled_from(["S0", "S1", "S2"])
# one build: per layer, a mapping specimen -> number of detected events
layer_plans = st.lists(
    st.dictionaries(specimen_names, st.integers(min_value=0, max_value=4), max_size=3),
    min_size=1,
    max_size=12,
)


def drive_correlate(plans, window):
    """Feed events + punctuation per layer; mirror with a dict model."""
    recorded: dict[tuple[int, str], list[int]] = {}
    op = CorrelateEventsOperator(
        "c", window_layers=window,
        fn=lambda job, layer, spec, events: {
            "xs": sorted(e.payload["x"] for e in events)
        },
    )
    model: dict[str, dict[int, list[int]]] = {}
    outputs = []
    counter = 0
    for layer, plan in enumerate(plans):
        for specimen in sorted(plan):
            for _ in range(plan[specimen]):
                event = StreamTuple(
                    tau=float(layer), job="J", layer=layer,
                    specimen=specimen, portion="p", payload={"x": counter},
                )
                model.setdefault(specimen, {}).setdefault(layer, []).append(counter)
                op.process(0, event)
                counter += 1
        # every specimen gets a punctuation per layer (as partition does)
        for specimen in ("S0", "S1", "S2"):
            template = StreamTuple(tau=float(layer), job="J", layer=layer, payload={})
            outs = op.process(0, make_punctuation(template, specimen))
            for out in outs:
                expected = sorted(
                    x
                    for l in range(max(0, layer - window + 1), layer + 1)
                    for x in model.get(specimen, {}).get(l, [])
                )
                recorded[(layer, specimen)] = (out.payload["xs"], expected)
            outputs.extend(outs)
    return recorded, outputs


@given(plans=layer_plans, window=st.integers(min_value=1, max_value=5))
@settings(max_examples=60, deadline=None)
def test_correlate_window_matches_model(plans, window):
    recorded, outputs = drive_correlate(plans, window)
    for (layer, specimen), (got, expected) in recorded.items():
        assert got == expected, (layer, specimen)
    # exactly one trigger per (layer, specimen) punctuation
    assert len(outputs) == len(plans) * 3


@given(
    layers=st.lists(st.integers(min_value=0, max_value=20), min_size=1, max_size=15),
    fanouts=st.lists(st.integers(min_value=0, max_value=4), min_size=1, max_size=15),
)
@settings(max_examples=60, deadline=None)
def test_partition_punctuation_always_trails_its_data(layers, fanouts):
    op = PartitionOperator(
        "p",
        lambda t: [
            t.derive(specimen=f"S{i}", portion="p")
            for i in range(t.payload["fanout"])
        ],
    )
    for layer, fanout in zip(layers, fanouts):
        t = StreamTuple(tau=float(layer), job="J", layer=layer, payload={"fanout": fanout})
        out = op.process(0, t)
        seen_punct: set[str] = set()
        for item in out:
            if is_punctuation(item):
                seen_punct.add(item.specimen)
            else:
                # data for a specimen must never follow its punctuation
                assert item.specimen not in seen_punct
        data_specimens = {i.specimen for i in out if not is_punctuation(i)}
        punct_specimens = {i.specimen for i in out if is_punctuation(i)}
        if fanout == 0:
            from repro.spe import WHOLE_SPECIMEN

            assert punct_specimens == {WHOLE_SPECIMEN}
        else:
            assert punct_specimens == data_specimens


@given(
    values=st.lists(st.integers(min_value=-100, max_value=100), min_size=1, max_size=40),
)
@settings(max_examples=40, deadline=None)
def test_detect_event_preserves_count_and_forwards_punctuation(values):
    op = DetectEventOperator(
        "d", lambda t: [t] if t.payload["x"] > 0 else []
    )
    forwarded = 0
    for i, value in enumerate(values):
        t = StreamTuple(
            tau=float(i), job="J", layer=i, specimen="S", portion="p",
            payload={"x": value},
        )
        forwarded += len(op.process(0, t))
    assert forwarded == sum(1 for v in values if v > 0)
    assert op.events_out == forwarded
    punct = make_punctuation(StreamTuple(tau=0.0, job="J", layer=0, payload={}), "S")
    assert op.process(0, punct) == [punct]


# -- DeployConfig [fleet] round-trip ------------------------------------------

fleet_tables = st.fixed_dictionaries(
    {},
    optional={
        "max_jobs_per_tenant": st.integers(min_value=1, max_value=16),
        "max_parallelism_per_tenant": st.integers(min_value=1, max_value=64),
        "worker_budget": st.integers(min_value=1, max_value=64),
        "min_share": st.just(1),
        "tick_s": st.floats(min_value=0.01, max_value=10.0,
                            allow_nan=False, allow_infinity=False),
        "host": st.sampled_from(["127.0.0.1", "0.0.0.0", "::1"]),
        "port": st.integers(min_value=0, max_value=65535),
        "default_tenant": st.text(
            alphabet="abcdefghijklmnopqrstuvwxyz-", min_size=1, max_size=12
        ),
    },
)


@given(table=fleet_tables)
@settings(max_examples=60, deadline=None)
def test_fleet_table_round_trips_exactly(table):
    """to_dict(from_dict(x)) == x for every valid [fleet] table."""
    from repro.core import DeployConfig

    data = {"fleet": table} if table else {"fleet": True}
    config = DeployConfig.from_dict(data)
    serialized = config.to_dict()
    if table:
        assert serialized["fleet"] == {**table, **serialized["fleet"]}
        for key, value in table.items():
            assert serialized["fleet"][key] == value
    assert DeployConfig.from_dict(serialized) == config
    assert DeployConfig.from_dict(serialized).to_dict() == serialized
