"""Exporters: golden Prometheus text, escaping, bucket monotonicity, JSONL."""

import io
import math

import pytest

from repro.obs import (
    MetricsRegistry,
    MetricsSnapshot,
    Sample,
    escape_label_value,
    read_jsonl,
    snapshot_from_dict,
    snapshot_to_dict,
    to_json_line,
    to_prometheus,
    write_jsonl,
)

GOLDEN = """\
# HELP spe_tuples_in_total tuples consumed per scheduler node
# TYPE spe_tuples_in_total counter
spe_tuples_in_total{kind="operator",operator="fuse:OT&pp"} 12
spe_tuples_in_total{kind="sink",operator="sink:expert:0"} 6
# TYPE spe_queue_depth gauge
spe_queue_depth{stream="source:OT->fuse:OT&pp"} 3
# TYPE spe_processing_seconds histogram
spe_processing_seconds_bucket{le="0.001"} 4
spe_processing_seconds_bucket{le="0.1"} 11
spe_processing_seconds_bucket{le="+Inf"} 12
spe_processing_seconds_sum 0.25
spe_processing_seconds_count 12
"""


def _golden_snapshot() -> MetricsSnapshot:
    return MetricsSnapshot(
        wall_time=1700000000.0,
        samples=[
            Sample(
                "spe_tuples_in_total",
                (("kind", "operator"), ("operator", "fuse:OT&pp")),
                12.0,
                "counter",
            ),
            Sample(
                "spe_tuples_in_total",
                (("kind", "sink"), ("operator", "sink:expert:0")),
                6.0,
                "counter",
            ),
            Sample(
                "spe_queue_depth", (("stream", "source:OT->fuse:OT&pp"),), 3.0
            ),
            Sample("spe_processing_seconds_bucket", (("le", "0.001"),), 4.0,
                   "histogram_bucket"),
            Sample("spe_processing_seconds_bucket", (("le", "0.1"),), 11.0,
                   "histogram_bucket"),
            Sample("spe_processing_seconds_bucket", (("le", "+Inf"),), 12.0,
                   "histogram_bucket"),
            Sample("spe_processing_seconds_sum", (), 0.25, "histogram_sum"),
            Sample("spe_processing_seconds_count", (), 12.0, "histogram_count"),
        ],
    )


def _parse_prometheus(text: str):
    """types per family + list of (name, labels dict, value) samples."""
    types: dict[str, str] = {}
    samples = []
    for line in text.splitlines():
        if line.startswith("# TYPE "):
            _, _, family, kind = line.split(" ", 3)
            types[family] = kind
        elif line and not line.startswith("#"):
            metric, _, raw = line.rpartition(" ")
            labels = {}
            if "{" in metric:
                name, _, rest = metric.partition("{")
                for pair in rest.rstrip("}").split('","'):
                    key, _, value = pair.partition('="')
                    labels[key] = value.rstrip('"')
            else:
                name = metric
            samples.append((name, labels, float(raw)))
    return types, samples


class TestPrometheus:
    def test_golden_output(self):
        registry = MetricsRegistry()
        registry.set_help("spe_tuples_in_total", "tuples consumed per scheduler node")
        assert to_prometheus(_golden_snapshot(), registry) == GOLDEN

    def test_help_line_omitted_without_registry(self):
        text = to_prometheus(_golden_snapshot())
        assert "# HELP" not in text
        assert "# TYPE spe_tuples_in_total counter" in text

    def test_label_escaping_round_trips(self):
        nasty = 'q"uo\\te\nnewline'
        snap = MetricsSnapshot(
            wall_time=0.0, samples=[Sample("m", (("stream", nasty),), 1.0)]
        )
        text = to_prometheus(snap)
        assert '\\"' in text and "\\n" in text and "\\\\" in text
        # the rendered line must stay a single physical line
        [line] = [l for l in text.splitlines() if l.startswith("m{")]
        assert line == 'm{stream="q\\"uo\\\\te\\nnewline"} 1'

    def test_escape_label_value_order(self):
        # backslash first, else the escapes' own backslashes double-escape
        assert escape_label_value("\\n") == "\\\\n"
        assert escape_label_value("\n") == "\\n"

    def test_bucket_monotonicity_from_live_registry(self):
        registry = MetricsRegistry()
        h = registry.histogram("lat", buckets=(0.01, 0.1, 1.0))
        for v in (0.005, 0.05, 0.05, 0.5, 5.0):
            h.observe(v)
        types, samples = _parse_prometheus(to_prometheus(registry.snapshot()))
        assert types["lat"] == "histogram"
        buckets = [(labels["le"], value) for name, labels, value in samples
                   if name == "lat_bucket"]
        values = [value for _, value in buckets]
        assert values == sorted(values), "cumulative buckets must be monotone"
        assert buckets[-1][0] == "+Inf"
        count = next(v for n, _, v in samples if n == "lat_count")
        assert buckets[-1][1] == count

    def test_type_header_precedes_family_samples_once(self):
        text = to_prometheus(_golden_snapshot())
        assert text.count("# TYPE spe_processing_seconds histogram") == 1
        lines = text.splitlines()
        type_at = lines.index("# TYPE spe_processing_seconds histogram")
        first_sample = next(
            i for i, l in enumerate(lines)
            if l.startswith("spe_processing_seconds")
        )
        assert type_at < first_sample


class TestJsonLines:
    def test_round_trip_preserves_everything(self):
        snap = _golden_snapshot()
        back = snapshot_from_dict(snapshot_to_dict(snap))
        assert back.wall_time == snap.wall_time
        assert back.samples == snap.samples

    def test_round_trip_through_text(self):
        import json

        snap = _golden_snapshot()
        back = snapshot_from_dict(json.loads(to_json_line(snap)))
        assert back.samples == snap.samples

    def test_write_read_jsonl_appends(self, tmp_path):
        path = tmp_path / "m.jsonl"
        write_jsonl(path, _golden_snapshot())
        write_jsonl(path, _golden_snapshot())
        snapshots = read_jsonl(path)
        assert len(snapshots) == 2
        assert snapshots[0].value("spe_queue_depth",
                                  stream="source:OT->fuse:OT&pp") == 3.0

    def test_write_jsonl_to_filelike(self):
        buf = io.StringIO()
        write_jsonl(buf, _golden_snapshot())
        assert buf.getvalue().endswith("\n")
        assert snapshot_from_dict(
            __import__("json").loads(buf.getvalue())
        ).wall_time == 1700000000.0

    def test_non_finite_values_survive(self):
        snap = MetricsSnapshot(
            wall_time=0.0, samples=[Sample("g", (), float("inf"))]
        )
        back = snapshot_from_dict(snapshot_to_dict(snap))
        assert math.isinf(back.samples[0].value)
