"""QoS watchdog: deadline checks, alert dedup, metrics export."""

import pytest

from repro.obs import MetricsRegistry, QoSWatchdog, RECOAT_GAP_SECONDS
from repro.obs.watchdog import DEADLINE_CATEGORY, PREDICTIVE_CATEGORY
from repro.spe.tuples import StreamTuple


def _result(job="j", layer=0, specimen="S00"):
    return StreamTuple(
        tau=float(layer), job=job, layer=layer, specimen=specimen, payload={}
    )


class TestDeadline:
    def test_default_deadline_is_the_recoat_gap(self):
        assert QoSWatchdog().deadline_s == RECOAT_GAP_SECONDS == 3.0

    def test_on_time_results_raise_no_alert(self):
        dog = QoSWatchdog(deadline_s=1.0)
        dog.observe(_result(), 0.5, "sink")
        assert not dog.alerts
        assert dog.violations == 0
        assert dog.violation_rate == 0.0

    def test_late_result_alerts_once_per_layer_and_sink(self):
        alerts = []
        dog = QoSWatchdog(deadline_s=1.0, on_alert=alerts.append)
        dog.observe(_result(layer=5, specimen="S00"), 2.0, "sink")
        dog.observe(_result(layer=5, specimen="S01"), 2.5, "sink")
        dog.observe(_result(layer=5), 2.0, "other-sink")
        dog.observe(_result(layer=6), 2.0, "sink")
        assert dog.violations == 4
        assert len(alerts) == 3  # (layer5,sink) deduped, other pairs fire
        assert alerts[0].layer == 5 and alerts[0].sink == "sink"
        assert "layer=5" in alerts[0].format()

    def test_invalid_deadline_rejected(self):
        with pytest.raises(ValueError):
            QoSWatchdog(deadline_s=0)


class TestLayerTracking:
    def test_worst_latency_per_layer(self):
        dog = QoSWatchdog(deadline_s=10.0)
        dog.observe(_result(layer=1), 0.2, "s")
        dog.observe(_result(layer=1), 0.9, "s")
        dog.observe(_result(layer=2), 0.4, "s")
        latencies = dog.layer_latencies()
        assert latencies[("j", 1)].worst_s == 0.9
        assert latencies[("j", 1)].results == 2
        assert dog.worst_latency_s() == 0.9
        assert dog.violated_layers() == []

    def test_violated_layers_sorted(self):
        dog = QoSWatchdog(deadline_s=1.0)
        dog.observe(_result(layer=9), 5.0, "s")
        dog.observe(_result(layer=2), 5.0, "s")
        dog.observe(_result(layer=4), 0.5, "s")
        assert dog.violated_layers() == [("j", 2), ("j", 9)]

    def test_layer_cap_evicts_oldest(self):
        dog = QoSWatchdog(deadline_s=1.0, max_layers=2)
        for layer in range(3):
            dog.observe(_result(layer=layer), 0.1, "s")
        assert sorted(k[1] for k in dog.layer_latencies()) == [1, 2]


class TestLegacyDeadlinePathUnchanged:
    """Regression: the predictive category must not perturb the original
    deadline path — same alerts, same dedup keys, same counters."""

    def test_deadline_alerts_default_to_deadline_category(self):
        dog = QoSWatchdog(deadline_s=1.0)
        dog.observe(_result(layer=5), 2.0, "sink")
        (alert,) = dog.alerts
        assert alert.category == DEADLINE_CATEGORY
        assert alert.lead_time_s is None
        assert alert.predicted_value is None
        assert alert.threshold is None
        assert "QoS violation" in alert.format()

    def test_predictive_alerts_do_not_alias_deadline_dedup(self):
        """Same (job, layer, name) in both categories -> both alerts fire."""
        dog = QoSWatchdog(deadline_s=1.0)
        dog.observe_forecast("j", 5, "S00", "sink", 120.0, 100.0, 3.0)
        dog.observe(_result(layer=5), 2.0, "sink")
        dog.observe_forecast("j", 5, "S00", "sink", 120.0, 100.0, 3.0)
        categories = sorted(a.category for a in dog.alerts)
        assert categories == [DEADLINE_CATEGORY, PREDICTIVE_CATEGORY]
        assert dog.violations == 1
        assert dog.predictive_events == 2

    def test_predictive_events_do_not_count_as_violations(self):
        dog = QoSWatchdog(deadline_s=1.0)
        dog.observe_forecast("j", 5, "S00", "est", 120.0, 100.0, 3.0)
        assert dog.violations == 0
        assert dog.violation_rate == 0.0
        assert dog.violated_layers() == []


class TestPredictiveAlerts:
    def test_alert_carries_forecast_metadata(self):
        seen = []
        dog = QoSWatchdog(on_alert=seen.append)
        alert = dog.observe_forecast(
            "j", 7, "region-0-1", "thermal-estimator", 131.5, 118.0, 3.0
        )
        assert alert is not None and seen == [alert]
        assert alert.category == PREDICTIVE_CATEGORY
        assert alert.job == "j" and alert.layer == 7
        assert alert.specimen == "region-0-1"
        assert alert.sink == "thermal-estimator"
        assert alert.predicted_value == 131.5
        assert alert.threshold == 118.0
        assert alert.lead_time_s == 3.0
        assert alert.latency_s == 0.0  # nothing is late yet
        text = alert.format()
        assert "predictive" in text and "131.50" in text and "3.0s" in text

    def test_dedup_per_job_layer_source(self):
        dog = QoSWatchdog()
        assert dog.observe_forecast("j", 7, "S00", "est", 120.0, 100.0, 3.0)
        assert dog.observe_forecast("j", 7, "S01", "est", 125.0, 100.0, 3.0) is None
        assert dog.observe_forecast("j", 8, "S00", "est", 120.0, 100.0, 3.0)
        assert dog.observe_forecast("j", 7, "S00", "other", 120.0, 100.0, 3.0)
        assert dog.predictive_events == 4
        assert len(dog.predictive_alerts()) == 3

    def test_predictive_alerts_query_filters_by_category(self):
        dog = QoSWatchdog(deadline_s=1.0)
        dog.observe(_result(layer=1), 2.0, "sink")
        dog.observe_forecast("j", 2, "S00", "est", 120.0, 100.0, 3.0)
        predictive = dog.predictive_alerts()
        assert [a.layer for a in predictive] == [2]
        assert len(dog.alerts) == 2

    def test_predictive_counter_exported_as_metric(self):
        registry = MetricsRegistry()
        dog = QoSWatchdog()
        dog.attach_metrics(registry)
        dog.observe_forecast("j", 1, "S00", "est", 120.0, 100.0, 3.0)
        dog.observe_forecast("j", 1, "S00", "est", 120.0, 100.0, 3.0)
        snap = registry.snapshot()
        assert snap.value("strata_qos_predictive_alerts_total") == 2.0
        assert snap.value("strata_qos_violations_total") == 0.0


class TestMetricsExport:
    def test_attached_registry_tracks_violations(self):
        registry = MetricsRegistry()
        dog = QoSWatchdog(deadline_s=1.0)
        dog.attach_metrics(registry)
        dog.observe(_result(layer=1), 4.0, "s")
        dog.observe(_result(layer=2), 0.3, "s")
        snap = registry.snapshot()
        assert snap.value("strata_qos_deadline_seconds") == 1.0
        assert snap.value("strata_qos_violations_total") == 1.0
        assert snap.value("strata_qos_worst_latency_seconds") == 4.0
        assert snap.value("strata_qos_layers_violated") == 1.0
