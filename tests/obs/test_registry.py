"""Metric primitives and registry semantics."""

import threading

import pytest

from repro.obs import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    MetricsSnapshot,
    Sample,
    histogram_samples,
)


class TestInstruments:
    def test_counter_only_goes_up(self):
        registry = MetricsRegistry()
        c = registry.counter("requests_total")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_gauge_set_inc_dec(self):
        g = MetricsRegistry().gauge("depth")
        g.set(10)
        g.dec(3)
        g.inc(1)
        assert g.value == 8.0

    def test_callback_gauge_reads_live(self):
        box = {"v": 1.0}
        g = MetricsRegistry().gauge("live", fn=lambda: box["v"])
        assert g.value == 1.0
        box["v"] = 7.0
        assert g.value == 7.0

    def test_histogram_buckets_cumulative(self):
        h = Histogram("t", (), buckets=(0.1, 1.0, 10.0))
        for v in (0.05, 0.5, 0.5, 5.0, 50.0):
            h.observe(v)
        samples = {(s.name, s.label("le")): s.value for s in h.samples()}
        assert samples[("t_bucket", "0.1")] == 1
        assert samples[("t_bucket", "1")] == 3
        assert samples[("t_bucket", "10")] == 4
        assert samples[("t_bucket", "+Inf")] == 5
        assert samples[("t_count", None)] == 5
        assert samples[("t_sum", None)] == pytest.approx(56.05)

    def test_histogram_requires_buckets(self):
        with pytest.raises(ValueError):
            Histogram("t", (), buckets=())


class TestRegistry:
    def test_same_name_and_labels_dedup(self):
        registry = MetricsRegistry()
        a = registry.counter("hits", labels={"op": "x"})
        b = registry.counter("hits", labels={"op": "x"})
        c = registry.counter("hits", labels={"op": "y"})
        assert a is b
        assert a is not c

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("thing")
        with pytest.raises(TypeError):
            registry.gauge("thing")
        with pytest.raises(TypeError):
            registry.histogram("thing")

    def test_collector_runs_at_snapshot_time(self):
        registry = MetricsRegistry()
        calls = []

        def collect():
            calls.append(1)
            return [Sample("lazy", (), float(len(calls)))]

        registry.register_collector("lazy", collect)
        assert not calls
        assert registry.snapshot().value("lazy") == 1.0
        assert registry.snapshot().value("lazy") == 2.0
        registry.unregister_collector("lazy")
        assert registry.snapshot().value("lazy") is None

    def test_help_resolves_histogram_suffixes(self):
        registry = MetricsRegistry()
        registry.set_help("lat", "latency dist")
        assert registry.help_for("lat_bucket") == "latency dist"
        assert registry.help_for("lat_sum") == "latency dist"
        assert registry.help_for("lat") == "latency dist"
        assert registry.help_for("other") == ""

    def test_concurrent_counter_increments(self):
        c = MetricsRegistry().counter("n")

        def work():
            for _ in range(1000):
                c.inc()

        threads = [threading.Thread(target=work) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value == 8000


class TestSnapshot:
    def _snap(self):
        return MetricsSnapshot(
            wall_time=1.0,
            samples=[
                Sample("in_total", (("op", "a"),), 5.0, "counter"),
                Sample("in_total", (("op", "b"),), 7.0, "counter"),
                Sample("depth", (("stream", "q1"),), 3.0),
            ],
        )

    def test_filter_by_name_prefix_and_labels(self):
        snap = self._snap()
        assert len(snap.filter("in_total")) == 2
        assert len(snap.filter(op="a")) == 1
        assert len(snap.filter("in_total", op="b")) == 1
        assert snap.filter("in_total", op="b").samples[0].value == 7.0

    def test_value_and_names(self):
        snap = self._snap()
        assert snap.value("depth", stream="q1") == 3.0
        assert snap.value("missing") is None
        assert snap.value("missing", default=0.0) == 0.0
        assert snap.names() == ["depth", "in_total"]

    def test_histogram_samples_monotone(self):
        samples = histogram_samples("h", (), [0.1, 1.0], [2, 3, 1], 4.2, 6)
        buckets = [s.value for s in samples if s.name == "h_bucket"]
        assert buckets == sorted(buckets)
        assert buckets[-1] == 6.0


class TestWithLabels:
    """Snapshot relabelling — the fleet's per-job namespacing primitive."""

    def make_snapshot(self):
        registry = MetricsRegistry()
        registry.counter("strata_reports_total", labels={"operator": "sink"}).inc(3)
        registry.gauge("strata_lag").set(1.5)
        return registry.snapshot()

    def test_merges_labels_into_every_sample(self):
        snap = self.make_snapshot().with_labels(job="job-1", tenant="acme")
        assert len(snap) == 2
        for sample in snap:
            assert sample.label("job") == "job-1"
            assert sample.label("tenant") == "acme"
        # original labels survive alongside
        assert snap.value(
            "strata_reports_total", operator="sink", job="job-1"
        ) == 3.0

    def test_existing_labels_win_on_collision(self):
        snap = self.make_snapshot().with_labels(operator="fleet")
        assert snap.value("strata_reports_total", operator="sink") == 3.0
        assert snap.value("strata_lag", operator="fleet") == 1.5

    def test_original_snapshot_untouched(self):
        original = self.make_snapshot()
        original.with_labels(job="j")
        assert all(s.label("job") is None for s in original)

    def test_values_coerced_to_strings_and_sorted(self):
        snap = MetricsSnapshot(
            wall_time=0.0, samples=[Sample("m", (("z", "1"),), 1.0)]
        ).with_labels(a=2)
        assert snap.samples[0].labels == (("a", "2"), ("z", "1"))
