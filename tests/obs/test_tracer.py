"""Sampled tracing: stamping, span recording, FIFO eviction."""

import pytest

from repro.obs import Tracer
from repro.spe.tuples import StreamTuple


def _tuple(layer=0):
    return StreamTuple(tau=float(layer), job="j", layer=layer, payload={})


class TestSampling:
    def test_every_nth_tuple_is_stamped(self):
        tracer = Tracer(sample_every=4)
        stamped = []
        for i in range(10):
            t = _tuple(i)
            tracer.at_source("src", t)
            if t.trace_id is not None:
                stamped.append(i)
        assert stamped == [0, 4, 8]
        assert tracer.sampled == 3

    def test_trace_id_encodes_source_and_seq(self):
        tracer = Tracer(sample_every=1)
        t = _tuple()
        tracer.at_source("source:OT", t)
        assert t.trace_id == "source:OT#0"

    def test_sources_sample_independently(self):
        tracer = Tracer(sample_every=2)
        for i in range(4):
            tracer.at_source("a", _tuple(i))
        tracer.at_source("b", _tuple(0))
        assert sorted(tracer.trace_ids()) == ["a#0", "a#2", "b#0"]

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            Tracer(sample_every=0)
        with pytest.raises(ValueError):
            Tracer(max_traces=0)


class TestSpans:
    def test_spans_accumulate_in_order(self):
        tracer = Tracer(sample_every=1)
        t = _tuple(layer=3)
        tracer.at_source("src", t)
        tracer.record(t.trace_id, "fuse", "operator", 0.01, t)
        tracer.record(t.trace_id, "sink", "sink", 0.002, t)
        trace = tracer.trace(t.trace_id)
        assert trace.nodes == ["src", "fuse", "sink"]
        assert trace.total_duration_s == pytest.approx(0.012)
        assert trace.spans[1].layer == 3
        assert "3 spans" in trace.format()

    def test_derived_tuples_carry_the_trace_id(self):
        tracer = Tracer(sample_every=1)
        t = _tuple()
        tracer.at_source("src", t)
        child = t.derive(payload={"x": 1})
        assert child.trace_id == t.trace_id

    def test_fused_tuple_inherits_either_side(self):
        left, right = _tuple(), _tuple()
        left.trace_id = "a#0"
        assert StreamTuple.fused(left, right).trace_id == "a#0"
        left.trace_id = None
        right.trace_id = "b#0"
        assert StreamTuple.fused(left, right).trace_id == "b#0"


class TestEviction:
    def test_oldest_trace_evicted_first(self):
        tracer = Tracer(sample_every=1, max_traces=2)
        for i in range(3):
            tracer.record(f"t{i}", "n", "operator", 0.0)
        assert tracer.trace_ids() == ["t1", "t2"]
        assert tracer.trace("t0") is None
        assert len(tracer) == 2

    def test_recording_into_live_trace_does_not_evict(self):
        tracer = Tracer(sample_every=1, max_traces=2)
        tracer.record("a", "n1", "operator", 0.0)
        tracer.record("b", "n1", "operator", 0.0)
        tracer.record("a", "n2", "operator", 0.0)
        assert sorted(tracer.trace_ids()) == ["a", "b"]
        assert tracer.trace("a").nodes == ["n1", "n2"]
