"""Vectorized plans are observationally equivalent to scalar plans.

ISSUE 7's acceptance: with ``vectorize=True`` the plan compiler swaps the
fused chain's execution to array-at-a-time kernels, and nothing else may
change — the expert sink sees the identical result multiset, and
checkpoints written under either plan shape restore into the other
(snapshots are keyed by logical node names, not by execution mode).
"""

from __future__ import annotations

import time

import pytest

from repro.core import (
    Strata,
    UseCaseConfig,
    build_use_case,
    calibrate_job,
    specimen_regions_px,
)
from repro.kvstore.memory import MemoryStore
from repro.recovery import ChaosInjector, CheckpointCoordinator, RecoveryCoordinator
from repro.recovery.storage import CheckpointStorage
from repro.spe import PlanConfig
from tests.conftest import TEST_IMAGE_PX
from tests.recovery.test_crash_recovery import signature

CELL_EDGE = 5
WINDOW = 4

SCALAR_PLAN = PlanConfig(fusion=True, edge_batch_size=32, vectorize=False)
VECTOR_PLAN = PlanConfig(fusion=True, edge_batch_size=32, vectorize=True)


def _paced(records, delay):
    for record in records:
        time.sleep(delay)
        yield record


def _build(
    strata, layer_records, reference_images, test_job, delay=0.0, checkpointable=False
):
    config = UseCaseConfig(
        image_px=TEST_IMAGE_PX, cell_edge_px=CELL_EDGE, window_layers=WINDOW
    )
    calibrate_job(
        strata.kv, test_job.job_id, reference_images, CELL_EDGE,
        regions=specimen_regions_px(test_job.specimens, TEST_IMAGE_PX),
    )
    ot = _paced(layer_records, delay) if delay else iter(layer_records)
    pp = _paced(layer_records, delay) if delay else iter(layer_records)
    return build_use_case(
        ot, pp, config, strata=strata, checkpointable=checkpointable
    )


@pytest.fixture(scope="module")
def oracle_signature(layer_records, reference_images, test_job):
    """Sink output of the scalar fused plan, the comparison baseline."""
    strata = Strata(engine_mode="threaded")
    pipeline = _build(strata, layer_records, reference_images, test_job)
    strata.deploy(optimize=SCALAR_PLAN)
    return signature(pipeline.sink.results)


def test_vectorized_plan_output_matches_scalar_plan(
    layer_records, reference_images, test_job, oracle_signature
):
    strata = Strata(engine_mode="threaded")
    pipeline = _build(strata, layer_records, reference_images, test_job)
    # guard against a vacuous pass: the compiled plan must actually
    # contain a vectorized chain before we compare outputs
    assert "mode=vectorized" in strata.explain(VECTOR_PLAN)
    strata.deploy(optimize=VECTOR_PLAN)
    assert signature(pipeline.sink.results) == oracle_signature


def test_vectorized_single_tuple_batches_match(
    layer_records, reference_images, test_job, oracle_signature
):
    """edge_batch_size=1: every run is a one-row block (worst-case fill)."""
    strata = Strata(engine_mode="threaded")
    pipeline = _build(strata, layer_records, reference_images, test_job)
    strata.deploy(optimize=PlanConfig(fusion=True, edge_batch_size=1, vectorize=True))
    assert signature(pipeline.sink.results) == oracle_signature


def _checkpointed_store(layer_records, reference_images, test_job, plan):
    """Run the use case to completion under ``plan``, checkpointing once."""
    store = MemoryStore()
    strata = Strata(engine_mode="threaded")
    _build(
        strata, layer_records, reference_images, test_job,
        delay=0.05, checkpointable=True,
    )
    coordinator = CheckpointCoordinator(store)
    strata.start(checkpointer=coordinator, optimize=plan)
    coordinator.trigger(timeout=15.0)
    strata.wait(timeout=60)
    return store


def test_checkpoint_manifests_identical_across_execution_modes(
    layer_records, reference_images, test_job
):
    """Snapshots are keyed by logical node names: a manifest written under
    the vectorized plan lists the same nodes and source offsets as one
    written under the scalar plan."""
    scalar = _checkpointed_store(
        layer_records, reference_images, test_job, SCALAR_PLAN
    )
    vectorized = _checkpointed_store(
        layer_records, reference_images, test_job, VECTOR_PLAN
    )
    manifest_scalar = CheckpointStorage(scalar).load_manifest(0)
    manifest_vectorized = CheckpointStorage(vectorized).load_manifest(0)
    assert sorted(manifest_scalar["nodes"]) == sorted(manifest_vectorized["nodes"])
    assert manifest_scalar["sources"] == manifest_vectorized["sources"]


def _crash_then_recover(
    layer_records, reference_images, test_job, crash_plan, recover_plan
):
    """Checkpoint + crash under one plan shape, recover under the other."""
    ckpt_store = MemoryStore()
    strata = Strata(engine_mode="threaded")
    pipeline = _build(
        strata, layer_records, reference_images, test_job,
        delay=0.35, checkpointable=True,
    )
    coordinator = CheckpointCoordinator(ckpt_store)
    strata.start(checkpointer=coordinator, optimize=crash_plan)
    coordinator.trigger(timeout=15.0)
    chaos = ChaosInjector(
        strata._engine, lambda: len(pipeline.sink.results) >= 6, timeout=60.0
    ).start()
    assert chaos.join(timeout=90.0), "chaos kill did not fire"
    partial = signature(pipeline.sink.results)

    strata2 = Strata(engine_mode="threaded")
    pipeline2 = _build(
        strata2, layer_records, reference_images, test_job, checkpointable=True
    )
    recovery = RecoveryCoordinator(ckpt_store)
    strata2.deploy(recover_from=recovery, optimize=recover_plan)
    assert recovery.report is not None
    assert recovery.report.sources_restored  # both collectors rewound
    return partial, signature(pipeline2.sink.results)


def test_crash_under_scalar_plan_recovers_under_vectorized(
    layer_records, reference_images, test_job, oracle_signature
):
    partial, recovered = _crash_then_recover(
        layer_records, reference_images, test_job, SCALAR_PLAN, VECTOR_PLAN
    )
    assert len(partial) < len(oracle_signature), "crash came too late to matter"
    # the vectorized recovery closes the gap exactly: everything the
    # oracle reported, nothing extra, no duplicates
    assert sorted(set(partial) | set(recovered)) == oracle_signature
    assert len(recovered) == len(set(recovered)), "duplicate results delivered"


def test_crash_under_vectorized_plan_recovers_under_scalar(
    layer_records, reference_images, test_job, oracle_signature
):
    partial, recovered = _crash_then_recover(
        layer_records, reference_images, test_job, VECTOR_PLAN, SCALAR_PLAN
    )
    assert len(partial) < len(oracle_signature), "crash came too late to matter"
    assert sorted(set(partial) | set(recovered)) == oracle_signature
    assert len(recovered) == len(set(recovered)), "duplicate results delivered"
