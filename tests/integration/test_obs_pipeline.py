"""Observability end to end: live pipeline -> metrics file -> QoS alerts.

Drives ``examples/live_monitoring.py`` the way an operator would — with
``--metrics-out`` and an injected stalled layer — and asserts the issue's
acceptance criteria: the JSONL snapshot carries per-operator queue-depth
and latency metrics, and the QoS watchdog flags the >deadline layer.
"""

import importlib.util
from pathlib import Path

from repro.obs import read_jsonl

_EXAMPLE = Path(__file__).parents[2] / "examples" / "live_monitoring.py"


def _load_example():
    spec = importlib.util.spec_from_file_location("live_monitoring", _EXAMPLE)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_live_monitoring_metrics_and_qos_alert(tmp_path, capsys):
    example = _load_example()
    out = tmp_path / "metrics.jsonl"
    rc = example.main([
        "--image-px", "120",
        "--layers", "12",
        "--time-scale", "0.002",
        "--stall-layer", "6",
        "--stall-seconds", "4.5",
        "--metrics-out", str(out),
    ])
    assert rc == 0

    snapshots = read_jsonl(str(out))
    assert len(snapshots) == 1
    snap = snapshots[0]

    # per-operator metrics: every scheduler node reports tuple counts
    operators = {s.label("operator") for s in snap.filter("spe_tuples_in_total")}
    assert any(op and op.startswith("source:") for op in operators)
    assert any(op and op.startswith("sink:") for op in operators)

    # per-queue metrics: depth and high-watermark for every stream
    depths = snap.filter("spe_queue_depth").samples
    assert depths, "no queue depth samples in the snapshot"
    assert all(s.label("stream") for s in depths)
    hwms = snap.filter("spe_queue_high_watermark").samples
    assert {s.label("stream") for s in hwms} == {s.label("stream") for s in depths}

    # end-to-end latency summary at the sink
    stats = {s.label("stat") for s in snap.filter("strata_sink_latency_seconds")}
    assert {"median", "p95", "p99", "max"} <= stats

    # the injected >3s layer was flagged by the watchdog
    assert snap.value("strata_qos_violations_total") >= 1
    assert snap.value("strata_qos_layers_violated") == 1
    assert snap.value("strata_qos_worst_latency_seconds") >= 4.5

    captured = capsys.readouterr()
    assert "QoS violation" in captured.out
    assert "layer=6" in captured.out


def test_live_monitoring_clean_run_has_no_alerts(tmp_path):
    example = _load_example()
    out = tmp_path / "metrics.jsonl"
    rc = example.main([
        "--image-px", "120",
        "--layers", "8",
        "--time-scale", "0.002",
        "--metrics-out", str(out),
    ])
    assert rc == 0
    snap = read_jsonl(str(out))[0]
    assert snap.value("strata_qos_violations_total") == 0
    assert snap.value("strata_qos_layers_violated") == 0
