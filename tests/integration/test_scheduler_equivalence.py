"""Randomized pipelines: the two schedulers must agree on results.

Hypothesis generates random chains of stateless and stateful operators
over random tuple streams; the deterministic synchronous scheduler is the
oracle for the threaded Liebre-style scheduler.
"""

import hypothesis.strategies as st
from hypothesis import HealthCheck, given, settings

from repro.spe import (
    AggregateOperator,
    CollectingSink,
    FilterOperator,
    JoinOperator,
    ListSource,
    MapOperator,
    Query,
    StreamEngine,
    StreamTuple,
)

stream_data = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=30),  # tau/layer
        st.integers(min_value=-50, max_value=50),  # x
    ),
    min_size=1,
    max_size=40,
).map(lambda items: sorted(items))

stage_kinds = st.lists(
    st.sampled_from(["map", "filter", "agg"]), min_size=0, max_size=4
)


def tuples_of(data, job="j"):
    return [
        StreamTuple(tau=float(tau), job=job, layer=tau, payload={"x": x})
        for tau, x in data
    ]


def build_chain(data, kinds):
    q = Query("rand", default_capacity=64)
    q.add_source("src", ListSource("src", tuples_of(data)))
    upstream = "src"
    for index, kind in enumerate(kinds):
        name = f"{kind}{index}"
        if kind == "map":
            op = MapOperator(name, lambda t: t.derive(payload={"x": t.payload["x"] + 1}))
        elif kind == "filter":
            op = FilterOperator(name, lambda t: t.payload["x"] % 2 == 0)
        else:
            op = AggregateOperator(
                name, ws=8.0, wa=4.0,
                fn=lambda k, s, e, ts: {"x": sum(t.payload["x"] for t in ts)},
            )
        q.add_operator(name, op, upstream)
        upstream = name
    sink = CollectingSink()
    q.add_sink("out", sink, upstream)
    return q, sink


def result_multiset(sink):
    return sorted((t.tau, t.layer, t.payload["x"]) for t in sink.results)


@given(data=stream_data, kinds=stage_kinds)
@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_random_chain_schedulers_agree(data, kinds):
    q_sync, sink_sync = build_chain(data, kinds)
    q_thr, sink_thr = build_chain(data, kinds)
    StreamEngine(mode="sync").run(q_sync)
    StreamEngine(mode="threaded").run(q_thr)
    assert result_multiset(sink_sync) == result_multiset(sink_thr)


@given(left=stream_data, right=stream_data, ws=st.integers(min_value=0, max_value=5))
@settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_join_schedulers_agree(left, right, ws):
    def build():
        q = Query("randjoin", default_capacity=64)
        q.add_source("L", ListSource("L", tuples_of(left)))
        q.add_source(
            "R",
            ListSource(
                "R",
                [
                    StreamTuple(tau=float(tau), job="j", layer=tau, payload={"y": x})
                    for tau, x in right
                ],
            ),
        )
        q.add_operator(
            "join",
            JoinOperator(
                "join", ws=float(ws),
                combiner=lambda l, r: l.derive(
                    payload={"x": l.payload["x"], "y": r.payload["y"]}
                ),
            ),
            ["L", "R"],
        )
        sink = CollectingSink()
        q.add_sink("out", sink, "join")
        return q, sink

    q_sync, sink_sync = build()
    StreamEngine(mode="sync").run(q_sync)
    sync_pairs = sorted(
        (t.payload["x"], t.payload["y"]) for t in sink_sync.results
    )
    # oracle: brute-force pairs within ws
    expected = sorted(
        (lx, ry)
        for lt, lx in left
        for rt, ry in right
        if abs(lt - rt) <= ws
    )
    assert sync_pairs == expected

    q_thr, sink_thr = build()
    StreamEngine(mode="threaded").run(q_thr)
    thr_pairs = sorted((t.payload["x"], t.payload["y"]) for t in sink_thr.results)
    assert thr_pairs == expected
