"""Global process deviations: wrong parameters must be caught, not adapted to.

A job accidentally printed with strongly reduced laser power under-melts
*everything*. The static pipeline flags it immediately; crucially, the
adaptive learner's self-poisoning guard (updates use only in-band cells)
must NOT re-center onto the deviated level — a global deviation is a
process fault, not drift to track.
"""

import numpy as np

from repro.am import BuildDataset, OTImageRenderer, ProcessParameters, make_job
from repro.core import (
    Strata,
    UseCaseConfig,
    build_use_case,
    calibrate_job,
    specimen_regions_px,
)
from repro.core.functions import LabelSpecimenCellsAdaptive
from tests.conftest import TEST_IMAGE_PX

CELL_EDGE = 5
LOW_POWER = ProcessParameters(laser_power_w=160.0)  # ~43% under nominal energy


def run(records, job, reference_images, detect_override=None):
    config = UseCaseConfig(
        image_px=TEST_IMAGE_PX, cell_edge_px=CELL_EDGE, window_layers=4,
        vectorized=True,
    )
    strata = Strata(engine_mode="sync" if detect_override is None else "threaded")
    calibrate_job(
        strata.kv, job.job_id, reference_images, CELL_EDGE,
        regions=specimen_regions_px(job.specimens, TEST_IMAGE_PX),
    )
    pipeline = build_use_case(
        iter(records), iter(records), config, strata=strata,
        detect_override=detect_override,
    )
    strata.deploy()
    return pipeline


def make_records(process, layers=4, seed=3):
    job = make_job("deviated", seed=seed, defect_rate_per_stack=0.0, process=process)
    renderer = OTImageRenderer(image_px=TEST_IMAGE_PX, seed=seed)
    return job, [BuildDataset(job, renderer).layer_record(i) for i in range(layers)]


def test_static_flags_global_under_melt(reference_images):
    job, records = make_records(LOW_POWER)
    pipeline = run(records, job, reference_images)
    # essentially every melted cell reads very cold
    assert pipeline.detect_fn.events_emitted > pipeline.cells_evaluated * 0.9


def test_adaptive_guard_does_not_mask_global_deviation(reference_images):
    job, records = make_records(LOW_POWER, layers=6)
    # the adaptive detector reads thresholds from its own store reference
    probe_store = Strata().kv
    calibrate_job(
        probe_store, job.job_id, reference_images, CELL_EDGE,
        regions=specimen_regions_px(job.specimens, TEST_IMAGE_PX),
    )
    adaptive = LabelSpecimenCellsAdaptive(probe_store, CELL_EDGE, alpha=0.5)
    pipeline = run(records, job, reference_images, detect_override=adaptive)
    # even by the last layer, the adaptive detector still reports the
    # under-melt: its baseline never walked down to the deviated level
    last_layer_events = sum(
        1 for t in pipeline.sink.results
        if t.layer == 5 and t.payload["num_events"] > 0
    )
    assert last_layer_events == 12  # every specimen still flagged
    learner = adaptive._learners[job.job_id]
    assert learner.updates == 0  # the guard never accepted a deviated layer


def test_nominal_power_stays_quiet(reference_images):
    job, records = make_records(ProcessParameters())
    pipeline = run(records, job, reference_images)
    assert pipeline.detect_fn.events_emitted < pipeline.cells_evaluated * 0.01
