"""Overlapping pipelines: multiple experts share one deployment.

§4: "distinct pipelines from one or more users can overlap" — the Raw
Data Collector and fuse stages are shared, and the thermal-anomaly and
recoater-streak analyses branch off the same fused stream in one query.
"""

import pytest

from repro.am import BuildDataset, OTImageRenderer, make_job
from repro.core import (
    DBSCANCorrelator,
    DetectStreakRows,
    IsolateSpecimens,
    LabelSpecimenCells,
    OTImageCollector,
    PrintingParameterCollector,
    Strata,
    StreakCorrelator,
    calibrate_job,
    specimen_regions_px,
)
from tests.conftest import TEST_IMAGE_PX

CELL_EDGE = 5


@pytest.fixture(scope="module")
def mixed_job():
    job = make_job("mixed", seed=11, defect_rate_per_stack=0.8)
    from repro.am.defects import RecoaterStreak

    job.streaks = [RecoaterStreak("R0", 130.0, 0.0, 250.0, 1.0, 2, 9, -0.3)]
    return job


@pytest.fixture(scope="module")
def shared_run(mixed_job, reference_images):
    records = [
        BuildDataset(mixed_job, OTImageRenderer(image_px=TEST_IMAGE_PX, seed=11))
        .layer_record(i)
        for i in range(12)
    ]
    strata = Strata(engine_mode="threaded")
    calibrate_job(
        strata.kv, mixed_job.job_id, reference_images, CELL_EDGE,
        regions=specimen_regions_px(mixed_job.specimens, TEST_IMAGE_PX),
    )
    # shared raw data collectors and fuse stage (one per deployment)
    strata.addSource(PrintingParameterCollector(iter(records)), "pp")
    strata.addSource(OTImageCollector(iter(records)), "OT")
    strata.fuse("OT", "pp", "OT&pp")

    # expert 1: the thermal-anomaly pipeline
    strata.partition("OT&pp", "spec", IsolateSpecimens(TEST_IMAGE_PX))
    strata.detectEvent("spec", "cellLabel", LabelSpecimenCells(strata.kv, CELL_EDGE))
    strata.correlateEvents(
        "cellLabel", "thermal-out", 6,
        DBSCANCorrelator(
            eps_mm=8.0, min_samples=3, px_per_mm=TEST_IMAGE_PX / 250.0,
            layer_thickness_mm=0.04, cell_volume_mm3=1.0,
        ),
    )
    thermal_sink = strata.deliver("thermal-out")

    # expert 2: the recoater-streak pipeline, branching off the same fuse
    strata.detectEvent("OT&pp", "bands", DetectStreakRows())
    strata.correlateEvents(
        "bands", "streak-out", 12,
        StreakCorrelator(px_per_mm=TEST_IMAGE_PX / 250.0, min_layers=2),
    )
    streak_sink = strata.deliver("streak-out")

    strata.deploy()
    return thermal_sink, streak_sink


def test_both_experts_receive_results(shared_run):
    thermal_sink, streak_sink = shared_run
    assert len(thermal_sink.results) == 12 * 12  # layers x specimens
    assert len(streak_sink.results) == 12  # layers (whole-plate analysis)


def test_thermal_expert_sees_blob_defects(shared_run):
    thermal_sink, _ = shared_run
    assert sum(t.payload["num_clusters"] for t in thermal_sink.results) > 0


def test_streak_expert_sees_the_streak(shared_run):
    _, streak_sink = shared_run
    streak_ys = {
        round(s["y_mm"])
        for t in streak_sink.results
        for s in t.payload["streaks"]
    }
    assert 130 in streak_ys


def test_pipelines_do_not_cross_contaminate(shared_run):
    thermal_sink, streak_sink = shared_run
    # thermal reports have thermal schema; streak reports streak schema
    assert all("clusters" in t.payload for t in thermal_sink.results)
    assert all("streaks" in t.payload for t in streak_sink.results)
    assert all("streaks" not in t.payload for t in thermal_sink.results)
