"""End-to-end: the full Alg. 1 pipeline over the digital twin."""

import numpy as np
import pytest

from repro.core import (
    Strata,
    UseCaseConfig,
    build_use_case,
    calibrate_job,
    specimen_regions_px,
)
from tests.conftest import TEST_IMAGE_PX

CELL_EDGE = 5  # 5 px at 250 px/plate = 5 mm cells


def run_pipeline(layer_records, reference_images, test_job, engine_mode="sync",
                 vectorized=False, parallelism=1, window_layers=4):
    config = UseCaseConfig(
        image_px=TEST_IMAGE_PX,
        cell_edge_px=CELL_EDGE,
        window_layers=window_layers,
        vectorized=vectorized,
        parallelism=parallelism,
    )
    strata = Strata(engine_mode=engine_mode)
    calibrate_job(
        strata.kv, test_job.job_id, reference_images, CELL_EDGE,
        regions=specimen_regions_px(test_job.specimens, TEST_IMAGE_PX),
    )
    pipeline = build_use_case(
        iter(layer_records), iter(layer_records), config, strata=strata
    )
    report = strata.deploy()
    return pipeline, report


def result_key(t):
    return (t.job, t.layer, t.specimen, t.payload["num_events"], t.payload["num_clusters"])


def test_pipeline_reports_every_layer_specimen(layer_records, reference_images, test_job):
    pipeline, report = run_pipeline(layer_records, reference_images, test_job)
    results = pipeline.sink.results
    # one report per (layer, specimen)
    assert len(results) == len(layer_records) * 12
    layers = {t.layer for t in results}
    assert layers == set(range(len(layer_records)))
    specimens = {t.specimen for t in results}
    assert len(specimens) == 12


def test_pipeline_finds_seeded_defects(layer_records, reference_images, test_job):
    """Specimens with large seeded defects in the replayed layers must
    produce clusters; pristine specimens must stay mostly quiet."""
    pipeline, _ = run_pipeline(layer_records, reference_images, test_job)
    max_z = layer_records[-1].z_mm
    defective = {
        d.specimen_id
        for d in test_job.defects
        if d.first_z < max_z and d.radius_mm > 1.5
    }
    assert defective, "test setup: expected large early defects"
    clusters_by_specimen: dict[str, int] = {}
    for t in pipeline.sink.results:
        clusters_by_specimen[t.specimen] = (
            clusters_by_specimen.get(t.specimen, 0) + t.payload["num_clusters"]
        )
    for specimen in defective:
        assert clusters_by_specimen.get(specimen, 0) > 0, specimen


def test_clean_job_reports_almost_no_clusters(clean_job, renderer, reference_images):
    from repro.am import BuildDataset

    records = [BuildDataset(clean_job, renderer).layer_record(i) for i in range(6)]
    config = UseCaseConfig(image_px=TEST_IMAGE_PX, cell_edge_px=CELL_EDGE, window_layers=4)
    strata = Strata(engine_mode="sync")
    calibrate_job(
        strata.kv, clean_job.job_id, reference_images, CELL_EDGE,
        regions=specimen_regions_px(clean_job.specimens, TEST_IMAGE_PX),
    )
    pipeline = build_use_case(iter(records), iter(records), config, strata=strata)
    strata.deploy()
    total_clusters = sum(t.payload["num_clusters"] for t in pipeline.sink.results)
    assert total_clusters <= 2  # noise tail only


def test_sync_and_threaded_agree(layer_records, reference_images, test_job):
    sync_pipeline, _ = run_pipeline(layer_records, reference_images, test_job, "sync")
    threaded_pipeline, _ = run_pipeline(layer_records, reference_images, test_job, "threaded")
    assert sorted(map(result_key, sync_pipeline.sink.results)) == sorted(
        map(result_key, threaded_pipeline.sink.results)
    )


def test_scalar_and_vectorized_agree(layer_records, reference_images, test_job):
    scalar, _ = run_pipeline(layer_records, reference_images, test_job, vectorized=False)
    vector, _ = run_pipeline(layer_records, reference_images, test_job, vectorized=True)
    assert sorted(map(result_key, scalar.sink.results)) == sorted(
        map(result_key, vector.sink.results)
    )
    assert scalar.cells_evaluated == vector.cells_evaluated


def test_parallel_detect_agrees_with_serial(layer_records, reference_images, test_job):
    serial, _ = run_pipeline(
        layer_records, reference_images, test_job, "threaded", parallelism=1
    )
    parallel, _ = run_pipeline(
        layer_records, reference_images, test_job, "threaded", parallelism=4
    )
    assert sorted(map(result_key, serial.sink.results)) == sorted(
        map(result_key, parallel.sink.results)
    )


def test_window_layers_bounds_cluster_span(layer_records, reference_images, test_job):
    pipeline, _ = run_pipeline(
        layer_records, reference_images, test_job, window_layers=2
    )
    for t in pipeline.sink.results:
        for cluster in t.payload["clusters"]:
            first, last = cluster["layers"]
            assert last - first < 2  # no cluster can span beyond the window


def test_latency_recorded_per_result(layer_records, reference_images, test_job):
    pipeline, report = run_pipeline(layer_records, reference_images, test_job, "threaded")
    samples = report.latency_samples()
    assert len(samples) == len(pipeline.sink.results)
    assert all(0 <= s < 60 for s in samples)


def test_cells_evaluated_accounting(layer_records, reference_images, test_job):
    pipeline, _ = run_pipeline(layer_records, reference_images, test_job)
    # at 250 px / 250 mm, a 25x50 mm specimen is 25x50 px; cell edge 5
    # -> (50//5) * (25//5) = 50 cells per specimen per layer
    per_layer = 12 * (50 // CELL_EDGE) * (25 // CELL_EDGE)
    assert pipeline.cells_evaluated == per_layer * len(layer_records)
