"""Property: a compiled plan is observationally equivalent to the query.

The oracle is the :class:`SynchronousScheduler` running the graph exactly
as declared (no fusion, no replication, no batching). For any randomly
generated pipeline and input, the optimized threaded plan must deliver
the same sink output: the identical *sequence* for linear plans (fusion
and batching may not reorder), the identical *multiset* once replication
is in play (the merge union interleaves replica outputs arbitrarily).
"""

from __future__ import annotations

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.spe import (
    AggregateOperator,
    CollectingSink,
    FilterOperator,
    ListSource,
    MapOperator,
    PlanConfig,
    Query,
    StreamEngine,
    StreamTuple,
)

# Each spec is (kind, knob); stages are instantiated fresh per run so the
# oracle and the optimized run never share state.
_STAGES = st.lists(
    st.one_of(
        st.tuples(st.just("add"), st.integers(min_value=-5, max_value=5)),
        st.tuples(st.just("scale"), st.integers(min_value=1, max_value=3)),
        st.tuples(st.just("keep_mod"), st.integers(min_value=1, max_value=4)),
        st.tuples(st.just("running_sum"), st.just(0)),
    ),
    min_size=1,
    max_size=5,
)

_INPUTS = st.lists(st.integers(min_value=0, max_value=40), min_size=0, max_size=60)

# Replication only guarantees *per-key* order: the merge union interleaves
# keys arbitrarily, so a cross-key stateful stage (running_sum) downstream
# of a replicated group is legitimately nondeterministic — that is exactly
# the case `replicable=False` (the default) exists for. The replication
# property therefore ranges over order-commutative stages only.
_STATELESS_STAGES = st.lists(
    st.one_of(
        st.tuples(st.just("add"), st.integers(min_value=-5, max_value=5)),
        st.tuples(st.just("scale"), st.integers(min_value=1, max_value=3)),
        st.tuples(st.just("keep_mod"), st.integers(min_value=1, max_value=4)),
    ),
    min_size=1,
    max_size=5,
)


def _make_stage(kind: str, knob: int, name: str):
    if kind == "add":
        return MapOperator(name, lambda t, k=knob: t.derive(payload={"x": t.payload["x"] + k}))
    if kind == "scale":
        return MapOperator(name, lambda t, k=knob: t.derive(payload={"x": t.payload["x"] * k}))
    if kind == "keep_mod":
        return FilterOperator(name, lambda t, k=knob: t.payload["x"] % (k + 1) != k)
    if kind == "running_sum":

        class RunningSum:
            def __init__(self):
                self.total = 0

            def __call__(self, t):
                self.total += t.payload["x"]
                return t.derive(payload={"x": t.payload["x"], "sum": self.total})

        return MapOperator(name, RunningSum())
    raise AssertionError(kind)


def _build(stages, values, replicable: bool):
    q = Query("prop")
    tuples = [
        StreamTuple(tau=float(i), job="j", layer=i, payload={"x": v})
        for i, v in enumerate(values)
    ]
    q.add_source("src", ListSource("src", tuples))
    upstream = "src"
    for i, (kind, knob) in enumerate(stages):
        name = f"s{i}"
        if replicable and kind != "running_sum":
            # stage state (filters/maps here are stateless) is keyed by layer,
            # so disjoint layers can run on independent replicas
            q.add_operator(
                name,
                lambda kind=kind, knob=knob, name=name: _make_stage(kind, knob, name),
                upstream,
                key_fn=lambda t: t.layer,
                replicable=True,
            )
        else:
            q.add_operator(name, _make_stage(kind, knob, name), upstream)
        upstream = name
    q.add_sink("out", CollectingSink(), upstream)
    return q


def _payloads(report):
    return [tuple(sorted(t.payload.items())) for t in report.sinks["out"].results]


@given(stages=_STAGES, values=_INPUTS, batch=st.sampled_from([1, 2, 7, 32]))
@settings(max_examples=25, deadline=None)
def test_fused_batched_plan_matches_sync_oracle(stages, values, batch):
    oracle = StreamEngine(mode="sync").run(_build(stages, values, False))
    plan = PlanConfig(fusion=True, edge_batch_size=batch, linger_s=0.0)
    optimized = StreamEngine(mode="threaded").run(_build(stages, values, False), plan=plan)
    # linear plans must preserve the exact output sequence, not just the set
    assert _payloads(optimized) == _payloads(oracle)


@given(stages=_STATELESS_STAGES, values=_INPUTS, parallelism=st.sampled_from([2, 3]))
@settings(max_examples=15, deadline=None)
def test_replicated_plan_matches_sync_oracle_as_multiset(stages, values, parallelism):
    oracle = StreamEngine(mode="sync").run(_build(stages, values, False))
    plan = PlanConfig(fusion=True, edge_batch_size=8, parallelism=parallelism)
    optimized = StreamEngine(mode="threaded").run(
        _build(stages, values, True), plan=plan
    )
    # the merge union interleaves replica outputs: compare as multisets
    assert sorted(_payloads(optimized)) == sorted(_payloads(oracle))


def test_stateful_aggregate_survives_fusion_with_batching():
    """A windowed aggregate inside a fused chain flushes identically."""

    def build():
        q = Query("agg")
        tuples = [
            StreamTuple(tau=float(i), job="j", layer=i, payload={"x": i})
            for i in range(37)
        ]
        q.add_source("src", ListSource("src", tuples))
        q.add_operator("pre", MapOperator("pre", lambda t: t), "src")
        q.add_operator(
            "agg",
            AggregateOperator(
                "agg", ws=4.0, wa=4.0, fn=lambda k, s, e, ts: {"n": len(ts)}
            ),
            "pre",
        )
        q.add_operator("post", MapOperator("post", lambda t: t), "agg")
        q.add_sink("out", CollectingSink(), "post")
        return q

    oracle = StreamEngine(mode="sync").run(build())
    optimized = StreamEngine(mode="threaded").run(
        build(), plan=PlanConfig(edge_batch_size=16)
    )
    assert _payloads(optimized) == _payloads(oracle)
    total = sum(t.payload["n"] for t in optimized.sinks["out"].results)
    assert total == 37
