"""Live monitoring: machine -> pipeline -> expert feedback loop.

Exercises the Figure 1B scenario end to end: a (simulated) machine prints
while STRATA analyzes each layer online, and a sink acting for the expert
terminates the build when a defect cluster exceeds a volume budget —
the paper's motivating "timely decisions" loop.
"""

import threading

from repro.am import ControlHandle, OTImageRenderer, PBFLBMachine, make_job
from repro.core import (
    LiveLayerFeed,
    Strata,
    UseCaseConfig,
    build_use_case,
    calibrate_job,
    specimen_regions_px,
)
from repro.spe import CallbackSink
from tests.conftest import TEST_IMAGE_PX

CELL_EDGE = 5


def test_live_feed_early_termination(test_job, reference_images):
    config = UseCaseConfig(image_px=TEST_IMAGE_PX, cell_edge_px=CELL_EDGE, window_layers=6)
    strata = Strata(engine_mode="threaded")
    calibrate_job(
        strata.kv, test_job.job_id, reference_images, CELL_EDGE,
        regions=specimen_regions_px(test_job.specimens, TEST_IMAGE_PX),
    )

    machine = PBFLBMachine(renderer=OTImageRenderer(image_px=TEST_IMAGE_PX, seed=7))
    control = ControlHandle()
    feed = LiveLayerFeed()

    def expert(t):
        for cluster in t.payload["clusters"]:
            if cluster["volume_mm3"] >= 1.0:
                control.request_termination(
                    f"cluster of {cluster['volume_mm3']:.1f} mm^3 in {t.specimen}"
                )

    sink = CallbackSink("expert", expert)
    build_use_case(
        feed.records(), feed.records(), config, strata=strata, sink=sink
    )
    strata.start()

    def run_build():
        machine.run(test_job, control=control, on_layer=feed.push, max_layers=40)
        feed.close()

    builder = threading.Thread(target=run_build)
    builder.start()
    builder.join(timeout=120)
    assert not builder.is_alive()
    strata.wait(timeout=60)

    assert control.termination_requested
    assert "mm^3" in control.reason


def test_live_feed_clean_build_completes(clean_job, reference_images):
    config = UseCaseConfig(image_px=TEST_IMAGE_PX, cell_edge_px=CELL_EDGE, window_layers=4)
    strata = Strata(engine_mode="threaded")
    calibrate_job(
        strata.kv, clean_job.job_id, reference_images, CELL_EDGE,
        regions=specimen_regions_px(clean_job.specimens, TEST_IMAGE_PX),
    )
    machine = PBFLBMachine(renderer=OTImageRenderer(image_px=TEST_IMAGE_PX, seed=1))
    control = ControlHandle()
    feed = LiveLayerFeed()
    sink = CallbackSink(
        "expert",
        lambda t: control.request_termination("unexpected cluster")
        if t.payload["num_clusters"] > 0
        else None,
    )
    build_use_case(feed.records(), feed.records(), config, strata=strata, sink=sink)
    strata.start()
    outcome = machine.run(clean_job, control=control, on_layer=feed.push, max_layers=8)
    feed.close()
    strata.wait(timeout=60)
    assert not outcome.terminated_early
    assert outcome.layers_completed == 8
