"""Connector-mode equivalence: direct streams vs pub/sub bridging."""

import pytest

from repro.core import (
    Strata,
    UseCaseConfig,
    build_use_case,
    calibrate_job,
    specimen_regions_px,
    topic_for_stream,
)
from tests.conftest import TEST_IMAGE_PX

CELL_EDGE = 5


def run(layer_records, reference_images, test_job, connector_mode):
    config = UseCaseConfig(image_px=TEST_IMAGE_PX, cell_edge_px=CELL_EDGE, window_layers=4)
    strata = Strata(engine_mode="threaded", connector_mode=connector_mode)
    calibrate_job(
        strata.kv, test_job.job_id, reference_images, CELL_EDGE,
        regions=specimen_regions_px(test_job.specimens, TEST_IMAGE_PX),
    )
    pipeline = build_use_case(iter(layer_records), iter(layer_records), config, strata=strata)
    strata.deploy()
    return strata, pipeline


def result_key(t):
    return (t.job, t.layer, t.specimen, t.payload["num_events"], t.payload["num_clusters"])


def test_pubsub_mode_equals_direct(layer_records, reference_images, test_job):
    _, direct = run(layer_records, reference_images, test_job, "direct")
    _, bridged = run(layer_records, reference_images, test_job, "pubsub")
    assert sorted(map(result_key, direct.sink.results)) == sorted(
        map(result_key, bridged.sink.results)
    )


def test_pubsub_mode_creates_connector_topics(layer_records, reference_images, test_job):
    strata, _ = run(layer_records, reference_images, test_job, "pubsub")
    topics = strata.broker.topics()
    # raw -> monitor connectors for both sources
    assert topic_for_stream("OT") in topics
    assert topic_for_stream("pp") in topics
    # monitor -> aggregator connector for the event stream
    assert topic_for_stream("cellLabel") in topics


def test_pubsub_requires_threaded_engine():
    with pytest.raises(ValueError, match="threaded"):
        Strata(engine_mode="sync", connector_mode="pubsub")


def test_invalid_connector_mode():
    with pytest.raises(ValueError):
        Strata(connector_mode="carrier-pigeon")
