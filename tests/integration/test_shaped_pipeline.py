"""Geometry-aware monitoring: shaped parts through the thermal pipeline."""

import pytest

from repro.am import BuildDataset, OTImageRenderer, make_job, make_shaped_job
from repro.core import (
    Strata,
    UseCaseConfig,
    build_use_case,
    calibrate_job,
    specimen_regions_px,
)
from tests.conftest import TEST_IMAGE_PX

CELL_EDGE = 5


def run(job, layers, vectorized, reference_images, window=4):
    renderer = OTImageRenderer(image_px=TEST_IMAGE_PX, seed=7)
    records = [BuildDataset(job, renderer).layer_record(i) for i in range(layers)]
    config = UseCaseConfig(
        image_px=TEST_IMAGE_PX, cell_edge_px=CELL_EDGE, window_layers=window,
        vectorized=vectorized,
    )
    strata = Strata(engine_mode="sync")
    calibrate_job(
        strata.kv, job.job_id, reference_images, CELL_EDGE,
        regions=specimen_regions_px(make_job("r", seed=1).specimens, TEST_IMAGE_PX),
    )
    pipeline = build_use_case(iter(records), iter(records), config, strata=strata)
    strata.deploy()
    return pipeline


@pytest.fixture(scope="module")
def clean_shaped():
    return make_shaped_job("shaped-clean", seed=7, defect_rate_per_stack=0.0)


def test_clean_shaped_build_produces_no_events(clean_shaped, reference_images):
    pipeline = run(clean_shaped, 6, vectorized=True, reference_images=reference_images)
    assert pipeline.detect_fn.events_emitted == 0


def test_shaped_paths_agree(clean_shaped, reference_images):
    scalar = run(clean_shaped, 4, vectorized=False, reference_images=reference_images)
    vector = run(clean_shaped, 4, vectorized=True, reference_images=reference_images)
    assert scalar.cells_evaluated == vector.cells_evaluated
    assert scalar.detect_fn.events_emitted == vector.detect_fn.events_emitted


def test_shaped_cells_fewer_than_block_cells(clean_shaped, reference_images):
    shaped = run(clean_shaped, 2, vectorized=True, reference_images=reference_images)
    block_job = make_job("blocks", seed=7, defect_rate_per_stack=0.0)
    blocks = run(block_job, 2, vectorized=True, reference_images=reference_images)
    # cylinders/cones/hexagons cover less area than their bounding blocks
    assert shaped.cells_evaluated < blocks.cells_evaluated


def test_defective_shaped_build_finds_clusters(reference_images):
    job = make_shaped_job("shaped-dirty", seed=7, defect_rate_per_stack=1.2)
    pipeline = run(job, 8, vectorized=True, reference_images=reference_images, window=6)
    clusters = sum(t.payload["num_clusters"] for t in pipeline.sink.results)
    assert clusters > 0


def test_cone_reports_shrink_with_height(reference_images):
    """A cone's evaluated cell count must drop as its slice narrows."""
    job = make_shaped_job("cone-probe", seed=7, defect_rate_per_stack=0.0)
    renderer = OTImageRenderer(image_px=TEST_IMAGE_PX, seed=7)
    from repro.core.functions import IsolateSpecimens, LabelSpecimenCells

    iso = IsolateSpecimens(TEST_IMAGE_PX)
    strata = Strata()
    calibrate_job(
        strata.kv, job.job_id, reference_images, CELL_EDGE,
        regions=specimen_regions_px(make_job("r", seed=1).specimens, TEST_IMAGE_PX),
    )
    detect = LabelSpecimenCells(strata.kv, CELL_EDGE)
    dataset = BuildDataset(job, renderer)

    def cone_cells(layer):
        from repro.core import OTImageCollector

        record = dataset.layer_record(layer)
        tuples = list(OTImageCollector(iter([record])))
        fused = tuples[0].derive(
            payload={**tuples[0].payload, **record.parameters}
        )
        before = detect.cells_evaluated
        for spec_tuple in iso(fused):
            if spec_tuple.specimen == "S02":  # the cone slot
                detect(spec_tuple)
        return detect.cells_evaluated - before

    low = cone_cells(0)
    high = cone_cells(500)  # z = 20 mm: much narrower slice
    assert 0 < high < low
