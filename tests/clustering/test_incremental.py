"""Cross-layer window clustering (correlateEvents semantics)."""

import numpy as np
import pytest

from repro.clustering import (
    IncrementalLayerClusterer,
    LayerWindowClusterer,
    dbscan,
    summarize_clusters,
)


def disk(cx, cy, n=12, r=0.3, seed=0):
    rng = np.random.default_rng(seed)
    angles = rng.uniform(0, 2 * np.pi, n)
    radii = rng.uniform(0, r, n)
    return np.column_stack([cx + radii * np.cos(angles), cy + radii * np.sin(angles)])


def test_single_layer_clusters():
    clusterer = LayerWindowClusterer(
        window_layers=5, eps=1.0, min_samples=3, layer_thickness_mm=0.04
    )
    result = clusterer.observe_layer(0, disk(5, 5))
    assert result.num_clusters == 1
    assert result.noise_count == 0


def test_cluster_grows_across_layers():
    clusterer = LayerWindowClusterer(
        window_layers=10, eps=1.0, min_samples=3, layer_thickness_mm=0.04
    )
    for layer in range(5):
        result = clusterer.observe_layer(layer, disk(5, 5, seed=layer))
    assert result.num_clusters == 1
    summary = result.summaries[0]
    assert summary.layers == (0, 4)
    assert summary.size == 5 * 12


def test_window_evicts_old_layers():
    clusterer = LayerWindowClusterer(
        window_layers=2, eps=1.0, min_samples=3, layer_thickness_mm=0.04
    )
    clusterer.observe_layer(0, disk(0, 0))
    clusterer.observe_layer(1, disk(0, 0, seed=1))
    result = clusterer.observe_layer(2, disk(0, 0, seed=2))
    # only layers 1 and 2 remain in the window
    assert result.summaries[0].layers == (1, 2)
    assert result.summaries[0].size == 24


def test_empty_layers_yield_empty_result():
    clusterer = LayerWindowClusterer(
        window_layers=3, eps=1.0, min_samples=3, layer_thickness_mm=0.04
    )
    result = clusterer.observe_layer(0, np.empty((0, 2)))
    assert result.num_clusters == 0
    assert len(result.labels) == 0


def test_separate_defects_remain_separate():
    clusterer = LayerWindowClusterer(
        window_layers=5, eps=1.0, min_samples=3, layer_thickness_mm=0.04
    )
    points = np.vstack([disk(0, 0), disk(20, 20, seed=1)])
    result = clusterer.observe_layer(0, points)
    assert result.num_clusters == 2


def test_window_matches_batch_dbscan():
    """Window result == plain DBSCAN over the same stacked points."""
    clusterer = LayerWindowClusterer(
        window_layers=4, eps=1.0, min_samples=3, layer_thickness_mm=0.1
    )
    layers = {i: disk(i, i, seed=i) for i in range(4)}
    for layer, xy in layers.items():
        result = clusterer.observe_layer(layer, xy)
    stacked = np.vstack(
        [np.hstack([xy, np.full((len(xy), 1), layer * 0.1)]) for layer, xy in layers.items()]
    )
    expected = dbscan(stacked, eps=1.0, min_samples=3)
    from repro.clustering import rand_index

    assert rand_index(result.labels, expected) == 1.0


def test_min_volume_filters_summaries():
    clusterer = LayerWindowClusterer(
        window_layers=3, eps=1.0, min_samples=3, layer_thickness_mm=0.04,
        cell_volume_mm3=0.1, min_volume_mm3=5.0,
    )
    result = clusterer.observe_layer(0, disk(0, 0, n=12))  # volume 1.2 < 5
    assert result.num_clusters == 1  # cluster exists...
    assert result.summaries == []  # ...but is below the reporting volume


def test_summarize_clusters_fields():
    points = np.array([[0.0, 0.0, 0.0], [1.0, 0.0, 0.0], [0.0, 1.0, 0.1]])
    labels = np.array([0, 0, 0])
    layers = np.array([3, 3, 4])
    summaries = summarize_clusters(points, labels, layers, cell_volume_mm3=2.0)
    assert len(summaries) == 1
    s = summaries[0]
    assert s.size == 3
    assert s.volume_mm3 == 6.0
    assert s.layers == (3, 4)
    assert s.bbox_min == (0.0, 0.0, 0.0)
    assert s.bbox_max == (1.0, 1.0, 0.1)


def test_incremental_caches_noop_layers():
    clusterer = IncrementalLayerClusterer(
        window_layers=5, eps=1.0, min_samples=3, layer_thickness_mm=0.04
    )
    first = clusterer.observe_layer(0, disk(0, 0))
    second = clusterer.observe_layer(1, np.empty((0, 2)))
    assert second is first  # cached: nothing changed
    third = clusterer.observe_layer(2, disk(0, 0, seed=3))
    assert third is not first


def test_incremental_recomputes_on_expiry():
    clusterer = IncrementalLayerClusterer(
        window_layers=2, eps=1.0, min_samples=3, layer_thickness_mm=0.04
    )
    clusterer.observe_layer(0, disk(0, 0))
    clusterer.observe_layer(1, np.empty((0, 2)))
    # layer 0 (non-empty) expires now: cache must be invalidated
    result = clusterer.observe_layer(2, np.empty((0, 2)))
    assert result.num_clusters == 0


def test_incremental_equals_reference():
    reference = LayerWindowClusterer(
        window_layers=3, eps=1.0, min_samples=3, layer_thickness_mm=0.04
    )
    incremental = IncrementalLayerClusterer(
        window_layers=3, eps=1.0, min_samples=3, layer_thickness_mm=0.04
    )
    rng = np.random.default_rng(5)
    for layer in range(10):
        xy = disk(layer % 3, 0, seed=layer) if rng.random() > 0.4 else np.empty((0, 2))
        a = reference.observe_layer(layer, xy)
        b = incremental.observe_layer(layer, xy)
        assert a.num_clusters == b.num_clusters
        assert len(a.labels) == len(b.labels)


def test_invalid_window():
    with pytest.raises(ValueError):
        LayerWindowClusterer(window_layers=0, eps=1.0, min_samples=3, layer_thickness_mm=0.04)
