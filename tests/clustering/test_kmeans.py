"""k-means baseline."""

import numpy as np
import pytest

from repro.clustering import inertia, kmeans


def blobs(centers, n=30, spread=0.3, seed=0):
    rng = np.random.default_rng(seed)
    return np.vstack([rng.normal(c, spread, size=(n, len(c))) for c in centers])


def test_separates_clear_blobs():
    points = blobs([(0, 0), (10, 10), (0, 10)])
    labels, centroids, iterations = kmeans(points, k=3, seed=1)
    assert len(set(labels.tolist())) == 3
    assert iterations >= 1
    # each blob maps to one label
    for start in (0, 30, 60):
        assert len(set(labels[start : start + 30].tolist())) == 1


def test_deterministic_for_seed():
    points = blobs([(0, 0), (5, 5)])
    a = kmeans(points, k=2, seed=3)
    b = kmeans(points, k=2, seed=3)
    assert np.array_equal(a[0], b[0])
    assert np.array_equal(a[1], b[1])


def test_k_capped_at_n():
    points = np.array([[0.0, 0.0], [1.0, 1.0]])
    labels, centroids, _ = kmeans(points, k=10)
    assert len(centroids) == 2
    assert set(labels.tolist()) <= {0, 1}


def test_empty_input():
    labels, centroids, iterations = kmeans(np.empty((0, 2)), k=3)
    assert labels.size == 0
    assert iterations == 0


def test_single_point():
    labels, centroids, _ = kmeans(np.array([[5.0, 5.0]]), k=1)
    assert labels.tolist() == [0]
    assert centroids.tolist() == [[5.0, 5.0]]


def test_identical_points():
    points = np.ones((10, 2))
    labels, centroids, _ = kmeans(points, k=3, seed=0)
    assert (centroids == 1.0).all()


def test_inertia_decreases_with_more_clusters():
    points = blobs([(0, 0), (10, 10), (20, 0)], seed=2)
    results = {}
    for k in (1, 3):
        labels, centroids, _ = kmeans(points, k=k, seed=0)
        results[k] = inertia(points, labels, centroids)
    assert results[3] < results[1]


def test_invalid_k():
    with pytest.raises(ValueError):
        kmeans(np.zeros((5, 2)), k=0)


def test_1d_input():
    labels, centroids, _ = kmeans(np.array([0.0, 0.1, 9.9, 10.0]), k=2, seed=0)
    assert labels[0] == labels[1]
    assert labels[2] == labels[3]
    assert labels[0] != labels[2]
