"""Property-based DBSCAN invariants."""

import numpy as np
import hypothesis.strategies as st
from hypothesis import given, settings

from repro.clustering import core_point_mask, dbscan, rand_index

point_arrays = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=200),
        st.integers(min_value=0, max_value=200),
    ),
    min_size=1,
    max_size=80,
).map(lambda pts: np.array(pts, dtype=float) / 10.0)


@given(points=point_arrays, eps=st.sampled_from([0.5, 1.0, 2.0]), k=st.integers(2, 5))
@settings(max_examples=60, deadline=None)
def test_grid_and_naive_agree(points, eps, k):
    grid = dbscan(points, eps=eps, min_samples=k, use_grid=True)
    naive = dbscan(points, eps=eps, min_samples=k, use_grid=False)
    # label ids may differ in principle; partitions must be identical
    assert rand_index(grid, naive) == 1.0


@given(points=point_arrays, eps=st.sampled_from([0.5, 1.0]), k=st.integers(2, 5))
@settings(max_examples=60, deadline=None)
def test_core_points_never_noise(points, eps, k):
    labels = dbscan(points, eps=eps, min_samples=k)
    core = core_point_mask(points, eps=eps, min_samples=k)
    assert (labels[core] >= 0).all()


@given(points=point_arrays, eps=st.sampled_from([0.5, 1.0]), k=st.integers(2, 5))
@settings(max_examples=60, deadline=None)
def test_noise_points_are_not_core(points, eps, k):
    labels = dbscan(points, eps=eps, min_samples=k)
    core = core_point_mask(points, eps=eps, min_samples=k)
    noise = labels < 0
    assert not (noise & core).any()


@given(points=point_arrays, eps=st.sampled_from([0.5, 1.0]), k=st.integers(2, 4), seed=st.integers(0, 5))
@settings(max_examples=40, deadline=None)
def test_permutation_invariance_of_partition(points, eps, k, seed):
    rng = np.random.default_rng(seed)
    perm = rng.permutation(len(points))
    labels = dbscan(points, eps=eps, min_samples=k)
    permuted_labels = dbscan(points[perm], eps=eps, min_samples=k)
    # map back to original order and compare partitions
    unpermuted = np.empty_like(permuted_labels)
    unpermuted[perm] = permuted_labels
    # border points may legitimately attach to a different adjacent
    # cluster depending on visit order; compare on core points only
    core = core_point_mask(points, eps=eps, min_samples=k)
    if core.sum() >= 2:
        assert rand_index(labels[core], unpermuted[core]) == 1.0


@given(points=point_arrays)
@settings(max_examples=40, deadline=None)
def test_labels_are_contiguous_from_zero(points):
    labels = dbscan(points, eps=1.0, min_samples=3)
    positive = sorted(set(labels[labels >= 0].tolist()))
    assert positive == list(range(len(positive)))


@given(
    points=point_arrays,
    k=st.integers(min_value=2, max_value=5),
)
@settings(max_examples=40, deadline=None)
def test_monotone_in_eps(points, k):
    """Growing eps can only merge clusters, never orphan clustered points."""
    small = dbscan(points, eps=0.5, min_samples=k)
    large = dbscan(points, eps=2.0, min_samples=k)
    # any point clustered at small eps remains clustered at larger eps
    assert ((small >= 0) <= (large >= 0)).all()
