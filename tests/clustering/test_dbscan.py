"""DBSCAN correctness on known geometries."""

import numpy as np
import pytest

from repro.clustering import NOISE, GridIndex, core_point_mask, dbscan


def blobs(centers, n=40, spread=0.2, seed=0):
    rng = np.random.default_rng(seed)
    parts = [rng.normal(c, spread, size=(n, len(c))) for c in centers]
    return np.vstack(parts)


def test_two_blobs_two_clusters():
    points = blobs([(0, 0), (10, 10)])
    labels = dbscan(points, eps=1.0, min_samples=5)
    assert set(labels[:40]) == {labels[0]}
    assert set(labels[40:]) == {labels[40]}
    assert labels[0] != labels[40]


def test_isolated_points_are_noise():
    points = np.vstack([blobs([(0, 0)]), [(50, 50)], [(60, -60)]])
    labels = dbscan(points, eps=1.0, min_samples=5)
    assert labels[-1] == NOISE
    assert labels[-2] == NOISE


def test_chain_connectivity():
    # a line of points spaced 0.9 with eps=1: one cluster
    points = np.array([(0.9 * i, 0.0) for i in range(30)])
    labels = dbscan(points, eps=1.0, min_samples=3)
    assert len(set(labels.tolist())) == 1
    assert labels[0] == 0


def test_broken_chain_splits():
    points = np.array(
        [(0.9 * i, 0.0) for i in range(10)] + [(0.9 * i + 20, 0.0) for i in range(10)]
    )
    labels = dbscan(points, eps=1.0, min_samples=3)
    assert labels[0] != labels[10]
    assert (labels >= 0).all()


def test_min_samples_one_every_point_core():
    points = np.array([(0.0, 0.0), (100.0, 100.0)])
    labels = dbscan(points, eps=1.0, min_samples=1)
    assert set(labels.tolist()) == {0, 1}


def test_empty_and_single():
    assert dbscan(np.empty((0, 2)), eps=1.0, min_samples=3).size == 0
    single = dbscan(np.array([[1.0, 2.0]]), eps=1.0, min_samples=1)
    assert single.tolist() == [0]
    lonely = dbscan(np.array([[1.0, 2.0]]), eps=1.0, min_samples=2)
    assert lonely.tolist() == [NOISE]


def test_grid_equals_naive():
    rng = np.random.default_rng(7)
    points = rng.uniform(0, 20, size=(300, 2))
    grid = dbscan(points, eps=1.5, min_samples=4, use_grid=True)
    naive = dbscan(points, eps=1.5, min_samples=4, use_grid=False)
    assert np.array_equal(grid, naive)


def test_3d_points():
    points = blobs([(0, 0, 0), (5, 5, 5)], spread=0.1)
    labels = dbscan(points, eps=0.5, min_samples=4)
    assert labels[0] != labels[40]
    assert (labels >= 0).all()


def test_1d_points_reshaped():
    labels = dbscan(np.array([0.0, 0.1, 0.2, 10.0, 10.1, 10.2]), eps=0.3, min_samples=2)
    assert labels[0] == labels[2]
    assert labels[3] == labels[5]
    assert labels[0] != labels[3]


def test_invalid_parameters():
    with pytest.raises(ValueError):
        dbscan(np.zeros((3, 2)), eps=0.0, min_samples=2)
    with pytest.raises(ValueError):
        dbscan(np.zeros((3, 2)), eps=1.0, min_samples=0)


def test_grid_index_neighbors_exact():
    points = np.array([(0.0, 0.0), (0.5, 0.0), (1.5, 0.0), (5.0, 5.0)])
    index = GridIndex(points, eps=1.0)
    assert sorted(index.neighbors(0).tolist()) == [0, 1]
    assert sorted(index.neighbors(1).tolist()) == [0, 1, 2]
    assert index.neighbors(3).tolist() == [3]


def test_core_point_mask():
    points = np.array([(0.0, 0.0), (0.1, 0.0), (0.2, 0.0), (9.0, 9.0)])
    mask = core_point_mask(points, eps=0.5, min_samples=3)
    assert mask.tolist() == [True, True, True, False]


def test_eps_boundary_inclusive():
    points = np.array([(0.0, 0.0), (1.0, 0.0)])
    labels = dbscan(points, eps=1.0, min_samples=2)
    assert labels[0] == labels[1] == 0
