"""Cluster-quality metrics."""

import numpy as np
import pytest

from repro.clustering import detection_scores, pair_confusion, rand_index


def test_identical_partitions():
    labels = np.array([0, 0, 1, 1, 2])
    assert rand_index(labels, labels) == 1.0


def test_relabeled_partitions_equal():
    a = np.array([0, 0, 1, 1])
    b = np.array([5, 5, 2, 2])
    assert rand_index(a, b) == 1.0


def test_disjoint_partitions():
    a = np.array([0, 0, 0, 0])
    b = np.array([0, 1, 2, 3])
    assert rand_index(a, b) == 0.0


def test_noise_points_never_match_each_other():
    a = np.array([-1, -1])
    b = np.array([-1, -1])
    ss, sd, ds, dd = pair_confusion(a, b)
    assert ss == 0
    assert dd == 1


def test_pair_confusion_counts():
    a = np.array([0, 0, 1])
    b = np.array([0, 1, 1])
    ss, sd, ds, dd = pair_confusion(a, b)
    assert ss + sd + ds + dd == 3  # C(3,2)
    assert sd == 1  # pair (0,1): same in a, diff in b
    assert ds == 1  # pair (1,2): diff in a, same in b


def test_length_mismatch_rejected():
    with pytest.raises(ValueError):
        pair_confusion(np.array([0]), np.array([0, 1]))


def test_detection_scores_perfect():
    predicted = np.array([0, 0, -1, -1])
    truth = np.array([True, True, False, False])
    scores = detection_scores(predicted, truth)
    assert scores["precision"] == 1.0
    assert scores["recall"] == 1.0
    assert scores["f1"] == 1.0


def test_detection_scores_partial():
    predicted = np.array([0, -1, 0, -1])
    truth = np.array([True, True, False, False])
    scores = detection_scores(predicted, truth)
    assert scores["precision"] == 0.5
    assert scores["recall"] == 0.5
    assert scores["tp"] == 1
    assert scores["fp"] == 1
    assert scores["fn"] == 1


def test_detection_scores_degenerate():
    scores = detection_scores(np.array([-1, -1]), np.array([False, False]))
    assert scores["precision"] == 0.0
    assert scores["recall"] == 0.0
    assert scores["f1"] == 0.0
