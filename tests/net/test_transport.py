"""The pluggable transport layer: registry, negotiation, slab lifecycle."""

import socket
import time

import numpy as np
import pytest

from repro.net import (
    BrokerClient,
    BrokerServer,
    ClientTransport,
    ServerTransport,
    TransportSpec,
    connect_transport,
    make_server_transport,
    register_transport,
)
from repro.net.ops import LeaseRequest, ReleaseRequest
from repro.pubsub import Broker

#: small ring so tests exercise reclamation without big allocations
SHM_OPTS = {"slots": 8, "slab_bytes": 1024 * 1024}


@pytest.fixture()
def shm_served():
    broker = Broker()
    with BrokerServer(broker, transport="shm", transport_options=SHM_OPTS) as server:
        host, port = server.address
        with BrokerClient(host, port) as client:
            yield broker, server, client


# -- registry -----------------------------------------------------------------


def test_unknown_server_transport_fails_loudly():
    with pytest.raises(ValueError, match=r"unknown transport 'spm'.*shm.*tcp"):
        make_server_transport("spm")


def test_duplicate_registration_refused():
    spec = TransportSpec(
        name="tcp",
        make_server=lambda **_: ServerTransport(),
        connect=lambda d: ClientTransport(),
    )
    with pytest.raises(ValueError, match="already registered"):
        register_transport(spec)
    # replace=True is the escape hatch (and restores the original here)
    register_transport(spec, replace=True)


def test_connect_transport_always_lands_somewhere():
    assert connect_transport(None).name == "tcp"
    assert connect_transport({}).name == "tcp"
    assert connect_transport({"name": "rdma-of-the-future"}).name == "tcp"
    # shm advertised but the ring is gone (server on another machine, or
    # torn down): degrade to tcp instead of failing the connection
    assert connect_transport({"name": "shm"}).name == "tcp"
    assert connect_transport({"name": "shm", "ring": "psm_nope"}).name == "tcp"


def test_server_accepts_prebuilt_transport_instance():
    transport = make_server_transport("shm", **SHM_OPTS)
    with BrokerServer(Broker(), transport=transport) as server:
        assert server._transport is transport
        assert server._transport.describe()["name"] == "shm"


# -- negotiation --------------------------------------------------------------


def test_client_negotiates_shm_against_shm_server(shm_served):
    _, server, client = shm_served
    assert client.transport.name == "shm"
    descriptor = server._transport.describe()
    assert descriptor["slots"] == SHM_OPTS["slots"]
    assert descriptor["slab_bytes"] == SHM_OPTS["slab_bytes"]


def test_client_negotiates_tcp_against_tcp_server():
    with BrokerServer(Broker()) as server:
        host, port = server.address
        with BrokerClient(host, port) as client:
            assert client.transport.name == "tcp"


# -- payloads through the slab ring -------------------------------------------


def test_large_arrays_ride_slabs_and_roundtrip(shm_served):
    _, server, client = shm_served
    image = np.arange(300 * 300, dtype=np.float64).reshape(300, 300)  # 720 KB
    producer = client.producer()
    for _ in range(3):
        producer.send("t", image)
    assert server._transport.stats()["slabs_bound"] == 3
    consumer = client.consumer("g", ["t"])
    got = [m.value for m in consumer.poll(timeout=5.0)]
    assert len(got) == 3
    for value in got:
        np.testing.assert_array_equal(value, image)
    producer.close()
    consumer.close()


def test_small_arrays_stay_inline(shm_served):
    _, server, client = shm_served
    tiny = np.ones((4, 4), dtype=np.float64)  # far below SHM_MIN_BYTES
    producer = client.producer()
    producer.send("t", tiny)
    assert server._transport.stats()["slabs_bound"] == 0
    np.testing.assert_array_equal(
        client.consumer("g", ["t"]).poll(timeout=5.0)[0].value, tiny
    )


def test_oversized_arrays_fall_back_inline(shm_served):
    _, server, client = shm_served
    big = np.zeros(SHM_OPTS["slab_bytes"] + 8, dtype=np.uint8)  # > one slab
    client.producer().send("t", big)
    assert server._transport.stats()["slabs_bound"] == 0
    got = client.consumer("g", ["t"]).poll(timeout=5.0)[0].value
    np.testing.assert_array_equal(got, big)


def test_local_consumer_sees_shm_produced_records(shm_served):
    """The broker stores SlabRefs; a same-process reader must go through a
    loopback client (documented constraint), which materializes cleanly."""
    _, server, client = shm_served
    image = np.full((256, 256), 3.5)
    client.producer().send("t", image)
    host, port = server.address
    with BrokerClient(host, port) as reader:
        got = reader.consumer("g2", ["t"]).poll(timeout=5.0)[0].value
    np.testing.assert_array_equal(got, image)


# -- lease lifecycle ----------------------------------------------------------


def test_producer_close_returns_pooled_leases(shm_served):
    _, server, client = shm_served
    producer = client.producer()
    producer.send("t", np.ones((256, 256)))  # leases a batch, binds one slot
    stats = server._transport.stats()
    assert stats["slabs_bound"] == 1
    assert stats["leased"] > 0  # the rest of the batch is pooled client-side
    producer.close()
    stats = server._transport.stats()
    assert stats["leased"] == 0
    assert stats["free"] == SHM_OPTS["slots"] - 1  # only the bound slot is out


def test_dead_connection_leases_are_reclaimed(shm_served):
    _, server, client = shm_served
    conn = client.connect()
    granted, _ = conn.call("lease", LeaseRequest(count=4))
    assert len(granted.slots) == 4
    assert server._transport.stats()["leased"] == 4
    conn._sock.shutdown(socket.SHUT_RDWR)  # die without releasing
    conn.close()
    deadline = time.monotonic() + 5.0
    while time.monotonic() < deadline:
        if server._transport.stats()["leased"] == 0:
            break
        time.sleep(0.02)
    stats = server._transport.stats()
    assert stats["leased"] == 0
    assert stats["leases_reclaimed"] == 4


def test_release_ignores_foreign_and_stale_pairs(shm_served):
    _, server, client = shm_served
    conn_a = client.connect()
    conn_b = client.connect()
    granted, _ = conn_a.call("lease", LeaseRequest(count=2))
    pairs = [list(p) for p in granted.slots]
    # another connection cannot release slots it does not own
    released_b, _ = conn_b.call("release", ReleaseRequest(slots=pairs))
    assert released_b.released == 0
    released_a, _ = conn_a.call("release", ReleaseRequest(slots=pairs))
    assert released_a.released == 2
    # double release is a no-op, not an error
    released_again, _ = conn_a.call("release", ReleaseRequest(slots=pairs))
    assert released_again.released == 0
    conn_a.close()
    conn_b.close()


def test_lease_against_tcp_server_grants_nothing():
    with BrokerServer(Broker()) as server:
        host, port = server.address
        with BrokerClient(host, port) as client:
            conn = client.connect()
            granted, _ = conn.call("lease", LeaseRequest(count=4))
            assert granted.slots == []
            conn.close()


# -- server stop() drain semantics --------------------------------------------


def test_stop_reports_clean_drain(shm_served):
    _, server, client = shm_served
    client.producer().send("t", np.ones((128, 128)))
    assert server.stop() is False  # everything flushed before the deadline


def test_stop_before_start_is_clean_and_frees_the_ring():
    server = BrokerServer(Broker(), transport="shm", transport_options=SHM_OPTS)
    ring_name = server._transport.describe()["ring"]
    assert server.stop() is False
    from multiprocessing import shared_memory

    with pytest.raises(FileNotFoundError):
        shared_memory.SharedMemory(name=ring_name)


def test_stop_is_idempotent():
    server = BrokerServer(Broker())
    server.start()
    assert server.stop() is False
    assert server.stop() is False


def test_stop_deadline_hits_when_a_peer_refuses_to_read():
    """A reader that never drains its socket cannot stall shutdown forever:
    stop() gives up at the deadline and reports the truncation."""
    broker = Broker()
    server = BrokerServer(broker, allow_pickle=True)
    server.start()
    host, port = server.address
    try:
        with BrokerClient(host, port, allow_pickle=True) as client:
            producer = client.producer()
            blob = np.zeros(4 * 1024 * 1024, dtype=np.uint8)
            for _ in range(7):  # ~28 MB pending, one fetch reply
                producer.send("t", blob)
            # a raw connection that requests everything and then stops reading
            conn = client.connect()
            conn._sock.setsockopt(socket.SOL_SOCKET, socket.SO_RCVBUF, 8192)
            from repro.net.frames import TYPE_REQUEST, Frame, write_frame

            write_frame(
                conn._sock,
                Frame(
                    type=TYPE_REQUEST,
                    corr_id=1,
                    meta={
                        "op": "fetch", "topic": "t", "partition": 0,
                        "offset": 0, "max_records": 1024, "timeout": 0.0,
                    },
                ),
            )
            time.sleep(0.5)  # let the server enqueue the reply
            assert server.stop(timeout=0.5) is True
            conn.close()
    finally:
        server.stop()
