"""Pub/sub connectors running over a networked broker, unchanged."""

import threading

import pytest

from repro.core.connectors import PubSubReaderSource, PubSubWriterSink
from repro.net import BrokerClient, BrokerServer
from repro.pubsub import Broker
from repro.spe import StreamTuple


@pytest.fixture()
def client():
    with BrokerServer(Broker(), allow_pickle=True) as server:
        host, port = server.address
        with BrokerClient(host, port, allow_pickle=True) as client:
            yield client


def make_tuple(i):
    return StreamTuple(tau=float(i), job="J", layer=i, payload={"x": i})


def test_writer_reader_over_the_network(client):
    writer = PubSubWriterSink("w", client, "strata.s")
    reader = PubSubReaderSource("r", client, "strata.s", poll_timeout=0.02)
    got = []
    thread = threading.Thread(target=lambda: got.extend(reader))
    thread.start()
    for i in range(5):
        writer.accept(make_tuple(i))
    writer.on_close()
    thread.join(timeout=10)
    assert not thread.is_alive()
    assert [t.layer for t in got] == [0, 1, 2, 3, 4]


def test_remote_writer_feeds_local_reader(client):
    # writer over TCP, reader directly on the server's broker: the server
    # stores decoded values, so mixed attachment just works
    writer = PubSubWriterSink("w", client, "strata.s")
    for i in range(3):
        writer.accept(make_tuple(i))
    writer.on_close()
    # a second remote reader group sees the same records independently
    reader = PubSubReaderSource("r", client, "strata.s")
    assert [t.layer for t in reader] == [0, 1, 2]


def test_multi_partition_eos_over_network(client):
    client.ensure_topic("strata.s", partitions=3)
    writer = PubSubWriterSink("w", client, "strata.s")
    for i in range(6):
        writer.accept(make_tuple(i))
    writer.on_close()
    reader = PubSubReaderSource("r", client, "strata.s")
    got = list(reader)  # terminates only if every partition got a sentinel
    assert sorted(t.layer for t in got) == [0, 1, 2, 3, 4, 5]


def test_rebind_moves_connector_between_brokers(client):
    local = Broker()
    writer = PubSubWriterSink("w", local, "strata.s")
    reader = PubSubReaderSource("r", local, "strata.s")
    writer.rebind(client)
    reader.rebind(client)
    writer.accept(make_tuple(0))
    writer.on_close()
    assert [t.layer for t in reader] == [0]
    assert local.topic("strata.s").log(0).end_offset == 0  # nothing local


def test_dedup_suppresses_replayed_records(client):
    writer = PubSubWriterSink("w", client, "strata.s")
    for i in range(3):
        writer.accept(make_tuple(i))
    for i in range(3):  # replay, as a restarted upstream worker would
        writer.accept(make_tuple(i))
    writer.on_close()
    reader = PubSubReaderSource("r", client, "strata.s", dedup=True)
    got = list(reader)
    assert [t.layer for t in got] == [0, 1, 2]
    assert reader.duplicates_suppressed == 3
