"""The typed op table: wire-name compatibility and meta round-trips."""

from dataclasses import fields

import pytest

from repro.net import OPS, OpSpec, register_op
from repro.net.errors import ProtocolError
from repro.net.ops import (
    FetchRequest,
    LeaseRequest,
    PingRequest,
    ProduceRequest,
    parse_request,
    parse_response,
    request_meta,
    response_meta,
)

#: the v2 wire surface, frozen: renaming or dropping an op (or a request
#: field) breaks old peers mid-upgrade, so this list only ever grows
V2_OPS = {
    "ping", "produce", "produce_batch", "fetch", "commit", "committed",
    "reset_group", "create_topic", "ensure_topic", "list_topics",
    "partitions", "offsets", "end_offsets", "heartbeat", "cluster",
}
PAYLOAD_PLANE_OPS = {"transport", "lease", "release"}


def test_table_covers_the_full_wire_surface():
    assert V2_OPS | PAYLOAD_PLANE_OPS <= set(OPS)


def test_request_meta_uses_field_names_as_wire_keys():
    meta = request_meta("produce", ProduceRequest(topic="t", key="k"))
    assert meta["op"] == "produce"
    assert meta["topic"] == "t" and meta["key"] == "k"
    assert set(meta) == {
        "op", "topic", "key", "timestamp", "headers", "partition",
        "auto_create", "partitions",
    }


@pytest.mark.parametrize("name", sorted(V2_OPS | PAYLOAD_PLANE_OPS))
def test_every_request_roundtrips_through_meta(name):
    spec = OPS[name]
    request = (
        spec.request() if not _required(spec.request) else _sample(spec.request)
    )
    meta = request_meta(name, request)
    parsed_spec, parsed = parse_request(meta)
    assert parsed_spec is spec
    assert parsed == request


@pytest.mark.parametrize("name", sorted(V2_OPS | PAYLOAD_PLANE_OPS))
def test_every_response_roundtrips_through_meta(name):
    spec = OPS[name]
    response = spec.response() if not _required(spec.response) else _sample(
        spec.response
    )
    meta = response_meta(response)
    assert parse_response(spec, meta) == response


def _required(cls):
    import dataclasses

    return [
        f for f in fields(cls)
        if f.default is dataclasses.MISSING
        and f.default_factory is dataclasses.MISSING
    ]


_SAMPLES = {
    str: "t", int: 0, float: 0.0, bool: True,
}


def _sample(cls):
    kwargs = {}
    for f in _required(cls):
        for type_, value in _SAMPLES.items():
            if f.type.startswith(type_.__name__):
                kwargs[f.name] = value
                break
        else:
            kwargs[f.name] = "t"
    return cls(**kwargs)


def test_unknown_op_raises_protocol_error():
    with pytest.raises(ProtocolError, match="unknown operation 'warp'"):
        parse_request({"op": "warp"})
    with pytest.raises(ProtocolError, match="unknown operation"):
        parse_request({})


def test_missing_required_field_raises_protocol_error():
    with pytest.raises(ProtocolError, match="malformed 'fetch' request"):
        parse_request({"op": "fetch", "topic": "t"})  # no partition/offset


def test_unknown_meta_keys_are_ignored_for_forward_compat():
    spec, request = parse_request(
        {"op": "ping", "future_flag": True, "another": 1}
    )
    assert request == PingRequest()
    response = parse_response(spec, {"ok": True, "server_mood": "fine"})
    assert response.ok is True


def test_fetch_blocking_hint():
    spec = OPS["fetch"]
    assert spec.may_block is not None
    assert spec.may_block(FetchRequest(topic="t", partition=0, offset=0)) is False
    assert spec.may_block(
        FetchRequest(topic="t", partition=0, offset=0, timeout=1.0)
    ) is True


def test_lease_defaults():
    spec, request = parse_request({"op": "lease"})
    assert request == LeaseRequest(count=1)


def test_register_op_refuses_duplicates():
    with pytest.raises(ValueError, match="already registered"):
        register_op("ping", PingRequest, OPS["ping"].response)


def test_register_op_extends_the_table():
    from dataclasses import dataclass

    @dataclass(frozen=True)
    class EchoRequest:
        text: str = ""

    @dataclass(frozen=True)
    class EchoResponse:
        text: str = ""

    try:
        spec = register_op("test-echo", EchoRequest, EchoResponse)
        assert isinstance(spec, OpSpec)
        parsed_spec, request = parse_request({"op": "test-echo", "text": "hi"})
        assert parsed_spec is spec and request.text == "hi"
    finally:
        OPS.pop("test-echo", None)
