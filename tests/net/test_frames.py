"""Wire frame encode/decode and the socket framing layer."""

import socket
import struct

import pytest

from repro.net import (
    MAGIC,
    TYPE_ERROR,
    TYPE_REQUEST,
    TYPE_RESPONSE,
    Frame,
    encode_frame,
    read_frame,
    write_frame,
)
from repro.net.errors import ConnectionClosedError, ProtocolError
from repro.net.frames import HEADER, decode_body


def roundtrip(frame: Frame) -> Frame:
    a, b = socket.socketpair()
    try:
        write_frame(a, frame)
        return read_frame(b)
    finally:
        a.close()
        b.close()


def test_frame_roundtrip_with_blobs():
    frame = Frame(
        type=TYPE_REQUEST, corr_id=42,
        meta={"op": "produce", "topic": "strata.OT"},
        blobs=(b"\x00payload", b"", b"\xffmore"),
    )
    assert roundtrip(frame) == frame


def test_frame_roundtrip_all_types():
    for frame_type in (TYPE_REQUEST, TYPE_RESPONSE, TYPE_ERROR):
        frame = Frame(type=frame_type, corr_id=7, meta={"op": "ping"})
        assert roundtrip(frame) == frame


def test_bad_magic_rejected():
    frame = encode_frame(Frame(type=TYPE_REQUEST, corr_id=1, meta={}))
    a, b = socket.socketpair()
    try:
        a.sendall(b"XX" + frame[2:])
        with pytest.raises(ProtocolError, match="magic"):
            read_frame(b)
    finally:
        a.close()
        b.close()


def test_unknown_version_rejected():
    a, b = socket.socketpair()
    try:
        a.sendall(HEADER.pack(MAGIC, 99, TYPE_REQUEST, 1, 0))
        with pytest.raises(ProtocolError, match="version"):
            read_frame(b)
    finally:
        a.close()
        b.close()


def test_oversized_frame_rejected():
    a, b = socket.socketpair()
    try:
        a.sendall(HEADER.pack(MAGIC, 1, TYPE_REQUEST, 1, 1 << 30))
        with pytest.raises(ProtocolError, match="exceeds"):
            read_frame(b)
    finally:
        a.close()
        b.close()


def test_truncated_stream_raises_connection_closed():
    frame = encode_frame(Frame(type=TYPE_REQUEST, corr_id=1, meta={"op": "x"}))
    a, b = socket.socketpair()
    try:
        a.sendall(frame[: len(frame) - 3])
        a.close()
        with pytest.raises(ConnectionClosedError):
            read_frame(b)
    finally:
        b.close()


def test_malformed_body_rejected():
    with pytest.raises(ProtocolError, match="malformed"):
        decode_body(TYPE_REQUEST, 1, struct.pack("!I", 500) + b"{}")


def test_non_object_meta_rejected():
    meta = b"[1,2]"
    body = struct.pack("!I", len(meta)) + meta + struct.pack("!I", 0)
    with pytest.raises(ProtocolError, match="JSON object"):
        decode_body(TYPE_REQUEST, 1, body)
