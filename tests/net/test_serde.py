"""Shared serde: storage codec extraction + pickle-free wire codec."""

import numpy as np
import pytest

from repro.serde import (
    PickleRefusedError,
    SerdeError,
    decode_value,
    decode_wire,
    encode_value,
    encode_wire,
)
from repro.spe import StreamTuple


def test_storage_codec_roundtrips():
    for value in (b"\x00raw", {"a": [1, 2.5, None, True]}, "text", 42):
        assert decode_value(encode_value(value)) == value


def test_storage_codec_still_pickles_non_json():
    # kvstore back-compat: tuples/sets fall back to pickle, decode allows it
    value = {"key": (1, 2)}
    assert decode_value(encode_value(value)) == value


def test_storage_codec_unknown_tag():
    with pytest.raises(SerdeError):
        decode_value(b"?junk")


def test_kvstore_reexports_shared_codec():
    from repro import serde
    from repro.kvstore import api

    assert api.encode_value is serde.encode_value
    assert api.decode_value is serde.decode_value


def test_wire_json_roundtrip():
    for value in (None, True, 3, 2.5, "s", [1, "x"], {"k": [1]}):
        assert decode_wire(encode_wire(value)) == value


def test_wire_bytes_roundtrip():
    assert decode_wire(encode_wire(b"\xff\x00blob")) == b"\xff\x00blob"


@pytest.mark.parametrize("dtype", ["<f8", "<f4", "<i4", "<u2", "|b1"])
def test_wire_ndarray_roundtrip(dtype):
    array = (np.arange(24) % 2).astype(np.dtype(dtype)).reshape(2, 3, 4)
    got = decode_wire(encode_wire(array))
    assert got.dtype == array.dtype and got.shape == array.shape
    np.testing.assert_array_equal(got, array)


def test_wire_ndarray_non_contiguous():
    array = np.arange(16, dtype=np.float64).reshape(4, 4)[:, ::2]
    np.testing.assert_array_equal(decode_wire(encode_wire(array)), array)


def test_wire_decoded_ndarray_is_writable():
    got = decode_wire(encode_wire(np.zeros(3)))
    got[0] = 1.0  # frombuffer views are read-only; the codec must copy


def test_wire_stream_tuple_roundtrip():
    t = StreamTuple(
        tau=3.5, job="J1", layer=7,
        payload={"image": np.ones((4, 4), dtype=np.float32), "count": 2},
        specimen="s0", portion="p1", ingest_time=123.25,
    )
    t.trace_id = "trace-9"
    got = decode_wire(encode_wire(t))
    assert isinstance(got, StreamTuple)
    assert (got.tau, got.job, got.layer) == (3.5, "J1", 7)
    assert (got.specimen, got.portion) == ("s0", "p1")
    assert got.ingest_time == 123.25  # preserved: latency spans the hop
    assert got.trace_id == "trace-9"
    assert got.payload["count"] == 2
    np.testing.assert_array_equal(got.payload["image"], t.payload["image"])


def test_wire_refuses_pickle_by_default():
    with pytest.raises(PickleRefusedError):
        encode_wire({"bad": (1, 2)})  # tuple is not JSON-exact
    blob = encode_wire({"bad": (1, 2)}, allow_pickle=True)
    with pytest.raises(PickleRefusedError):
        decode_wire(blob)
    assert decode_wire(blob, allow_pickle=True) == {"bad": (1, 2)}


def test_wire_tuple_payload_honours_pickle_gate():
    t = StreamTuple(tau=0.0, job="J", layer=0, payload={"odd": {1, 2}})
    with pytest.raises(PickleRefusedError):
        encode_wire(t)
    got = decode_wire(encode_wire(t, allow_pickle=True), allow_pickle=True)
    assert got.payload["odd"] == {1, 2}


def test_wire_object_ndarray_needs_pickle():
    array = np.array([object(), object()], dtype=object)
    with pytest.raises(PickleRefusedError):
        encode_wire(array)


def test_wire_unknown_tag():
    with pytest.raises(SerdeError):
        decode_wire(b"zoops")
