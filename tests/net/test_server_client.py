"""BrokerServer + BrokerClient: the full RPC surface over real sockets."""

import threading

import numpy as np
import pytest

from repro.net import BrokerClient, BrokerServer, ProtocolError, RpcError
from repro.pubsub import (
    Broker,
    Consumer,
    InvalidOffsetError,
    Producer,
    TopicExistsError,
    UnknownTopicError,
)
from repro.serde import PickleRefusedError
from repro.spe import StreamTuple


@pytest.fixture()
def served():
    broker = Broker()
    with BrokerServer(broker) as server:
        host, port = server.address
        with BrokerClient(host, port) as client:
            yield broker, server, client


def test_ping_and_wait_ready(served):
    _, _, client = served
    assert client.ping()
    client.wait_ready(timeout=5.0)


def test_wait_ready_times_out_quickly():
    client = BrokerClient("127.0.0.1", 1)  # port 1: nothing listening
    with pytest.raises(TimeoutError):
        client.wait_ready(timeout=0.2, interval=0.05)


def test_topic_admin_roundtrip(served):
    _, _, client = served
    client.create_topic("a", partitions=3)
    assert client.ensure_topic("a", partitions=3) == 3
    assert client.has_topic("a")
    assert not client.has_topic("missing")
    assert "a" in client.topics()
    assert client.partitions("a") == 3
    with pytest.raises(TopicExistsError):
        client.create_topic("a")
    with pytest.raises(UnknownTopicError):
        client.partitions("missing")


def test_produce_fetch_roundtrip(served):
    broker, _, client = served
    producer = client.producer()
    for i in range(4):
        partition, offset = producer.send(
            "t", {"i": i}, key="k", timestamp=float(i), headers={"h": i}
        )
        assert (partition, offset) == (0, i)
    assert producer.records_sent == 4
    consumer = client.consumer("g", ["t"])
    messages = consumer.poll()
    assert [m.value for m in messages] == [{"i": i} for i in range(4)]
    assert messages[0].key == "k"
    assert messages[0].timestamp == 0.0
    assert messages[0].headers == {"h": 0}
    assert [m.offset for m in messages] == [0, 1, 2, 3]
    producer.close()
    consumer.close()


def test_remote_and_local_clients_interoperate(served):
    broker, _, client = served
    # remote producer -> local consumer: the server stores decoded values
    client.producer().send("t", {"x": 1})
    local = Consumer(broker, "local", ["t"])
    assert [m.value for m in local.poll()] == [{"x": 1}]
    # local producer -> remote consumer
    Producer(broker).send("t", {"x": 2})
    remote = client.consumer("remote", ["t"])
    assert [m.value for m in remote.poll()] == [{"x": 1}, {"x": 2}]


def test_stream_tuple_with_image_over_the_wire(served):
    _, _, client = served
    t = StreamTuple(
        tau=1.0, job="J", layer=3,
        payload={"image": np.ones((8, 8), dtype=np.float32)},
    )
    client.producer().send("t", t, key="J/3", timestamp=t.tau)
    got = client.consumer("g", ["t"]).poll()[0].value
    assert isinstance(got, StreamTuple)
    np.testing.assert_array_equal(got.payload["image"], t.payload["image"])


def test_commit_and_committed(served):
    _, _, client = served
    client.ensure_topic("t")
    assert client.committed("g", "t", 0) is None
    client.commit("g", "t", 0, 5)
    assert client.committed("g", "t", 0) == 5
    client.reset_group("g")
    assert client.committed("g", "t", 0) is None
    with pytest.raises(InvalidOffsetError):
        client.commit("g", "t", 0, -1)


def test_offsets_surface(served):
    _, _, client = served
    producer = client.producer()
    for i in range(3):
        producer.send("t", {"i": i})
    assert client.end_offsets("t") == {0: 3}


def test_consumer_seek_position_and_manual_commit(served):
    _, _, client = served
    producer = client.producer()
    for i in range(5):
        producer.send("t", {"i": i})
    consumer = client.consumer("g", ["t"], auto_commit=False)
    consumer.poll()
    assert consumer.position("t", 0) == 5
    consumer.seek("t", 0, 2)
    assert [m.value["i"] for m in consumer.poll()] == [2, 3, 4]
    consumer.commit()
    assert consumer.committed("t", 0) == 5
    with pytest.raises(InvalidOffsetError):
        consumer.seek("nope", 0, 0)


def test_consumer_latest_reset_sees_only_new_records(served):
    _, _, client = served
    producer = client.producer()
    producer.send("t", {"old": True})
    consumer = client.consumer("g", ["t"], auto_offset_reset="latest")
    assert consumer.poll() == []
    producer.send("t", {"new": True})
    assert [m.value for m in consumer.poll()] == [{"new": True}]


def test_blocking_fetch_wakes_on_produce(served):
    _, _, client = served
    client.ensure_topic("t")
    consumer = client.consumer("g", ["t"])
    got = []

    def drain():
        got.extend(consumer.poll(timeout=5.0))

    thread = threading.Thread(target=drain)
    thread.start()
    client.producer().send("t", {"x": 1})
    thread.join(timeout=10)
    assert not thread.is_alive()
    assert [m.value for m in got] == [{"x": 1}]


def test_pickle_refused_at_sender_and_server(served):
    _, _, client = served
    with pytest.raises(PickleRefusedError):
        client.producer().send("t", {"bad": (1, 2)})


def test_pickle_refusing_server_rejects_pickle_frames():
    with BrokerServer(Broker(), allow_pickle=False) as server:
        host, port = server.address
        # a client that *sends* pickle to a server that refuses it
        with BrokerClient(host, port, allow_pickle=True) as client:
            with pytest.raises(PickleRefusedError):
                client.producer().send("t", {"bad": (1, 2)})


def test_pickle_allowed_end_to_end_when_enabled():
    with BrokerServer(Broker(), allow_pickle=True) as server:
        host, port = server.address
        with BrokerClient(host, port, allow_pickle=True) as client:
            client.producer().send("t", {"ok": (1, 2)})
            got = client.consumer("g", ["t"]).poll()[0].value
            assert got == {"ok": (1, 2)}


def test_unknown_op_maps_to_protocol_error(served):
    _, _, client = served
    conn = client.connect()
    with pytest.raises(ProtocolError, match="unknown operation"):
        conn.request("no-such-op", {})
    conn.close()


def test_unmapped_server_error_becomes_rpc_error():
    from repro.net.client import _raise_remote

    with pytest.raises(RpcError) as exc_info:
        _raise_remote({"error": "SomethingExotic", "message": "boom"})
    assert exc_info.value.kind == "SomethingExotic"
    assert "boom" in str(exc_info.value)


def test_heartbeat_and_cluster(served):
    _, server, client = served
    client.heartbeat("w0", {"stages": ["stage-0"]}, {"wall_time": 1.0, "samples": []})
    client.heartbeat("w1", {"stages": ["stage-1"]}, None)
    cluster = client.cluster(include_metrics=True)
    assert set(cluster) == {"w0", "w1"}
    assert cluster["w0"]["info"]["stages"] == ["stage-0"]
    assert cluster["w0"]["metrics"] == {"wall_time": 1.0, "samples": []}
    assert cluster["w0"]["age_s"] >= 0.0
    assert set(server.workers()) == {"w0", "w1"}
