"""Property-based wire invariants: frame batching, slab handles, ring I/O.

Covers the transport-plane edges the unit tests pin only pointwise: any
batch of frames survives vectored writes and arbitrary read fragmentation,
any handle survives its JSON encoding, any array survives the slab ring,
and a starved ring always degrades to inline payloads instead of losing
records.
"""

import socket
import threading

import hypothesis.strategies as st
import numpy as np
import pytest
from hypothesis import given, settings

from repro.net import (
    MAX_FRAME_BYTES,
    TYPE_ERROR,
    TYPE_REQUEST,
    TYPE_RESPONSE,
    Frame,
    FrameDecoder,
    frame_iovecs,
    write_frames,
)
from repro.net.errors import ProtocolError
from repro.net.shm import (
    ShmProducerPlane,
    ShmServerPlane,
    SlabHandle,
    SlabRing,
    StaleSlabError,
)
from repro.serde import SerdeContext, decode_wire, encode_wire

# -- strategies ---------------------------------------------------------------

meta_values = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**31), max_value=2**31),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(max_size=12),
)
metas = st.dictionaries(st.text(min_size=1, max_size=8), meta_values, max_size=4)
blobs = st.lists(st.binary(max_size=2048), max_size=4)


@st.composite
def frames(draw):
    return Frame(
        type=draw(st.sampled_from([TYPE_REQUEST, TYPE_RESPONSE, TYPE_ERROR])),
        corr_id=draw(st.integers(min_value=0, max_value=2**32 - 1)),
        meta=draw(metas),
        blobs=tuple(draw(blobs)),
    )


small_arrays = st.builds(
    lambda dtype, shape, seed: (
        np.random.default_rng(seed)
        .integers(0, 255, size=shape)
        .astype(dtype)
    ),
    dtype=st.sampled_from(["u1", "i4", "f4", "f8"]),
    shape=st.tuples(
        st.integers(min_value=1, max_value=24), st.integers(min_value=1, max_value=24)
    ),
    seed=st.integers(min_value=0, max_value=2**16),
)


# -- frame batching over real sockets -----------------------------------------


@given(batch=st.lists(frames(), min_size=1, max_size=12))
@settings(max_examples=40, deadline=None)
def test_write_frames_roundtrips_any_batch(batch):
    """Vectored writes are byte-identical to sequential framing."""
    a, b = socket.socketpair()
    received = []
    errors = []

    def drain():
        decoder = FrameDecoder()
        try:
            while len(received) < len(batch):
                data = b.recv(1 << 16)
                if not data:
                    break
                decoder.feed(data)
                received.extend(decoder.frames())
        except Exception as exc:  # surfaced by the main thread's assert
            errors.append(exc)

    reader = threading.Thread(target=drain, daemon=True)
    reader.start()
    try:
        write_frames(a, batch)
        reader.join(timeout=10)
    finally:
        a.close()
        b.close()
    assert not errors
    assert received == batch


@given(
    batch=st.lists(frames(), min_size=1, max_size=6),
    chunk=st.integers(min_value=1, max_value=97),
)
@settings(max_examples=40, deadline=None)
def test_decoder_is_fragmentation_invariant(batch, chunk):
    """Any byte-level fragmentation parses to the same frame sequence."""
    wire = b"".join(b"".join(frame_iovecs(f)) for f in batch)
    decoder = FrameDecoder()
    out = []
    for start in range(0, len(wire), chunk):
        decoder.feed(wire[start : start + chunk])
        out.extend(decoder.frames())
    assert out == batch
    assert decoder.buffered == 0


# -- max-frame-cap edges ------------------------------------------------------


def _frame_with_body(body_len: int) -> Frame:
    """A one-blob frame whose body is exactly ``body_len`` bytes."""
    # body = 4 (meta len) + 2 (meta "{}") + 4 (blob count) + 4 (blob len) + blob
    overhead = 4 + 2 + 4 + 4
    return Frame(
        type=TYPE_REQUEST, corr_id=1, meta={}, blobs=(bytes(body_len - overhead),)
    )


def test_frame_at_exact_cap_is_accepted():
    frame = _frame_with_body(MAX_FRAME_BYTES)
    wire = b"".join(frame_iovecs(frame))
    decoder = FrameDecoder()
    decoder.feed(wire)
    assert list(decoder.frames()) == [frame]


def test_frame_one_byte_over_cap_is_refused_by_writer_and_reader():
    frame = _frame_with_body(MAX_FRAME_BYTES + 1)
    with pytest.raises(ProtocolError, match="exceeds"):
        frame_iovecs(frame)
    # a hostile peer that writes it anyway is refused at the header
    import struct

    from repro.net.frames import HEADER, MAGIC, VERSION

    decoder = FrameDecoder()
    decoder.feed(HEADER.pack(MAGIC, VERSION, TYPE_REQUEST, 1, MAX_FRAME_BYTES + 1))
    with pytest.raises(ProtocolError, match="exceeds"):
        list(decoder.frames())


@given(cap=st.integers(min_value=64, max_value=4096), extra=st.integers(0, 64))
@settings(max_examples=30, deadline=None)
def test_decoder_honors_custom_cap(cap, extra):
    frame = _frame_with_body(cap + extra)
    wire = b"".join(frame_iovecs(frame))
    decoder = FrameDecoder(max_frame=cap)
    decoder.feed(wire)
    if extra == 0:
        assert list(decoder.frames()) == [frame]
    else:
        with pytest.raises(ProtocolError, match="exceeds"):
            list(decoder.frames())


# -- slab handle encoding -----------------------------------------------------


@given(
    ring=st.text(
        alphabet=st.characters(min_codepoint=33, max_codepoint=126),
        min_size=1,
        max_size=24,
    ),
    slot=st.integers(min_value=0, max_value=2**20),
    gen=st.integers(min_value=0, max_value=2**63 - 1),
    dtype=st.sampled_from(["<f8", "<f4", "<i4", "|u1"]),
    shape=st.lists(st.integers(min_value=0, max_value=4096), min_size=1, max_size=4),
)
@settings(max_examples=80, deadline=None)
def test_slab_handle_roundtrip(ring, slot, gen, dtype, shape):
    handle = SlabHandle(
        ring=ring, slot=slot, gen=gen, dtype=dtype, shape=tuple(shape)
    )
    body = handle.encode()
    assert body[:1] == b"S"
    assert SlabHandle.decode(body[1:]) == handle


def test_malformed_handle_raises_serde_error():
    from repro.serde import SerdeError

    with pytest.raises(SerdeError, match="malformed"):
        SlabHandle.decode(b'{"ring": "x"}')  # missing keys
    with pytest.raises(SerdeError, match="malformed"):
        SlabHandle.decode(b"\xff not json")


# -- slab ring I/O ------------------------------------------------------------


@pytest.fixture(scope="module")
def ring():
    r = SlabRing.create(slots=4, slab_bytes=64 * 1024)
    yield r
    r.close()
    r.unlink()


@given(array=small_arrays, slot=st.integers(min_value=0, max_value=3))
@settings(max_examples=60, deadline=None)
def test_ring_write_read_roundtrip(ring, array, slot):
    ring.set_gen(slot, 7)
    ring.write(slot, array)
    handle = SlabHandle(
        ring=ring.name, slot=slot, gen=7,
        dtype=array.dtype.str, shape=array.shape,
    )
    np.testing.assert_array_equal(ring.read(handle), array)
    # a reclaimed slot (bumped generation) must raise, never return junk
    ring.set_gen(slot, 8)
    with pytest.raises(StaleSlabError):
        ring.read(handle)


# -- ring-full inline fallback ------------------------------------------------


@given(n_arrays=st.integers(min_value=1, max_value=10))
@settings(max_examples=20, deadline=None)
def test_starved_ring_degrades_to_inline(n_arrays):
    """When every slot is leased away, producers encode inline; every
    record still round-trips bit-exact."""
    server_ring = SlabRing.create(slots=2, slab_bytes=64 * 1024)
    plane = ShmServerPlane(server_ring, min_bytes=0)
    try:
        # another connection holds every slot: leased slots are never
        # reclaimable (their writers may be mid-copy), so the ring is dry
        assert len(plane.lease(owner=999, count=2)) == 2
        producer = ShmProducerPlane(
            server_ring,
            lease_fn=lambda n: plane.lease(owner=1, count=n),
            release_fn=lambda pairs: plane.release(1, pairs),
            min_bytes=0,
        )
        ctx = SerdeContext(allow_pickle=False, options={"shm_producer": producer})
        arrays = [
            np.full((16, 16), i, dtype=np.float64) for i in range(n_arrays)
        ]
        encoded = [encode_wire(a, context=ctx) for a in arrays]
        assert all(blob[:1] != b"S" for blob in encoded)  # all inline
        assert producer.inline_fallbacks == n_arrays
        for blob, original in zip(encoded, arrays):
            np.testing.assert_array_equal(decode_wire(blob), original)
    finally:
        plane.close()


@given(n_arrays=st.integers(min_value=1, max_value=12))
@settings(max_examples=20, deadline=None)
def test_ring_recycles_through_reclamation(n_arrays):
    """More payloads than slots: the server plane reclaims bound slots by
    materializing, and every record stays readable afterwards."""
    server_ring = SlabRing.create(slots=3, slab_bytes=64 * 1024)
    plane = ShmServerPlane(server_ring, min_bytes=0)
    try:
        producer = ShmProducerPlane(
            server_ring,
            lease_fn=lambda n: plane.lease(owner=1, count=n),
            release_fn=lambda pairs: plane.release(1, pairs),
            min_bytes=0,
            lease_batch=2,
        )
        encode_ctx = SerdeContext(
            allow_pickle=False, options={"shm_producer": producer}
        )
        decode_ctx = SerdeContext(allow_pickle=False, options={"shm_server": plane})
        arrays = [np.full((8, 8), i, dtype=np.int32) for i in range(n_arrays)]
        stored = [
            decode_wire(encode_wire(a, context=encode_ctx), context=decode_ctx)
            for a in arrays
        ]
        for ref, original in zip(stored, arrays):
            # ref is a SlabRef (live slab) or, after reclamation, already
            # materialized; either way the pixels must match
            value = ref.array if ref.array is not None else ref.materialize()
            np.testing.assert_array_equal(value, original)
        stats = plane.stats()
        assert stats["leased"] <= producer._lease_batch
        assert stats["slabs_bound"] == n_arrays
    finally:
        plane.close()
